//! In-memory triple store — the workspace's stand-in for the paper's
//! Openlink Virtuoso installation.
//!
//! The store is dictionary-encoded: every [`Term`](lodify_rdf::Term) is
//! interned once into a dense [`dict::TermId`], and statements
//! are kept in three sorted permutation indexes (SPO, POS, OSP) so that
//! every triple-pattern shape resolves to a range scan. On top of the
//! core indexes sit the two Virtuoso "commercial edition" features the
//! paper depends on:
//!
//! * a **full-text index** over string literals ([`fulltext`]), backing
//!   the incremental keyword search of the mobile interface (§4) and
//!   the `bif:contains` filter;
//! * a **geospatial index** over `geo:geometry` points ([`geo`]),
//!   backing `bif:st_intersects` (§2.3).
//!
//! Named graphs are tracked as *provenance*: each statement remembers
//! which graph (UGC, DBpedia, Geonames, LinkedGeoData, …) introduced
//! it, and the semantic filter uses subject-level provenance to rank
//! candidate resources by source graph (§2.2.2).
//!
//! # Concurrency: MVCC epoch snapshots over a sharded store
//!
//! Since the MVCC refactor all of the above is **subject-sharded**
//! ([`shard`]): every subject-keyed structure lives in one of N
//! [`Arc`](std::sync::Arc)-wrapped shards, so cloning a [`Store`] costs
//! O(shards) and a writer copy-on-writes only the shards it touches.
//! [`snapshot::StoreSnapshot`] packages such a clone as an immutable
//! pinned version; [`SharedStore`] serializes writers and atomically
//! publishes versions to lock-free readers. The
//! [`snapshot::SnapshotSource`] trait is the seam every read-side
//! consumer (SPARQL, albums, live queries, replication, web) depends
//! on.

#![warn(missing_docs)]

pub mod dict;
pub mod error;
pub mod fulltext;
pub mod geo;
pub mod shard;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use dict::{Dict, TermId};
pub use error::StoreError;
pub use shard::{shard_of, FullTextView, GeoView, DEFAULT_SHARDS};
pub use shared::{SharedStore, StoreWriteGuard};
pub use snapshot::{SnapshotSource, StoreSnapshot};
pub use store::{GraphId, Store, DEFAULT_GRAPH};
