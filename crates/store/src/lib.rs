//! In-memory triple store — the workspace's stand-in for the paper's
//! Openlink Virtuoso installation.
//!
//! The store is dictionary-encoded: every [`Term`](lodify_rdf::Term) is
//! interned once into a dense [`dict::TermId`], and statements
//! are kept in three sorted permutation indexes (SPO, POS, OSP) so that
//! every triple-pattern shape resolves to a range scan. On top of the
//! core indexes sit the two Virtuoso "commercial edition" features the
//! paper depends on:
//!
//! * a **full-text index** over string literals ([`fulltext`]), backing
//!   the incremental keyword search of the mobile interface (§4) and
//!   the `bif:contains` filter;
//! * a **geospatial index** over `geo:geometry` points ([`geo`]),
//!   backing `bif:st_intersects` (§2.3).
//!
//! Named graphs are tracked as *provenance*: each statement remembers
//! which graph (UGC, DBpedia, Geonames, LinkedGeoData, …) introduced
//! it, and the semantic filter uses subject-level provenance to rank
//! candidate resources by source graph (§2.2.2).

#![warn(missing_docs)]

pub mod dict;
pub mod error;
pub mod fulltext;
pub mod geo;
pub mod shared;
pub mod stats;
pub mod store;

pub use dict::{Dict, TermId};
pub use error::StoreError;
pub use shared::{SharedStore, StoreWriteGuard};
pub use store::{GraphId, Store, DEFAULT_GRAPH};
