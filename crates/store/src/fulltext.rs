//! Full-text inverted index over string literals.
//!
//! Reproduces the Virtuoso text-search capability the paper's mobile
//! search box uses: each string literal object is tokenized (Unicode
//! alphanumeric runs, lowercased) and posted under every token. Two
//! query modes are exposed:
//!
//! * [`FullTextIndex::search_word`] — exact-token match, the semantics
//!   of SPARQL `bif:contains "word"`;
//! * [`FullTextIndex::search_prefix`] — token-prefix match, powering
//!   the incremental AJAX search of §4 (candidates appear while the
//!   user types "Tur…" → "Turin").

use std::collections::BTreeMap;

use crate::dict::TermId;

/// A posting: which (subject, predicate, object-literal) triple carried
/// the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Subject of the indexed triple.
    pub subject: TermId,
    /// Predicate of the indexed triple.
    pub predicate: TermId,
    /// Object (the literal containing the token).
    pub object: TermId,
}

/// Token → sorted postings.
#[derive(Debug, Clone, Default)]
pub struct FullTextIndex {
    postings: BTreeMap<String, Vec<Posting>>,
    tokens_indexed: usize,
}

impl FullTextIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a literal's lexical form for the given triple.
    pub fn index_literal(
        &mut self,
        subject: TermId,
        predicate: TermId,
        object: TermId,
        text: &str,
    ) {
        for token in tokenize(text) {
            let entry = self.postings.entry(token).or_default();
            let posting = Posting {
                subject,
                predicate,
                object,
            };
            // Keep postings sorted + deduplicated; lists are short and
            // insertion-sorted to keep lookups allocation-free.
            if let Err(pos) = entry.binary_search(&posting) {
                entry.insert(pos, posting);
            }
            self.tokens_indexed += 1;
        }
    }

    /// Removes the postings a literal contributed for the given triple
    /// (inverse of [`FullTextIndex::index_literal`]).
    pub fn remove_literal(
        &mut self,
        subject: TermId,
        predicate: TermId,
        object: TermId,
        text: &str,
    ) {
        let posting = Posting {
            subject,
            predicate,
            object,
        };
        for token in tokenize(text) {
            if let Some(entry) = self.postings.get_mut(&token) {
                if let Ok(pos) = entry.binary_search(&posting) {
                    entry.remove(pos);
                }
                if entry.is_empty() {
                    self.postings.remove(&token);
                }
            }
        }
    }

    /// Exact-token lookup (`bif:contains` semantics for a single word).
    pub fn search_word(&self, word: &str) -> &[Posting] {
        let needle = word.to_lowercase();
        self.postings.get(&needle).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All postings for tokens starting with `prefix`, deduplicated by
    /// subject, capped at `limit` subjects. This is the operation behind
    /// the incremental search candidates list (Fig. 3).
    pub fn search_prefix(&self, prefix: &str, limit: usize) -> Vec<Posting> {
        let needle = prefix.to_lowercase();
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (_, postings) in self
            .postings
            .range(needle.clone()..)
            .take_while(|(token, _)| token.starts_with(&needle))
        {
            for p in postings {
                if seen.insert(p.subject) {
                    out.push(*p);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Postings matching **all** words (conjunctive `bif:contains "a b"`),
    /// intersected on subject.
    pub fn search_all_words(&self, text: &str) -> Vec<Posting> {
        let words = tokenize(text);
        let mut iter = words.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut subjects: std::collections::BTreeSet<TermId> =
            self.search_word(first).iter().map(|p| p.subject).collect();
        for word in iter {
            let next: std::collections::BTreeSet<TermId> =
                self.search_word(word).iter().map(|p| p.subject).collect();
            subjects = subjects.intersection(&next).copied().collect();
            if subjects.is_empty() {
                return Vec::new();
            }
        }
        self.search_word(first)
            .iter()
            .filter(|p| subjects.contains(&p.subject))
            .copied()
            .collect()
    }

    /// Iterates `(token, postings)` entries whose token starts with
    /// `needle_lower` (already lowercased), in token order. This is the
    /// raw stream the cross-shard [`crate::shard::FullTextView`] merges;
    /// pass `""` to walk the whole index.
    pub(crate) fn prefix_entries<'b>(
        &'b self,
        needle_lower: &'b str,
    ) -> impl Iterator<Item = (&'b str, &'b [Posting])> + 'b {
        self.postings
            .range::<str, _>((
                std::ops::Bound::Included(needle_lower),
                std::ops::Bound::Unbounded,
            ))
            .take_while(move |(token, _)| token.starts_with(needle_lower))
            .map(|(t, v)| (t.as_str(), v.as_slice()))
    }

    /// Number of distinct tokens in the index.
    pub fn distinct_tokens(&self) -> usize {
        self.postings.len()
    }

    /// Total tokens indexed (including repeats).
    pub fn tokens_indexed(&self) -> usize {
        self.tokens_indexed
    }
}

/// Splits text into lowercase alphanumeric tokens. Apostrophes inside
/// words split ("dell'arte" → "dell", "arte"), matching how short
/// multilingual labels behave in the synthetic corpora.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lower in c.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> (TermId, TermId, TermId) {
        (TermId(n), TermId(n + 100), TermId(n + 200))
    }

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Mole Antonelliana"), vec!["mole", "antonelliana"]);
        assert_eq!(tokenize("dell'arte!"), vec!["dell", "arte"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("Città di Torino"), vec!["città", "di", "torino"]);
    }

    #[test]
    fn word_search_is_case_insensitive() {
        let mut idx = FullTextIndex::new();
        let (s, p, o) = ids(1);
        idx.index_literal(s, p, o, "Mole Antonelliana");
        assert_eq!(idx.search_word("MOLE").len(), 1);
        assert_eq!(idx.search_word("mole")[0].subject, s);
        assert!(idx.search_word("turin").is_empty());
    }

    #[test]
    fn prefix_search_dedups_subjects_and_caps() {
        let mut idx = FullTextIndex::new();
        for n in 0..10 {
            let (s, p, o) = ids(n);
            idx.index_literal(s, p, o, "Turin Torino");
        }
        let hits = idx.search_prefix("t", 5);
        assert_eq!(hits.len(), 5);
        let hits = idx.search_prefix("tori", 100);
        assert_eq!(hits.len(), 10);
        assert!(idx.search_prefix("x", 10).is_empty());
    }

    #[test]
    fn duplicate_postings_collapse() {
        let mut idx = FullTextIndex::new();
        let (s, p, o) = ids(1);
        idx.index_literal(s, p, o, "turin turin turin");
        assert_eq!(idx.search_word("turin").len(), 1);
    }

    #[test]
    fn all_words_intersects_on_subject() {
        let mut idx = FullTextIndex::new();
        let (s1, p, o) = ids(1);
        let (s2, _, _) = ids(2);
        idx.index_literal(s1, p, o, "roman colosseum");
        idx.index_literal(s2, p, o, "roman forum");
        let hits = idx.search_all_words("roman colosseum");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, s1);
        assert!(idx.search_all_words("roman temple").is_empty());
        assert!(idx.search_all_words("").is_empty());
    }

    #[test]
    fn stats_counters() {
        let mut idx = FullTextIndex::new();
        let (s, p, o) = ids(1);
        idx.index_literal(s, p, o, "a b a");
        assert_eq!(idx.distinct_tokens(), 2);
        assert_eq!(idx.tokens_indexed(), 3);
    }
}
