//! MVCC epoch snapshots: immutable, cheaply-pinned store versions.
//!
//! A [`StoreSnapshot`] is the read side of the store's multi-version
//! concurrency control. Pinning one costs O(shards) reference-count
//! bumps (see [`crate::shard`]); once pinned it is **physically
//! immutable** — the single writer copy-on-writes any shard a live
//! snapshot still shares before mutating it — and it never observes a
//! half-commit, because [`crate::shared::SharedStore`] publishes a new
//! version only when a write guard completes.
//!
//! Everything that reads a [`Store`] reads a snapshot the same way:
//! the snapshot [derefs](std::ops::Deref) to [`Store`], so SPARQL
//! evaluation, album materialization, the live standing-query engine,
//! replication and the web layer all take `&Store` and work unchanged
//! whether handed the writer's store (single-threaded paths) or a
//! pinned version (concurrent paths). The [`SnapshotSource`] trait is
//! the seam: every handle that can produce a consistent version —
//! `SharedStore`, `SharedDurableStore`, the platform — implements it.
//!
//! # Example
//!
//! ```
//! use lodify_store::snapshot::SnapshotSource;
//! use lodify_store::{SharedStore, Store};
//! use lodify_rdf::{Term, Triple};
//!
//! let shared = SharedStore::new(Store::new());
//! shared.with_write(|store| {
//!     let g = store.default_graph();
//!     store.insert(&Triple::spo("http://s", "http://p", Term::literal("v")), g);
//! });
//!
//! // Pin a version: reads are lock-free from here on.
//! let snap = shared.pin();
//! assert_eq!(snap.len(), 1);
//! let at_pin = snap.epoch();
//!
//! // A later commit is invisible to the pinned snapshot…
//! shared.with_write(|store| {
//!     let g = store.default_graph();
//!     store.insert(&Triple::spo("http://s2", "http://p", Term::literal("w")), g);
//! });
//! assert_eq!(snap.len(), 1);
//! assert_eq!(snap.epoch(), at_pin);
//! // …and visible to the next pin.
//! assert_eq!(shared.pin().len(), 2);
//! ```

use std::ops::Deref;

use crate::store::Store;

/// An immutable view of the store at one mutation epoch.
///
/// Cloning a snapshot is as cheap as pinning one; snapshots are
/// `Send + Sync` and may be carried across threads, held across I/O,
/// and dropped in any order. Dropping the last snapshot that shares a
/// shard simply lets the writer stop copy-on-writing it.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    store: Store,
    epoch: u64,
}

impl StoreSnapshot {
    /// Wraps an (already cheap-cloned) store as a pinned version.
    pub(crate) fn pin_of(store: &Store) -> StoreSnapshot {
        StoreSnapshot {
            epoch: store.epoch(),
            store: store.clone(),
        }
    }

    /// The mutation epoch this snapshot was pinned at. Equal epochs
    /// guarantee byte-identical answers — the invariant every cache in
    /// the workspace (album cache, semantic cache, live engine) keys
    /// on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying immutable store view.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

impl Deref for StoreSnapshot {
    type Target = Store;

    fn deref(&self) -> &Store {
        &self.store
    }
}

/// The storage seam: anything that can pin a consistent store version.
///
/// Consumers that only *read* should depend on this trait instead of a
/// concrete handle; it is implemented by
/// [`SharedStore`](crate::shared::SharedStore), by the durability
/// crate's `SharedDurableStore`/`DurableStore`, and by the core
/// platform.
pub trait SnapshotSource {
    /// Pins the latest published version.
    fn pin(&self) -> StoreSnapshot;
}

impl SnapshotSource for Store {
    /// A plain owned store is its own (trivially consistent) source.
    fn pin(&self) -> StoreSnapshot {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::{Term, Triple};

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut store = Store::new();
        let g = store.default_graph();
        store.insert(&Triple::spo("http://a", "http://p", Term::literal("1")), g);
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 1);

        store.insert(&Triple::spo("http://b", "http://p", Term::literal("2")), g);
        store.remove(&Triple::spo("http://a", "http://p", Term::literal("1")));
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.len(), 1);

        // The pinned version still answers exactly as of epoch 1.
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 1);
        assert!(snap.contains(&Triple::spo("http://a", "http://p", Term::literal("1"))));
        assert!(!snap.contains(&Triple::spo("http://b", "http://p", Term::literal("2"))));
    }

    #[test]
    fn snapshot_preserves_side_indexes() {
        let mut store = Store::new();
        let g = store.default_graph();
        store.insert(
            &Triple::spo("http://a", "http://p", Term::literal("mole antonelliana")),
            g,
        );
        let snap = store.snapshot();
        store.remove(&Triple::spo(
            "http://a",
            "http://p",
            Term::literal("mole antonelliana"),
        ));
        assert!(store.fulltext().search_word("mole").is_empty());
        assert_eq!(snap.fulltext().search_word("mole").len(), 1);
        assert_eq!(snap.stats().total(), 1);
        assert_eq!(store.stats().total(), 0);
    }

    #[test]
    fn pin_via_trait_matches_snapshot() {
        let mut store = Store::new();
        let g = store.default_graph();
        store.insert(&Triple::spo("http://a", "http://p", Term::literal("1")), g);
        let via_trait = SnapshotSource::pin(&store);
        assert_eq!(via_trait.epoch(), store.snapshot().epoch());
        assert_eq!(via_trait.export_ntriples(None), store.export_ntriples(None));
    }
}
