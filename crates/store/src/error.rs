//! Store error type.

use std::fmt;

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A term id was presented that this store never issued.
    UnknownTermId(u64),
    /// A graph name was presented that was never registered.
    UnknownGraph(String),
    /// Bulk load failed while parsing input.
    Load(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
            StoreError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            StoreError::Load(msg) => write!(f, "bulk load failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
