//! The triple store facade.
//!
//! Since the MVCC refactor the store is **subject-sharded** and
//! **snapshot-cloneable**: every subject-keyed structure lives in one
//! of N [`crate::shard::Shard`]s behind an [`Arc`], object/predicate
//! side state is Arc-wrapped the same way, and [`Store::clone`] (what
//! [`Store::snapshot`] pins) costs O(shards) reference-count bumps.
//! Mutations go through [`Arc::make_mut`]: the first write after a
//! snapshot copies the touched shard, later writes mutate in place —
//! copy-on-write at shard granularity. Cross-shard reads k-way merge
//! sorted per-shard ranges, so every answer (and every exported byte)
//! is identical for any shard count.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use lodify_rdf::ns::PrefixMap;
use lodify_rdf::{ntriples, turtle, Iri, Point, Term, Triple};

use crate::dict::{Dict, TermId};
use crate::error::StoreError;
use crate::shard::{
    empty_shards, merge_sorted, shard_of, FullTextView, GeoView, Shard, DEFAULT_SHARDS,
};
use crate::snapshot::StoreSnapshot;
use crate::stats::Stats;

/// Identifier of a named graph registered in a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u16);

/// Name of the default graph (used when no explicit graph is given).
pub const DEFAULT_GRAPH: &str = "urn:lodify:graph:default";

pub(crate) type Key = crate::shard::Key;

/// Named-graph registry (small; cloned copy-on-write as one unit).
#[derive(Debug, Clone, Default)]
struct GraphTable {
    names: Vec<String>,
    ids: HashMap<String, GraphId>,
}

/// Dictionary-encoded in-memory triple store with subject-sharded
/// SPO/POS/OSP indexes, full-text and geo side indexes, and
/// subject-level graph provenance.
///
/// All queries run over the **union** of graphs — exactly how the
/// paper's Virtuoso instance serves SPARQL over the platform data plus
/// the imported DBpedia/Geonames/LinkedGeoData snapshots — while
/// [`Store::graph_of_subject`] exposes the provenance the semantic
/// filter ranks candidates by.
///
/// # Concurrency
///
/// A `Store` value is the *writer's* working version. `Clone` is cheap
/// (O(shards), shares all index payloads) and produces a physically
/// immutable view as of that instant — [`Store::snapshot`] packages
/// exactly that as a [`StoreSnapshot`]. Concurrent access goes through
/// [`crate::shared::SharedStore`], which serializes writers and
/// atomically publishes snapshots to readers.
#[derive(Debug, Clone)]
pub struct Store {
    dict: Dict,
    /// Subject shards: SPO/POS/OSP + fulltext + geo + provenance.
    shards: Vec<Arc<Shard>>,
    /// Distinct-object sets, sharded by a mix of the object id.
    objects: Vec<Arc<HashSet<TermId>>>,
    graphs: Arc<GraphTable>,
    stats: Arc<Stats>,
    geo_geometry: TermId,
    epoch: u64,
    predicate_epochs: Arc<HashMap<TermId, u64>>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Creates an empty store with the default graph registered and
    /// [`DEFAULT_SHARDS`] subject shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store partitioned into `shards` subject shards
    /// (at least one). Shard count is a physical layout choice: query
    /// answers and exported bytes are identical for every value.
    pub fn with_shards(shards: usize) -> Self {
        let mut dict = Dict::new();
        let geo_geometry = dict.intern(&Term::Iri(lodify_rdf::ns::iri::geo_geometry()));
        let mut store = Store {
            dict,
            shards: empty_shards(shards),
            objects: (0..shards).map(|_| Arc::default()).collect(),
            graphs: Arc::default(),
            stats: Arc::new(Stats::new()),
            geo_geometry,
            epoch: 0,
            predicate_epochs: Arc::default(),
        };
        store.graph(DEFAULT_GRAPH);
        store
    }

    /// Number of subject shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pins this store's current state as an immutable
    /// [`StoreSnapshot`] (O(shards) — see [`crate::snapshot`]).
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot::pin_of(self)
    }

    #[inline]
    fn shard_index(&self, subject: TermId) -> usize {
        shard_of(subject, self.shards.len())
    }

    #[inline]
    fn object_index(&self, object: TermId) -> usize {
        shard_of(object, self.objects.len())
    }

    /// Registers (or retrieves) a named graph by IRI/name.
    pub fn graph(&mut self, name: &str) -> GraphId {
        if let Some(&id) = self.graphs.ids.get(name) {
            return id;
        }
        let graphs = Arc::make_mut(&mut self.graphs);
        let id = GraphId(graphs.names.len() as u16);
        graphs.names.push(name.to_string());
        graphs.ids.insert(name.to_string(), id);
        id
    }

    /// The default graph's id.
    pub fn default_graph(&self) -> GraphId {
        GraphId(0)
    }

    /// Name of a registered graph.
    pub fn graph_name(&self, id: GraphId) -> Option<&str> {
        self.graphs.names.get(id.0 as usize).map(String::as_str)
    }

    /// Id of a registered graph, by name.
    pub fn graph_id(&self, name: &str) -> Option<GraphId> {
        self.graphs.ids.get(name).copied()
    }

    /// Number of registered graphs (ids are dense, `0..count`).
    pub fn graph_count(&self) -> usize {
        self.graphs.names.len()
    }

    /// Registered graph names in [`GraphId`] order.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> {
        self.graphs.names.iter().map(String::as_str)
    }

    /// The graph that first introduced `subject`, if any.
    pub fn graph_of_subject(&self, subject: TermId) -> Option<GraphId> {
        self.shards[self.shard_index(subject)]
            .subject_graph
            .get(&subject)
            .copied()
    }

    /// Like [`Store::graph_of_subject`] but resolves from a [`Term`].
    pub fn graph_of_term(&self, term: &Term) -> Option<&str> {
        let id = self.dict.id(term)?;
        let g = self.graph_of_subject(id)?;
        self.graph_name(g)
    }

    /// Inserts one triple into the given graph. Returns `true` when the
    /// statement was new to the (union) store.
    pub fn insert(&mut self, triple: &Triple, graph: GraphId) -> bool {
        let s = self.dict.intern(&triple.subject);
        let p = self.dict.intern(&Term::Iri(triple.predicate.clone()));
        let o = self.dict.intern(&triple.object);
        let si = self.shard_index(s);
        {
            // First mutation after a snapshot publish copies this one
            // shard; everything below then mutates the unique copy.
            let shard = Arc::make_mut(&mut self.shards[si]);
            if !shard.spo.insert((s, p, o)) {
                return false;
            }
            shard.pos.insert((p, o, s));
            shard.osp.insert((o, s, p));
        }
        self.bump_epoch(p);

        let oi = self.object_index(o);
        let new_object = Arc::make_mut(&mut self.objects[oi]).insert(o);
        let shard = Arc::make_mut(&mut self.shards[si]);
        let new_subject = shard.seen_subjects.insert(s);
        shard.subject_graph.entry(s).or_insert(graph);
        Arc::make_mut(&mut self.stats).record(p, new_subject, new_object);

        if let Term::Literal(lit) = &triple.object {
            let shard = Arc::make_mut(&mut self.shards[si]);
            if p == self.geo_geometry || lit.is_geometry() {
                if let Ok(point) = Point::from_literal(lit) {
                    shard.geo.insert(s, point);
                }
            } else if lit.datatype().is_none() || lit.language().is_some() {
                shard.fulltext.index_literal(s, p, o, lit.value());
            }
        }
        true
    }

    /// Inserts into the default graph.
    pub fn insert_default(&mut self, triple: &Triple) -> bool {
        self.insert(triple, GraphId(0))
    }

    /// Removes a statement from the union store (all indexes). Returns
    /// `true` when the statement was present. Dictionary entries and
    /// subject provenance are retained (ids stay stable).
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id(&triple.subject),
            self.dict.id(&Term::Iri(triple.predicate.clone())),
            self.dict.id(&triple.object),
        ) else {
            return false;
        };
        let si = self.shard_index(s);
        {
            let shard = Arc::make_mut(&mut self.shards[si]);
            if !shard.spo.remove(&(s, p, o)) {
                return false;
            }
            shard.pos.remove(&(p, o, s));
            shard.osp.remove(&(o, s, p));
        }
        self.bump_epoch(p);

        // Keep join-ordering statistics exact under deletes: a term
        // leaves the distinct-subject/object population only when its
        // last statement in that position goes. The subject check is
        // shard-local; the object check spans shards (an object may
        // appear under subjects routed anywhere).
        let subject_gone = self.match_ids(Some(s), None, None).next().is_none();
        let object_gone = self.match_ids(None, None, Some(o)).next().is_none();
        if subject_gone {
            let shard = Arc::make_mut(&mut self.shards[si]);
            shard.seen_subjects.remove(&s);
        }
        if object_gone {
            let oi = self.object_index(o);
            Arc::make_mut(&mut self.objects[oi]).remove(&o);
        }
        Arc::make_mut(&mut self.stats).unrecord(p, subject_gone, object_gone);

        if let Term::Literal(lit) = &triple.object {
            if p == self.geo_geometry || lit.is_geometry() {
                // Only clear the point if no other geometry triple remains.
                if self
                    .match_ids(Some(s), Some(self.geo_geometry), None)
                    .next()
                    .is_none()
                {
                    Arc::make_mut(&mut self.shards[si]).geo.remove(s);
                }
            } else if lit.datatype().is_none() || lit.language().is_some() {
                Arc::make_mut(&mut self.shards[si])
                    .fulltext
                    .remove_literal(s, p, o, lit.value());
            }
        }
        true
    }

    /// Removes every statement matching `(subject, predicate, *)` and
    /// returns how many were removed. Used when re-deriving a computed
    /// property (e.g. refreshing a picture's `rev:rating`).
    pub fn remove_pattern_sp(&mut self, subject: &Term, predicate: &Iri) -> usize {
        let matches = self.match_terms(Some(subject), Some(predicate), None);
        matches.iter().filter(|t| self.remove(t)).count()
    }

    /// Bulk-loads an N-Triples document into `graph`; returns the
    /// number of *new* statements.
    pub fn load_ntriples(&mut self, text: &str, graph: GraphId) -> Result<usize, StoreError> {
        let triples =
            ntriples::parse_document(text).map_err(|e| StoreError::Load(e.to_string()))?;
        Ok(triples.iter().filter(|t| self.insert(t, graph)).count())
    }

    /// Bulk-loads a Turtle document into `graph`.
    pub fn load_turtle(
        &mut self,
        text: &str,
        prefixes: &PrefixMap,
        graph: GraphId,
    ) -> Result<usize, StoreError> {
        let triples =
            turtle::parse_document(text, prefixes).map_err(|e| StoreError::Load(e.to_string()))?;
        Ok(triples.iter().filter(|t| self.insert(t, graph)).count())
    }

    /// Inserts a batch of triples into `graph`; returns new-statement count.
    pub fn insert_all<'a>(
        &mut self,
        triples: impl IntoIterator<Item = &'a Triple>,
        graph: GraphId,
    ) -> usize {
        triples
            .into_iter()
            .filter(|t| self.insert(t, graph))
            .count()
    }

    /// Whether the union store contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id(&triple.subject),
            self.dict.id(&Term::Iri(triple.predicate.clone())),
            self.dict.id(&triple.object),
        ) else {
            return false;
        };
        self.shards[self.shard_index(s)].spo.contains(&(s, p, o))
    }

    /// Number of statements in the union store.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|sh| sh.spo.len()).sum()
    }

    /// True when no statements are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|sh| sh.spo.is_empty())
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Interns a term (for query-constant preparation).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Looks up a term's id without interning.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id(term)
    }

    /// Resolves an id to its term.
    pub fn term_of(&self, id: TermId) -> Option<&Term> {
        self.dict.term(id)
    }

    /// The full-text index, merged across shards.
    pub fn fulltext(&self) -> FullTextView<'_> {
        FullTextView::over(&self.shards)
    }

    /// The geo index, merged across shards.
    pub fn geo(&self) -> GeoView<'_> {
        GeoView::over(&self.shards)
    }

    /// Join-ordering statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Advances the mutation epoch after a successful insert/remove of
    /// a statement with predicate `p`. Because WAL recovery rebuilds a
    /// store by replaying `insert`/`remove`, epochs repopulate on boot
    /// without any journal support.
    fn bump_epoch(&mut self, p: TermId) {
        self.epoch += 1;
        Arc::make_mut(&mut self.predicate_epochs).insert(p, self.epoch);
    }

    /// Monotone mutation counter: increments on every *successful*
    /// [`Store::insert`] or [`Store::remove`]. Cached query results are
    /// keyed by this value — equal epochs guarantee equal answers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of the last mutation touching predicate `p` (0 when
    /// the predicate never appeared). A query reading only predicates
    /// `P` stays valid while `max(predicate_epoch(p) for p in P)` is
    /// unchanged — the incremental-invalidation rule used by the
    /// materialized album cache.
    pub fn predicate_epoch(&self, p: TermId) -> u64 {
        self.predicate_epochs.get(&p).copied().unwrap_or(0)
    }

    /// Matches a triple pattern over ids; `None` positions are
    /// wildcards. Results stream as `(s, p, o)` in exactly the order a
    /// single monolithic index would produce: subject-bound shapes scan
    /// one shard, unbound-subject shapes k-way merge the per-shard
    /// sorted ranges.
    pub fn match_ids(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = Key> + '_> {
        const MIN: TermId = TermId::MIN;
        const MAX: TermId = TermId::MAX;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let hit = self.shards[self.shard_index(s)].spo.contains(&(s, p, o));
                Box::new(hit.then_some((s, p, o)).into_iter())
            }
            (Some(s), Some(p), None) => {
                let shard = &self.shards[self.shard_index(s)];
                Box::new(shard.spo.range((s, p, MIN)..=(s, p, MAX)).copied())
            }
            (Some(s), None, None) => {
                let shard = &self.shards[self.shard_index(s)];
                Box::new(shard.spo.range((s, MIN, MIN)..=(s, MAX, MAX)).copied())
            }
            (Some(s), None, Some(o)) => {
                let shard = &self.shards[self.shard_index(s)];
                Box::new(
                    shard
                        .osp
                        .range((o, s, MIN)..=(o, s, MAX))
                        .map(|&(o, s, p)| (s, p, o)),
                )
            }
            (None, Some(p), Some(o)) => Box::new(
                merge_sorted(
                    self.shards
                        .iter()
                        .map(|sh| sh.pos.range((p, o, MIN)..=(p, o, MAX)).copied())
                        .collect(),
                )
                .map(|(p, o, s)| (s, p, o)),
            ),
            (None, Some(p), None) => Box::new(
                merge_sorted(
                    self.shards
                        .iter()
                        .map(|sh| sh.pos.range((p, MIN, MIN)..=(p, MAX, MAX)).copied())
                        .collect(),
                )
                .map(|(p, o, s)| (s, p, o)),
            ),
            (None, None, Some(o)) => Box::new(
                merge_sorted(
                    self.shards
                        .iter()
                        .map(|sh| sh.osp.range((o, MIN, MIN)..=(o, MAX, MAX)).copied())
                        .collect(),
                )
                .map(|(o, s, p)| (s, p, o)),
            ),
            (None, None, None) => Box::new(merge_sorted(
                self.shards
                    .iter()
                    .map(|sh| sh.spo.iter().copied())
                    .collect(),
            )),
        }
    }

    /// Term-level pattern matching; convenient for tests and tooling.
    pub fn match_terms(&self, s: Option<&Term>, p: Option<&Iri>, o: Option<&Term>) -> Vec<Triple> {
        let resolve = |t: Option<&Term>| -> Option<Option<TermId>> {
            match t {
                None => Some(None),
                Some(term) => self.dict.id(term).map(Some),
            }
        };
        let Some(s_id) = resolve(s) else {
            return Vec::new();
        };
        let Some(p_id) = resolve(p.map(|i| Term::Iri(i.clone())).as_ref()) else {
            return Vec::new();
        };
        let Some(o_id) = resolve(o) else {
            return Vec::new();
        };
        self.match_ids(s_id, p_id, o_id)
            .filter_map(|(s, p, o)| {
                let subject = self.dict.term(s)?.clone();
                let predicate = self.dict.term(p)?.as_iri()?.clone();
                let object = self.dict.term(o)?.clone();
                Some(Triple::new_unchecked(subject, predicate, object))
            })
            .collect()
    }

    /// Count of statements matching a pattern without materializing.
    pub fn count_pattern(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.match_ids(s, p, o).count()
    }

    /// Iterates every statement as a resolved [`Triple`], in SPO order.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.match_ids(None, None, None).filter_map(|(s, p, o)| {
            Some(Triple::new_unchecked(
                self.dict.term(s)?.clone(),
                self.dict.term(p)?.as_iri()?.clone(),
                self.dict.term(o)?.clone(),
            ))
        })
    }

    /// Streams the union store (or one named graph) as N-Triples into
    /// any [`fmt::Write`] sink — a `String`, a growable buffer behind
    /// an HTTP response, a line counter — without materializing the
    /// whole document.
    pub fn export_ntriples_to(
        &self,
        out: &mut impl fmt::Write,
        graph: Option<GraphId>,
    ) -> fmt::Result {
        for (s, p, o) in self.match_ids(None, None, None) {
            if let Some(g) = graph {
                if self.graph_of_subject(s) != Some(g) {
                    continue;
                }
            }
            let (Some(subject), Some(predicate), Some(object)) = (
                self.dict.term(s),
                self.dict.term(p).and_then(Term::as_iri),
                self.dict.term(o),
            ) else {
                continue;
            };
            writeln!(out, "{subject} {predicate} {object} .")?;
        }
        Ok(())
    }

    /// Serializes the union store (or one named graph) to N-Triples —
    /// the paper's "semantic platform offering Linked Data
    /// functionalities and running locally" needs its data exportable.
    /// Allocating convenience over [`Store::export_ntriples_to`].
    pub fn export_ntriples(&self, graph: Option<GraphId>) -> String {
        let mut out = String::new();
        self.export_ntriples_to(&mut out, graph)
            .expect("writing to a String cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::ns;
    use lodify_rdf::Literal;

    fn triple(s: &str, p: &str, o: Term) -> Triple {
        Triple::spo(s, p, o)
    }

    fn sample_store() -> Store {
        let mut store = Store::new();
        let ugc = store.graph("urn:g:ugc");
        let dbp = store.graph("urn:g:dbpedia");
        store.insert(
            &triple(
                "http://t/pic1",
                ns::iri::rdf_type().as_str(),
                Term::Iri(ns::iri::microblog_post()),
            ),
            ugc,
        );
        store.insert(
            &triple(
                "http://t/pic1",
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            ugc,
        );
        store.insert(
            &triple(
                "http://t/pic1",
                ns::iri::geo_geometry().as_str(),
                Term::Literal(Point::new(7.6933, 45.0692).unwrap().to_literal()),
            ),
            ugc,
        );
        store.insert(
            &triple(
                "http://dbpedia.org/resource/Turin",
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Torino", "it").unwrap()),
            ),
            dbp,
        );
        store
    }

    #[test]
    fn insert_dedups() {
        let mut store = Store::new();
        let t = triple("http://s", "http://p", Term::literal("v"));
        assert!(store.insert_default(&t));
        assert!(!store.insert_default(&t));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pattern_shapes_all_work() {
        let store = sample_store();
        let s = store.id_of(&Term::iri_unchecked("http://t/pic1")).unwrap();
        let p = store.id_of(&Term::Iri(ns::iri::rdfs_label())).unwrap();
        let o = store
            .id_of(&Term::Literal(Literal::lang("Torino", "it").unwrap()))
            .unwrap();

        assert_eq!(store.count_pattern(Some(s), None, None), 3);
        assert_eq!(store.count_pattern(Some(s), Some(p), None), 1);
        assert_eq!(store.count_pattern(None, Some(p), None), 2);
        assert_eq!(store.count_pattern(None, Some(p), Some(o)), 1);
        assert_eq!(store.count_pattern(None, None, Some(o)), 1);
        assert_eq!(store.count_pattern(None, None, None), 4);
        // s+o bound, p wildcard
        let turin = store
            .id_of(&Term::iri_unchecked("http://dbpedia.org/resource/Turin"))
            .unwrap();
        assert_eq!(store.count_pattern(Some(turin), None, Some(o)), 1);
        // fully bound
        assert_eq!(store.count_pattern(Some(turin), Some(p), Some(o)), 1);
        assert_eq!(store.count_pattern(Some(s), Some(p), Some(o)), 0);
    }

    #[test]
    fn match_terms_resolves() {
        let store = sample_store();
        let hits = store.match_terms(None, Some(&ns::iri::rdfs_label()), None);
        assert_eq!(hits.len(), 2);
        let none = store.match_terms(Some(&Term::iri_unchecked("http://absent")), None, None);
        assert!(none.is_empty());
    }

    #[test]
    fn geometry_objects_feed_geo_index() {
        let store = sample_store();
        assert_eq!(store.geo().len(), 1);
        let center = Point::new(7.6933, 45.0692).unwrap();
        assert_eq!(store.geo().within_km(center, 0.1).len(), 1);
    }

    #[test]
    fn string_literals_feed_fulltext_index() {
        let store = sample_store();
        assert_eq!(store.fulltext().search_word("antonelliana").len(), 1);
        assert_eq!(store.fulltext().search_word("torino").len(), 1);
        // Geometry literals must not be text-indexed.
        assert!(store.fulltext().search_word("point").is_empty());
    }

    #[test]
    fn graph_provenance_tracks_first_graph() {
        let store = sample_store();
        assert_eq!(
            store.graph_of_term(&Term::iri_unchecked("http://t/pic1")),
            Some("urn:g:ugc")
        );
        assert_eq!(
            store.graph_of_term(&Term::iri_unchecked("http://dbpedia.org/resource/Turin")),
            Some("urn:g:dbpedia")
        );
        assert_eq!(
            store.graph_of_term(&Term::iri_unchecked("http://absent")),
            None
        );
    }

    #[test]
    fn load_ntriples_counts_new_statements() {
        let mut store = Store::new();
        let g = store.default_graph();
        let doc = "<http://s> <http://p> \"v\" .\n<http://s> <http://p> \"v\" .\n";
        assert_eq!(store.load_ntriples(doc, g).unwrap(), 1);
        assert!(store.load_ntriples("garbage", g).is_err());
    }

    #[test]
    fn load_turtle_works() {
        let mut store = Store::new();
        let g = store.default_graph();
        let prefixes = PrefixMap::with_defaults();
        let doc = "@prefix ex: <http://e/> .\nex:s a sioct:MicroblogPost .";
        assert_eq!(store.load_turtle(doc, &prefixes, g).unwrap(), 1);
        assert!(store.contains(&triple(
            "http://e/s",
            ns::iri::rdf_type().as_str(),
            Term::Iri(ns::iri::microblog_post()),
        )));
    }

    #[test]
    fn remove_clears_all_indexes() {
        let mut store = sample_store();
        let label_triple = triple(
            "http://t/pic1",
            ns::iri::rdfs_label().as_str(),
            Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
        );
        assert!(store.remove(&label_triple));
        assert!(!store.remove(&label_triple), "second remove is a no-op");
        assert!(!store.contains(&label_triple));
        assert!(store.fulltext().search_word("antonelliana").is_empty());

        let geom_triple = triple(
            "http://t/pic1",
            ns::iri::geo_geometry().as_str(),
            Term::Literal(Point::new(7.6933, 45.0692).unwrap().to_literal()),
        );
        assert!(store.remove(&geom_triple));
        assert_eq!(store.geo().len(), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn remove_pattern_sp_clears_all_objects() {
        let mut store = Store::new();
        let g = store.default_graph();
        let s = Term::iri_unchecked("http://pic");
        let pred = ns::iri::rev_rating();
        for v in [3, 4] {
            store.insert(
                &Triple::new_unchecked(s.clone(), pred.clone(), Term::Literal(Literal::integer(v))),
                g,
            );
        }
        assert_eq!(store.remove_pattern_sp(&s, &pred), 2);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn remove_unwinds_statistics() {
        let mut store = Store::new();
        let g = store.default_graph();
        let label = ns::iri::rdfs_label();
        let t1 = triple("http://a", label.as_str(), Term::literal("one"));
        let t2 = triple("http://a", label.as_str(), Term::literal("two"));
        let t3 = triple("http://b", label.as_str(), Term::literal("one"));
        store.insert(&t1, g);
        store.insert(&t2, g);
        store.insert(&t3, g);
        let p = store.id_of(&Term::Iri(label.clone())).unwrap();
        assert_eq!(store.stats().total(), 3);
        assert_eq!(store.stats().predicate_count(p), 3);

        // "http://a" keeps a statement, so only the object "two" leaves
        // the distinct populations.
        store.remove(&t2);
        assert_eq!(store.stats().total(), 2);
        assert_eq!(store.stats().predicate_count(p), 2);
        assert_eq!(store.stats().estimate(false, Some(p), false), 2.0);

        // Removing the rest must drain the stats back to empty — the
        // drift this guards against made estimates grow monotonically.
        store.remove(&t1);
        store.remove(&t3);
        assert_eq!(store.stats().total(), 0);
        assert_eq!(store.stats().predicate_count(p), 0);
        assert_eq!(store.stats().estimate(false, Some(p), false), 0.0);

        // Re-inserting counts the terms as distinct again, exactly once.
        store.insert(&t1, g);
        assert_eq!(store.stats().total(), 1);
        assert_eq!(store.stats().predicate_count(p), 1);
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let store = sample_store();
        let dump = store.export_ntriples(None);
        let mut reloaded = Store::new();
        let g = reloaded.default_graph();
        assert_eq!(reloaded.load_ntriples(&dump, g).unwrap(), store.len());
        assert_eq!(reloaded.len(), store.len());
        // Per-graph export only carries that graph's subjects.
        let ugc = store.graph_id("urn:g:ugc").unwrap();
        let partial = store.export_ntriples(Some(ugc));
        assert!(partial.contains("http://t/pic1"));
        assert!(!partial.contains("dbpedia.org"));
    }

    #[test]
    fn streaming_export_matches_the_allocating_one() {
        let store = sample_store();
        let mut streamed = String::new();
        store.export_ntriples_to(&mut streamed, None).unwrap();
        assert_eq!(streamed, store.export_ntriples(None));

        // Any fmt::Write sink works — count lines without buffering.
        struct LineCount(usize);
        impl std::fmt::Write for LineCount {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0 += s.bytes().filter(|&b| b == b'\n').count();
                Ok(())
            }
        }
        let mut sink = LineCount(0);
        store.export_ntriples_to(&mut sink, None).unwrap();
        assert_eq!(sink.0, store.len());
    }

    #[test]
    fn epoch_advances_only_on_effective_mutations() {
        let mut store = Store::new();
        let g = store.default_graph();
        assert_eq!(store.epoch(), 0);
        let t = triple("http://s", "http://p", Term::literal("v"));
        assert!(store.insert(&t, g));
        assert_eq!(store.epoch(), 1);
        // Duplicate insert and no-op remove leave the epoch alone.
        assert!(!store.insert(&t, g));
        assert!(!store.remove(&triple("http://s", "http://p", Term::literal("absent"))));
        assert_eq!(store.epoch(), 1);
        assert!(store.remove(&t));
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn predicate_epochs_track_per_predicate_mutations() {
        let mut store = Store::new();
        let g = store.default_graph();
        let ta = triple("http://s", "http://p/a", Term::literal("1"));
        let tb = triple("http://s", "http://p/b", Term::literal("2"));
        store.insert(&ta, g);
        store.insert(&tb, g);
        let pa = store.id_of(&Term::iri_unchecked("http://p/a")).unwrap();
        let pb = store.id_of(&Term::iri_unchecked("http://p/b")).unwrap();
        assert_eq!(store.predicate_epoch(pa), 1);
        assert_eq!(store.predicate_epoch(pb), 2);
        // A mutation under predicate b leaves a's epoch untouched.
        store.remove(&tb);
        assert_eq!(store.predicate_epoch(pa), 1);
        assert_eq!(store.predicate_epoch(pb), 3);
        // Unknown predicates report epoch 0.
        let absent = store.id_of(&Term::iri_unchecked("http://s")).unwrap();
        assert_eq!(store.predicate_epoch(absent), 0);
    }

    #[test]
    fn graph_registration_is_idempotent() {
        let mut store = Store::new();
        let a = store.graph("urn:g:x");
        let b = store.graph("urn:g:x");
        assert_eq!(a, b);
        assert_eq!(store.graph_name(a), Some("urn:g:x"));
        assert_eq!(store.graph_name(GraphId(99)), None);
    }

    /// Builds a store with a deterministic mixed workload — inserts,
    /// duplicates, removals, fulltext literals, geometry — used to
    /// assert layout invariance across shard counts.
    fn mixed_workload(shards: usize) -> Store {
        let mut store = Store::with_shards(shards);
        let ugc = store.graph("urn:g:ugc");
        let dbp = store.graph("urn:g:dbpedia");
        for i in 0..120u64 {
            let g = if i % 3 == 0 { dbp } else { ugc };
            store.insert(
                &triple(
                    &format!("http://t/user{}/pic{i}", i % 7),
                    ns::iri::rdfs_label().as_str(),
                    Term::literal(format!("label number {i} torino")),
                ),
                g,
            );
            if i % 4 == 0 {
                store.insert(
                    &triple(
                        &format!("http://t/user{}/pic{i}", i % 7),
                        ns::iri::geo_geometry().as_str(),
                        Term::Literal(
                            Point::new(7.0 + (i as f64) * 0.01, 45.0)
                                .unwrap()
                                .to_literal(),
                        ),
                    ),
                    ugc,
                );
            }
            if i % 5 == 0 {
                // Shared objects across subjects (cross-shard).
                store.insert(
                    &triple(
                        &format!("http://t/user{}/pic{i}", i % 7),
                        ns::iri::rdf_type().as_str(),
                        Term::Iri(ns::iri::microblog_post()),
                    ),
                    ugc,
                );
            }
        }
        // Removals, including ones that drain subjects/objects.
        for i in (0..120u64).step_by(6) {
            store.remove(&triple(
                &format!("http://t/user{}/pic{i}", i % 7),
                ns::iri::rdfs_label().as_str(),
                Term::literal(format!("label number {i} torino")),
            ));
        }
        store
    }

    #[test]
    fn shard_count_is_invisible_to_every_read_path() {
        let one = mixed_workload(1);
        let four = mixed_workload(4);
        let sixteen = mixed_workload(16);
        assert_eq!(one.shard_count(), 1);
        assert_eq!(sixteen.shard_count(), 16);

        // Byte-identical exports (global SPO order via k-way merge).
        let dump = one.export_ntriples(None);
        assert_eq!(dump, four.export_ntriples(None));
        assert_eq!(dump, sixteen.export_ntriples(None));

        // Epochs, stats, side indexes.
        assert_eq!(one.epoch(), sixteen.epoch());
        assert_eq!(one.stats().total(), sixteen.stats().total());
        assert_eq!(
            one.fulltext().search_word("torino"),
            sixteen.fulltext().search_word("torino")
        );
        assert_eq!(
            one.fulltext().search_prefix("lab", 10),
            sixteen.fulltext().search_prefix("lab", 10)
        );
        let center = Point::new(7.3, 45.0).unwrap();
        assert_eq!(
            one.geo().within_km(center, 50.0),
            sixteen.geo().within_km(center, 50.0)
        );

        // Pattern shapes agree with the single-shard oracle.
        let p = one.id_of(&Term::Iri(ns::iri::rdfs_label())).unwrap();
        assert_eq!(
            one.match_ids(None, Some(p), None).collect::<Vec<_>>(),
            sixteen.match_ids(None, Some(p), None).collect::<Vec<_>>()
        );
        assert_eq!(
            one.match_ids(None, None, None).collect::<Vec<_>>(),
            sixteen.match_ids(None, None, None).collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshot_clone_shares_until_write() {
        let mut store = mixed_workload(8);
        let snap = store.snapshot();
        let before = snap.export_ntriples(None);
        // Heavy mutation after the pin.
        for i in 0..50u64 {
            store.insert_default(&triple(
                &format!("http://new/{i}"),
                "http://p",
                Term::literal(format!("v{i}")),
            ));
        }
        assert_eq!(snap.export_ntriples(None), before);
        assert_eq!(store.len(), snap.len() + 50);
    }
}
