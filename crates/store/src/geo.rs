//! Geospatial index over `geo:geometry` point literals.
//!
//! A uniform lon/lat grid (default cell ≈ 0.05°, roughly 4–5 km at
//! Torino's latitude) maps each georeferenced subject to a cell;
//! radius queries scan only the cells overlapping the bounding box of
//! the search circle and verify candidates with exact great-circle
//! distance. This keeps `bif:st_intersects` evaluation out of the
//! O(n·m) nested-loop regime for the paper's virtual-album queries.

use std::collections::{BTreeMap, HashMap};

use lodify_rdf::Point;

use crate::dict::TermId;

/// Grid cell coordinate.
type Cell = (i32, i32);

/// Grid-backed point index keyed by subject id.
#[derive(Debug, Clone)]
pub struct GeoIndex {
    cell_deg: f64,
    by_subject: HashMap<TermId, Point>,
    grid: BTreeMap<Cell, Vec<TermId>>,
}

impl Default for GeoIndex {
    fn default() -> Self {
        GeoIndex::new(0.05)
    }
}

impl GeoIndex {
    /// Creates an index with the given cell size in degrees.
    pub fn new(cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0, "cell size must be positive");
        GeoIndex {
            cell_deg,
            by_subject: HashMap::new(),
            grid: BTreeMap::new(),
        }
    }

    fn cell_of(&self, p: Point) -> Cell {
        (
            (p.lon / self.cell_deg).floor() as i32,
            (p.lat / self.cell_deg).floor() as i32,
        )
    }

    /// Registers (or moves) a subject's point.
    pub fn insert(&mut self, subject: TermId, point: Point) {
        if let Some(old) = self.by_subject.insert(subject, point) {
            let old_cell = self.cell_of(old);
            if let Some(v) = self.grid.get_mut(&old_cell) {
                v.retain(|&s| s != subject);
            }
        }
        self.grid
            .entry(self.cell_of(point))
            .or_default()
            .push(subject);
    }

    /// Removes a subject's point, if registered.
    pub fn remove(&mut self, subject: TermId) {
        if let Some(old) = self.by_subject.remove(&subject) {
            let cell = self.cell_of(old);
            if let Some(v) = self.grid.get_mut(&cell) {
                v.retain(|&s| s != subject);
            }
        }
    }

    /// The point registered for `subject`, if any.
    pub fn point_of(&self, subject: TermId) -> Option<Point> {
        self.by_subject.get(&subject).copied()
    }

    /// Subjects within `radius_km` of `center`, with their distances,
    /// sorted nearest-first.
    pub fn within_km(&self, center: Point, radius_km: f64) -> Vec<(TermId, f64)> {
        // Bounding box in degrees. 1° latitude ≈ 111.195 km; longitude
        // shrinks by cos(lat). Guard the cosine near the poles.
        let dlat = radius_km / 111.195;
        let coslat = center.lat.to_radians().cos().max(0.01);
        let dlon = radius_km / (111.195 * coslat);

        let min_cell = self.cell_of(Point {
            lon: (center.lon - dlon).max(-180.0),
            lat: (center.lat - dlat).max(-90.0),
        });
        let max_cell = self.cell_of(Point {
            lon: (center.lon + dlon).min(180.0),
            lat: (center.lat + dlat).min(90.0),
        });

        let mut hits = Vec::new();
        for cx in min_cell.0..=max_cell.0 {
            for cy in min_cell.1..=max_cell.1 {
                if let Some(subjects) = self.grid.get(&(cx, cy)) {
                    for &s in subjects {
                        let p = self.by_subject[&s];
                        let d = center.distance_km(p);
                        if d <= radius_km {
                            hits.push((s, d));
                        }
                    }
                }
            }
        }
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// Number of indexed subjects.
    pub fn len(&self) -> usize {
        self.by_subject.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_subject.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lon: f64, lat: f64) -> Point {
        Point::new(lon, lat).unwrap()
    }

    #[test]
    fn radius_query_finds_only_nearby() {
        let mut idx = GeoIndex::default();
        let mole = pt(7.6933, 45.0692);
        idx.insert(TermId(1), mole);
        idx.insert(TermId(2), mole.offset_km(0.2, 0.0)); // ~200 m east
        idx.insert(TermId(3), pt(9.19, 45.4642)); // Milan, ~126 km
        let hits = idx.within_km(mole, 0.3);
        let ids: Vec<u64> = hits.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![1, 2]);
        let hits = idx.within_km(mole, 200.0);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn results_sorted_nearest_first() {
        let mut idx = GeoIndex::default();
        let c = pt(7.0, 45.0);
        idx.insert(TermId(1), c.offset_km(3.0, 0.0));
        idx.insert(TermId(2), c.offset_km(1.0, 0.0));
        idx.insert(TermId(3), c.offset_km(2.0, 0.0));
        let hits = idx.within_km(c, 10.0);
        let ids: Vec<u64> = hits.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn reinsert_moves_subject() {
        let mut idx = GeoIndex::default();
        idx.insert(TermId(1), pt(7.0, 45.0));
        idx.insert(TermId(1), pt(9.0, 46.0));
        assert_eq!(idx.len(), 1);
        assert!(idx.within_km(pt(7.0, 45.0), 1.0).is_empty());
        assert_eq!(idx.within_km(pt(9.0, 46.0), 1.0).len(), 1);
        assert_eq!(idx.point_of(TermId(1)), Some(pt(9.0, 46.0)));
    }

    #[test]
    fn crossing_cell_boundaries_is_transparent() {
        // Points straddling a cell edge must both be found.
        let mut idx = GeoIndex::new(0.05);
        let edge = pt(0.049999, 0.049999);
        let other = pt(0.050001, 0.050001);
        idx.insert(TermId(1), edge);
        idx.insert(TermId(2), other);
        let hits = idx.within_km(edge, 1.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn grid_agrees_with_linear_scan() {
        // Deterministic pseudo-random points; compare grid query to a
        // brute-force filter.
        let mut idx = GeoIndex::default();
        let mut points = Vec::new();
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..500 {
            let p = pt(7.0 + next() * 0.5, 45.0 + next() * 0.5);
            idx.insert(TermId(i), p);
            points.push((TermId(i), p));
        }
        let center = pt(7.25, 45.25);
        for radius in [0.5, 2.0, 10.0, 50.0] {
            let mut expected: Vec<TermId> = points
                .iter()
                .filter(|(_, p)| center.distance_km(*p) <= radius)
                .map(|(s, _)| *s)
                .collect();
            expected.sort();
            let mut got: Vec<TermId> = idx
                .within_km(center, radius)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            got.sort();
            assert_eq!(got, expected, "radius {radius}");
        }
    }
}
