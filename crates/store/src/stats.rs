//! Cardinality statistics used for BGP join ordering.
//!
//! The SPARQL evaluator orders basic-graph-pattern triples greedily by
//! estimated selectivity; these counters provide the estimates without
//! scanning.

use std::collections::HashMap;

use crate::dict::TermId;

/// Per-predicate and global statement counters.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    total: usize,
    by_predicate: HashMap<TermId, usize>,
    distinct_subjects: usize,
    distinct_objects: usize,
}

impl Stats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one inserted statement; the two booleans say whether the
    /// subject/object were new to the store.
    pub fn record(&mut self, predicate: TermId, new_subject: bool, new_object: bool) {
        self.total += 1;
        *self.by_predicate.entry(predicate).or_insert(0) += 1;
        if new_subject {
            self.distinct_subjects += 1;
        }
        if new_object {
            self.distinct_objects += 1;
        }
    }

    /// Un-records one removed statement — the exact inverse of
    /// [`Stats::record`]. The booleans say whether the removal left the
    /// subject/object with no remaining statements in that position.
    pub fn unrecord(&mut self, predicate: TermId, subject_gone: bool, object_gone: bool) {
        self.total = self.total.saturating_sub(1);
        if let Some(count) = self.by_predicate.get_mut(&predicate) {
            *count -= 1;
            if *count == 0 {
                self.by_predicate.remove(&predicate);
            }
        }
        if subject_gone {
            self.distinct_subjects = self.distinct_subjects.saturating_sub(1);
        }
        if object_gone {
            self.distinct_objects = self.distinct_objects.saturating_sub(1);
        }
    }

    /// Total statements recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Statements carrying `predicate`.
    pub fn predicate_count(&self, predicate: TermId) -> usize {
        self.by_predicate.get(&predicate).copied().unwrap_or(0)
    }

    /// Estimated rows produced by a triple pattern, given which
    /// positions are bound to constants.
    ///
    /// The model is the classic heuristic: a fully bound pattern is ~1
    /// row; binding the subject divides by distinct subjects; binding
    /// the object divides by distinct objects; a bound predicate caps
    /// the estimate at that predicate's count.
    pub fn estimate(&self, s_bound: bool, p: Option<TermId>, o_bound: bool) -> f64 {
        let base = match p {
            Some(pred) => self.predicate_count(pred) as f64,
            None => self.total as f64,
        };
        let mut est = base;
        if s_bound {
            est /= (self.distinct_subjects.max(1)) as f64;
            est = est.max(1.0).min(base);
        }
        if o_bound {
            est /= (self.distinct_objects.max(1)) as f64;
            est = est.max(if s_bound { 0.1 } else { 1.0 });
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut st = Stats::new();
        st.record(TermId(1), true, true);
        st.record(TermId(1), false, true);
        st.record(TermId(2), true, false);
        assert_eq!(st.total(), 3);
        assert_eq!(st.predicate_count(TermId(1)), 2);
        assert_eq!(st.predicate_count(TermId(9)), 0);
    }

    #[test]
    fn bound_positions_shrink_estimates() {
        let mut st = Stats::new();
        for i in 0..100 {
            st.record(TermId(0), true, i % 2 == 0);
        }
        let unbound = st.estimate(false, Some(TermId(0)), false);
        let s_bound = st.estimate(true, Some(TermId(0)), false);
        let both = st.estimate(true, Some(TermId(0)), true);
        assert!(unbound >= s_bound && s_bound >= both);
        assert_eq!(unbound, 100.0);
    }

    #[test]
    fn unknown_predicate_estimates_zero() {
        let mut st = Stats::new();
        st.record(TermId(0), true, true);
        assert_eq!(st.estimate(false, Some(TermId(5)), false), 0.0);
    }
}
