//! Subject-sharded triple indexes with shard-granular copy-on-write.
//!
//! The store partitions every subject-keyed structure — the SPO/POS/OSP
//! permutation indexes, the full-text and geo side indexes, subject
//! provenance and the distinct-subject set — into [`Shard`]s routed by
//! a stable mix of the subject's [`TermId`]. Two properties fall out:
//!
//! * **Tenant isolation.** A commit touches only the shards its
//!   subjects route to. Under snapshot publishing
//!   ([`crate::shared::SharedStore`]) the copy-on-write clone pays for
//!   touched shards only, so independent tenants — whose content
//!   subjects are distinct IRIs — commit without ever rewriting each
//!   other's shards.
//! * **Cheap snapshots.** Each shard lives behind an [`Arc`]; cloning
//!   the whole store (what [`Store::snapshot`] does) is O(shards)
//!   reference-count bumps. Writers mutate via [`Arc::make_mut`]: the
//!   first write after a snapshot clones that one shard, later writes
//!   hit the now-unique copy in place.
//!
//! Cross-shard queries (any pattern with an unbound subject) k-way
//! merge the per-shard sorted ranges with `merge_sorted`, so results
//! stream in exactly the global index order a single monolithic
//! `BTreeSet` would produce — this is what keeps export bytes and
//! query answers **identical for every shard count** (asserted by the
//! shard-count invariance tests).
//!
//! [`Store::snapshot`]: crate::store::Store::snapshot

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use lodify_rdf::Point;

use crate::dict::TermId;
use crate::fulltext::{tokenize, FullTextIndex, Posting};
use crate::geo::GeoIndex;
use crate::store::GraphId;

/// An `(s, p, o)`-shaped index key (field order varies per index).
pub type Key = (TermId, TermId, TermId);

/// Default number of subject shards for [`crate::store::Store::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// One subject partition: every structure keyed by (or rooted at) a
/// subject id whose mix routes here.
///
/// The POS index is also stored per *subject* shard — its keys are
/// `(p, o, s)` but the owning shard is chosen by `s` — so a
/// predicate-bound scan merges across shards while a commit never
/// leaves the subject's shard.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// `(s, p, o)` permutation.
    pub(crate) spo: BTreeSet<Key>,
    /// `(p, o, s)` permutation (owned by the shard of `s`).
    pub(crate) pos: BTreeSet<Key>,
    /// `(o, s, p)` permutation (owned by the shard of `s`).
    pub(crate) osp: BTreeSet<Key>,
    /// Full-text postings contributed by this shard's subjects.
    pub(crate) fulltext: FullTextIndex,
    /// Geo points of this shard's subjects.
    pub(crate) geo: GeoIndex,
    /// First graph that introduced each subject (provenance).
    pub(crate) subject_graph: HashMap<TermId, GraphId>,
    /// Subjects with at least one statement (distinct-subject stats).
    pub(crate) seen_subjects: HashSet<TermId>,
}

/// Routes a subject id to its shard.
///
/// The key is a SplitMix64 finalizer over the dense id: stable across
/// runs, replicas and WAL replay (ids are assigned in first-seen order
/// by the sequential writer), and avalanching enough that consecutive
/// ids — one upload's burst of subjects — spread across shards while a
/// tenant's *working set* still lands deterministically. Callers that
/// want hard per-tenant affinity can instead mint tenant-prefixed
/// subject IRIs and raise the shard count; routing is an internal
/// detail that never changes query results.
pub fn shard_of(subject: TermId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = subject.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Allocates `count` empty shards.
pub(crate) fn empty_shards(count: usize) -> Vec<Arc<Shard>> {
    assert!(count > 0, "store needs at least one shard");
    (0..count).map(|_| Arc::default()).collect()
}

/// K-way merge of already-sorted iterators into one sorted stream.
///
/// All per-shard index ranges are sorted on their full key, and shards
/// partition the key space by subject, so merging by `Ord` reproduces
/// the exact iteration order of an unsharded index. `k` is the shard
/// count (small); each step scans the `k` heads for the minimum.
pub(crate) fn merge_sorted<I>(iters: Vec<I>) -> KMerge<I>
where
    I: Iterator<Item = Key>,
{
    KMerge {
        heads: iters.into_iter().map(Iterator::peekable).collect(),
    }
}

/// Iterator returned by [`merge_sorted`].
pub(crate) struct KMerge<I: Iterator<Item = Key>> {
    heads: Vec<std::iter::Peekable<I>>,
}

impl<I: Iterator<Item = Key>> Iterator for KMerge<I> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        let mut best: Option<(usize, Key)> = None;
        for (i, head) in self.heads.iter_mut().enumerate() {
            if let Some(&key) = head.peek() {
                if best.map_or(true, |(_, b)| key < b) {
                    best = Some((i, key));
                }
            }
        }
        let (i, key) = best?;
        self.heads[i].next();
        Some(key)
    }
}

/// Read facade merging the per-shard full-text indexes.
///
/// Subjects are partitioned across shards, so postings from different
/// shards never collide; merging per-shard sorted lists and re-sorting
/// by the total [`Posting`] order reproduces exactly what a monolithic
/// index would answer — for any shard count.
#[derive(Debug, Clone, Copy)]
pub struct FullTextView<'a> {
    shards: &'a [Arc<Shard>],
}

impl<'a> FullTextView<'a> {
    pub(crate) fn over(shards: &'a [Arc<Shard>]) -> Self {
        FullTextView { shards }
    }

    /// Exact-token lookup (`bif:contains` semantics for a single word),
    /// merged across shards, sorted by posting order.
    pub fn search_word(&self, word: &str) -> Vec<Posting> {
        let mut out: Vec<Posting> = self
            .shards
            .iter()
            .flat_map(|sh| sh.fulltext.search_word(word).iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// All postings for tokens starting with `prefix`, deduplicated by
    /// subject (first-seen in global token order), capped at `limit`
    /// subjects — the incremental-search operation.
    pub fn search_prefix(&self, prefix: &str, limit: usize) -> Vec<Posting> {
        let needle = prefix.to_lowercase();
        // Merge per-shard entry streams into global token order; within
        // one token, postings sort into the same order a monolithic
        // index stores (subjects are disjoint across shards).
        let mut merged: BTreeMap<&str, Vec<Posting>> = BTreeMap::new();
        for sh in self.shards {
            for (token, postings) in sh.fulltext.prefix_entries(&needle) {
                merged.entry(token).or_default().extend_from_slice(postings);
            }
        }
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (_, mut postings) in merged {
            postings.sort_unstable();
            for p in postings {
                if seen.insert(p.subject) {
                    out.push(p);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Postings matching **all** words (conjunctive `bif:contains`),
    /// intersected on subject across shards.
    pub fn search_all_words(&self, text: &str) -> Vec<Posting> {
        let words = tokenize(text);
        let mut iter = words.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let first_hits = self.search_word(first);
        let mut subjects: BTreeSet<TermId> = first_hits.iter().map(|p| p.subject).collect();
        for word in iter {
            let next: BTreeSet<TermId> = self.search_word(word).iter().map(|p| p.subject).collect();
            subjects = subjects.intersection(&next).copied().collect();
            if subjects.is_empty() {
                return Vec::new();
            }
        }
        first_hits
            .into_iter()
            .filter(|p| subjects.contains(&p.subject))
            .collect()
    }

    /// Number of distinct tokens across all shards.
    pub fn distinct_tokens(&self) -> usize {
        let mut tokens = BTreeSet::new();
        for sh in self.shards {
            for (token, _) in sh.fulltext.prefix_entries("") {
                tokens.insert(token);
            }
        }
        tokens.len()
    }

    /// Total tokens indexed (including repeats), summed over shards.
    pub fn tokens_indexed(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.fulltext.tokens_indexed())
            .sum()
    }
}

/// Read facade merging the per-shard geo indexes.
#[derive(Debug, Clone, Copy)]
pub struct GeoView<'a> {
    shards: &'a [Arc<Shard>],
}

impl<'a> GeoView<'a> {
    pub(crate) fn over(shards: &'a [Arc<Shard>]) -> Self {
        GeoView { shards }
    }

    /// Subjects within `radius_km` of `center` with their distances,
    /// nearest-first. Per-shard results merge under the same total
    /// `(distance, id)` order the monolithic index sorts by, so the
    /// answer is shard-count invariant.
    pub fn within_km(&self, center: Point, radius_km: f64) -> Vec<(TermId, f64)> {
        let mut hits: Vec<(TermId, f64)> = self
            .shards
            .iter()
            .flat_map(|sh| sh.geo.within_km(center, radius_km))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// The point registered for `subject`, if any (single-shard probe).
    pub fn point_of(&self, subject: TermId) -> Option<Point> {
        self.shards[shard_of(subject, self.shards.len())]
            .geo
            .point_of(subject)
    }

    /// Number of georeferenced subjects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|sh| sh.geo.len()).sum()
    }

    /// True when no subject carries a point.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|sh| sh.geo.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(a: u64, b: u64, c: u64) -> Key {
        (TermId(a), TermId(b), TermId(c))
    }

    #[test]
    fn merge_reproduces_global_order() {
        let a = vec![k(0, 0, 0), k(3, 0, 0), k(5, 1, 2)];
        let b = vec![k(1, 0, 0), k(3, 0, 1)];
        let c: Vec<Key> = Vec::new();
        let merged: Vec<Key> = merge_sorted(vec![
            a.clone().into_iter(),
            b.clone().into_iter(),
            c.into_iter(),
        ])
        .collect();
        let mut expected: Vec<Key> = a.into_iter().chain(b).collect();
        expected.sort();
        assert_eq!(merged, expected);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 4, 16, 64] {
            for id in 0..1000u64 {
                let s = shard_of(TermId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(TermId(id), shards), "routing must be pure");
            }
        }
        // One shard swallows everything.
        assert_eq!(shard_of(TermId(42), 1), 0);
    }

    #[test]
    fn routing_spreads_dense_ids() {
        // A burst of consecutive ids (one upload's subjects) must not
        // pile onto one shard.
        let shards = 16;
        let mut hits = vec![0usize; shards];
        for id in 0..1600u64 {
            hits[shard_of(TermId(id), shards)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "no empty shard: {hits:?}");
        assert!(
            *hits.iter().max().unwrap() < 400,
            "no pathological skew: {hits:?}"
        );
    }
}
