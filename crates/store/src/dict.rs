//! Term dictionary: interning of RDF terms into dense ids.
//!
//! Ids are dense `u64`s handed out in first-seen order, so they double
//! as stable insertion timestamps for the indexes. Lookup in both
//! directions is O(1) amortized.
//!
//! # Snapshot-friendly layout
//!
//! Both internal maps are built from [`Arc`]-shared pieces so that
//! cloning a `Dict` — which happens on every
//! [`Store::snapshot`](crate::store::Store::snapshot) publish — costs
//! O(shards + chunks) reference-count bumps instead of O(terms):
//!
//! * `by_term` is split into `DICT_SHARDS` hash shards routed by a
//!   *stable* (non-randomized) term hash, each behind its own `Arc`;
//! * `by_id` is an append-only chunked vector (`CHUNK` entries per
//!   chunk), so only the tail chunk is ever rewritten.
//!
//! Writers mutate through [`Arc::make_mut`]: the first write after a
//! snapshot was taken clones only the touched shard/chunk
//! (copy-on-write), later writes mutate in place. Live snapshots are
//! therefore physically immutable.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use lodify_rdf::Term;

/// A dense identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u64);

impl TermId {
    /// The largest possible id, used as a range-scan sentinel.
    pub const MAX: TermId = TermId(u64::MAX);
    /// The smallest possible id, used as a range-scan sentinel.
    pub const MIN: TermId = TermId(0);
}

/// Number of `by_term` hash shards (fixed; routing is internal).
const DICT_SHARDS: usize = 16;

/// Entries per `by_id` chunk. Power of two so the id → chunk mapping
/// is a shift.
const CHUNK: usize = 1024;

/// FNV-1a, used as a *stable* hasher: unlike
/// [`std::collections::hash_map::RandomState`] it is not seeded per
/// process, so shard routing is deterministic across runs, replicas,
/// and WAL replay.
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Stable 64-bit hash of a term (FNV-1a over its `Hash` encoding).
fn stable_term_hash(term: &Term) -> u64 {
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    term.hash(&mut h);
    h.finish()
}

/// Bidirectional term ↔ id dictionary.
///
/// Both directions share one `Arc<Term>` allocation per distinct
/// term — interning clones the term once, not once per index. The
/// dictionary clones in O(shards + chunks), which is what makes
/// [`Store::snapshot`](crate::store::Store::snapshot) cheap.
#[derive(Debug, Clone)]
pub struct Dict {
    /// Term → id, sharded by [`stable_term_hash`].
    by_term: Vec<Arc<HashMap<Arc<Term>, TermId>>>,
    /// Id → term, chunked append-only ([`CHUNK`] entries per chunk).
    by_id: Vec<Arc<Vec<Arc<Term>>>>,
    /// Total interned terms (== next id).
    len: usize,
}

impl Default for Dict {
    fn default() -> Self {
        Dict {
            by_term: (0..DICT_SHARDS).map(|_| Arc::default()).collect(),
            by_id: Vec::new(),
            len: 0,
        }
    }
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, term: &Term) -> usize {
        (stable_term_hash(term) % DICT_SHARDS as u64) as usize
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        let shard = self.shard_of(term);
        // `Arc<Term>: Borrow<Term>` lets the hit path look up by
        // reference, allocating nothing (and cloning no shard).
        if let Some(&id) = self.by_term[shard].get(term) {
            return id;
        }
        let id = TermId(self.len as u64);
        let shared = Arc::new(term.clone());
        if self.len % CHUNK == 0 {
            self.by_id.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let tail = self.by_id.last_mut().expect("tail chunk just ensured");
        Arc::make_mut(tail).push(Arc::clone(&shared));
        Arc::make_mut(&mut self.by_term[shard]).insert(shared, id);
        self.len += 1;
        id
    }

    /// Looks up the id of an already-interned term.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.by_term[self.shard_of(term)].get(term).copied()
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        let idx = id.0 as usize;
        self.by_id
            .get(idx / CHUNK)
            .and_then(|chunk| chunk.get(idx % CHUNK))
            .map(|t| &**t)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.by_id
            .iter()
            .flat_map(|chunk| chunk.iter())
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), &**t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern(&Term::literal("x"));
        let b = d.intern(&Term::literal("x"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dict::new();
        let a = d.intern(&Term::literal("a"));
        let b = d.intern(&Term::literal("b"));
        let c = d.intern(&Term::literal("c"));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn round_trip() {
        let mut d = Dict::new();
        let t = Term::iri_unchecked("http://example.org/x");
        let id = d.intern(&t);
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id(&t), Some(id));
        assert_eq!(d.term(TermId(99)), None);
        assert_eq!(d.id(&Term::literal("missing")), None);
    }

    #[test]
    fn distinguishes_literal_shapes() {
        use lodify_rdf::Literal;
        let mut d = Dict::new();
        let plain = d.intern(&Term::Literal(Literal::simple("Turin")));
        let tagged = d.intern(&Term::Literal(Literal::lang("Turin", "en").unwrap()));
        let iri = d.intern(&Term::iri_unchecked("Turin:x"));
        assert_ne!(plain, tagged);
        assert_ne!(plain, iri);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn clones_share_structure_and_diverge_on_write() {
        let mut d = Dict::new();
        for i in 0..3000 {
            d.intern(&Term::literal(format!("t{i}")));
        }
        let snap = d.clone();
        // Writing after the clone must not disturb the clone (COW).
        let id = d.intern(&Term::literal("after"));
        assert_eq!(id.0, 3000);
        assert_eq!(snap.len(), 3000);
        assert_eq!(snap.id(&Term::literal("after")), None);
        assert_eq!(d.term(id), Some(&Term::literal("after")));
        // Both still resolve the shared prefix.
        assert_eq!(snap.term(TermId(2999)), d.term(TermId(2999)));
    }

    #[test]
    fn iter_crosses_chunk_boundaries_in_id_order() {
        let mut d = Dict::new();
        let n = CHUNK + 10;
        for i in 0..n {
            d.intern(&Term::literal(format!("t{i}")));
        }
        let ids: Vec<u64> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids.len(), n);
        assert!(ids.windows(2).all(|w| w[0] + 1 == w[1]));
        assert_eq!(
            d.term(TermId(CHUNK as u64)),
            Some(&Term::literal(format!("t{CHUNK}")))
        );
    }
}
