//! Term dictionary: interning of RDF terms into dense ids.
//!
//! Ids are dense `u64`s handed out in first-seen order, so they double
//! as stable insertion timestamps for the indexes. Lookup in both
//! directions is O(1) amortized.

use std::collections::HashMap;
use std::sync::Arc;

use lodify_rdf::Term;

/// A dense identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u64);

impl TermId {
    /// The largest possible id, used as a range-scan sentinel.
    pub const MAX: TermId = TermId(u64::MAX);
    /// The smallest possible id, used as a range-scan sentinel.
    pub const MIN: TermId = TermId(0);
}

/// Bidirectional term ↔ id dictionary.
///
/// Both directions share one `Arc<Term>` allocation per distinct
/// term — interning clones the term once, not once per index.
#[derive(Debug, Default)]
pub struct Dict {
    by_term: HashMap<Arc<Term>, TermId>,
    by_id: Vec<Arc<Term>>,
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        // `Arc<Term>: Borrow<Term>` lets the hit path look up by
        // reference, allocating nothing.
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.by_id.len() as u64);
        let shared = Arc::new(term.clone());
        self.by_id.push(Arc::clone(&shared));
        self.by_term.insert(shared, id);
        id
    }

    /// Looks up the id of an already-interned term.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.by_id.get(id.0 as usize).map(|t| &**t)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), &**t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern(&Term::literal("x"));
        let b = d.intern(&Term::literal("x"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dict::new();
        let a = d.intern(&Term::literal("a"));
        let b = d.intern(&Term::literal("b"));
        let c = d.intern(&Term::literal("c"));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn round_trip() {
        let mut d = Dict::new();
        let t = Term::iri_unchecked("http://example.org/x");
        let id = d.intern(&t);
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id(&t), Some(id));
        assert_eq!(d.term(TermId(99)), None);
        assert_eq!(d.id(&Term::literal("missing")), None);
    }

    #[test]
    fn distinguishes_literal_shapes() {
        use lodify_rdf::Literal;
        let mut d = Dict::new();
        let plain = d.intern(&Term::Literal(Literal::simple("Turin")));
        let tagged = d.intern(&Term::Literal(Literal::lang("Turin", "en").unwrap()));
        let iri = d.intern(&Term::iri_unchecked("Turin:x"));
        assert_ne!(plain, tagged);
        assert_ne!(plain, iri);
        assert_eq!(d.len(), 3);
    }
}
