//! Concurrent store access: single writer, MVCC snapshot readers.
//!
//! The paper's Virtuoso instance serves the web interface, the mobile
//! interface and the annotation pipeline at once. Early revisions of
//! this crate modelled that with one global `RwLock<Store>` — readers
//! and the writer excluded each other, so a batch commit stalled every
//! query for its full duration. [`SharedStore`] now implements
//! **multi-version concurrency control** instead:
//!
//! * Readers call [`SharedStore::read`] (or the
//!   [`SnapshotSource::pin`] seam) and get an immutable
//!   [`StoreSnapshot`] — an O(shards) pin of the last *published*
//!   version. They hold it as long as they like, across I/O and across
//!   threads, without ever blocking the writer or each other.
//! * The single writer at a time (serialized by a [`Mutex`]) mutates
//!   its working [`Store`] through [`StoreWriteGuard`]; the store
//!   copy-on-writes any shard a live snapshot still shares. When the
//!   guard drops normally the new version is **published atomically**
//!   — a brief write on the publish [`RwLock`] that only swaps two
//!   words' worth of `Arc`s. If the writer panics, nothing is
//!   published: readers can never observe a half-commit.
//!
//! The old read/write-guard API (`read`, `write`, `with_read`,
//! `with_write`) is preserved with the same signatures modulo the read
//! type, which derefs to [`Store`] exactly like the old guard did.

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::snapshot::{SnapshotSource, StoreSnapshot};
use crate::store::Store;

/// A cloneable, thread-safe MVCC handle to a store.
///
/// Readers pin published snapshots (never blocking); writers queue on
/// an internal mutex and publish atomically on commit.
#[derive(Clone)]
pub struct SharedStore {
    /// The writer's working version (single writer at a time).
    writer: Arc<Mutex<Store>>,
    /// The last published version, swapped atomically on commit. The
    /// lock is held only for the O(shards) pin/swap, never across user
    /// code.
    published: Arc<RwLock<StoreSnapshot>>,
}

impl Default for SharedStore {
    fn default() -> Self {
        SharedStore::new(Store::default())
    }
}

impl SharedStore {
    /// Wraps a store for shared MVCC access; the initial published
    /// version is the store as handed in.
    pub fn new(store: Store) -> SharedStore {
        let published = Arc::new(RwLock::new(store.snapshot()));
        SharedStore {
            writer: Arc::new(Mutex::new(store)),
            published,
        }
    }

    /// Pins the latest published version. Readers never block writers
    /// (and vice versa); the returned snapshot derefs to [`Store`], so
    /// existing call sites written against the old read guard compile
    /// unchanged.
    pub fn read(&self) -> StoreSnapshot {
        self.published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Acquires the exclusive write guard. Mutations become visible to
    /// readers **only** when the guard drops without panicking, as one
    /// atomic version publish.
    pub fn write(&self) -> StoreWriteGuard<'_> {
        StoreWriteGuard {
            guard: self.writer.lock().unwrap_or_else(|e| e.into_inner()),
            published: &self.published,
        }
    }

    /// Runs a closure over a pinned snapshot.
    pub fn with_read<T>(&self, f: impl FnOnce(&Store) -> T) -> T {
        f(&self.read())
    }

    /// Runs a closure under the write guard; the combined mutations
    /// publish as one version when the closure returns.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.write())
    }
}

impl SnapshotSource for SharedStore {
    fn pin(&self) -> StoreSnapshot {
        self.read()
    }
}

/// Write guard returned by [`SharedStore::write`]; dereferences to the
/// [`Store`]. On normal drop it publishes the working version
/// atomically; on panic it publishes nothing, so readers never see a
/// half-commit.
pub struct StoreWriteGuard<'a> {
    guard: MutexGuard<'a, Store>,
    published: &'a RwLock<StoreSnapshot>,
}

impl Deref for StoreWriteGuard<'_> {
    type Target = Store;
    fn deref(&self) -> &Store {
        &self.guard
    }
}

impl DerefMut for StoreWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Store {
        &mut self.guard
    }
}

impl Drop for StoreWriteGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Abort the publish: the working store may hold a partial
            // batch. The next successful writer republishes from the
            // same working store — mutations already applied to it
            // remain (exactly the semantics the old in-place RwLock
            // had), they just stay invisible until a commit completes.
            return;
        }
        let snapshot = self.guard.snapshot();
        *self.published.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never blocks, even while a writer is mid-commit: the
        // published version is always readable (try_read only fails in
        // the instant of an atomic swap — fall back to "publishing").
        match self.published.try_read() {
            Ok(snap) => write!(
                f,
                "SharedStore({} triples @ epoch {})",
                snap.len(),
                snap.epoch()
            ),
            Err(_) => write!(f, "SharedStore(publishing)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::{Term, Triple};

    fn t(i: usize) -> Triple {
        Triple::spo(
            &format!("http://s/{i}"),
            "http://p",
            Term::literal(format!("v{i}")),
        )
    }

    #[test]
    fn concurrent_readers_with_interleaved_writer() {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            for i in 0..100 {
                store.insert(&t(i), g);
            }
        });

        let mut handles = Vec::new();
        // 4 readers scanning while a writer appends.
        for _ in 0..4 {
            let reader = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..50 {
                    total += reader.with_read(|store| store.len());
                }
                total
            }));
        }
        let writer = shared.clone();
        handles.push(std::thread::spawn(move || {
            for i in 100..200 {
                writer.with_write(|store| {
                    let g = store.default_graph();
                    store.insert(&t(i), g);
                });
            }
            0
        }));
        for handle in handles {
            handle.join().expect("no thread panics");
        }
        assert_eq!(shared.read().len(), 200);
    }

    #[test]
    fn queries_run_over_pinned_snapshots() {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(1), g);
        });
        let snap = shared.read();
        let results = lodify_sparql_probe(&snap).expect("query over snapshot");
        assert_eq!(results, 1);
    }

    /// Stand-in for a SPARQL call (the sparql crate depends on this
    /// one, so here we just exercise pattern matching over a snapshot).
    fn lodify_sparql_probe(store: &Store) -> Option<usize> {
        Some(store.count_pattern(None, None, None))
    }

    #[test]
    fn readers_never_block_on_an_open_writer() {
        let mut store = Store::new();
        let g = store.default_graph();
        for i in 0..7 {
            store.insert(&t(i), g);
        }
        let shared = SharedStore::new(store);
        let mut guard = shared.write();
        let g = guard.default_graph();
        guard.insert(&t(100), g);
        // The writer holds the guard with uncommitted work, yet a
        // reader proceeds instantly and sees the pre-write version.
        assert_eq!(shared.read().len(), 7);
        assert!(format!("{shared:?}").contains("7 triples"));
        drop(guard);
        // The drop published exactly one new version.
        assert_eq!(shared.read().len(), 8);
    }

    #[test]
    fn writes_publish_atomically_on_guard_drop() {
        let shared = SharedStore::new(Store::new());
        let before = shared.read();
        shared.with_write(|store| {
            let g = store.default_graph();
            for i in 0..10 {
                store.insert(&t(i), g);
            }
        });
        // The pre-commit pin still answers from its version…
        assert_eq!(before.len(), 0);
        // …and the commit became visible as one batch.
        let after = shared.read();
        assert_eq!(after.len(), 10);
        assert_eq!(after.epoch(), 10);
    }

    #[test]
    fn panicking_writer_publishes_nothing() {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(0), g);
        });
        let clone = shared.clone();
        let result = std::thread::spawn(move || {
            clone.with_write(|store| {
                let g = store.default_graph();
                store.insert(&t(1), g);
                panic!("mid-commit failure");
            });
        })
        .join();
        assert!(result.is_err(), "the writer panicked");
        // Readers still see the last successful publish only.
        assert_eq!(shared.read().len(), 1);
        // The next successful commit republishes (including the
        // writer-side mutation that had already been applied).
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(2), g);
        });
        assert_eq!(shared.read().len(), 3);
    }

    #[test]
    fn debug_reports_size_and_epoch() {
        let shared = SharedStore::new(Store::new());
        assert!(format!("{shared:?}").contains("0 triples"));
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(1), g);
        });
        assert_eq!(format!("{shared:?}"), "SharedStore(1 triples @ epoch 1)");
    }
}
