//! Concurrent store access.
//!
//! The paper's Virtuoso instance serves the web interface, the mobile
//! interface and the annotation pipeline at once. [`SharedStore`]
//! provides that multi-reader/single-writer discipline over the
//! in-memory store: cheap clone-able handles, many concurrent readers
//! (queries), exclusive writers (uploads/semanticization).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::store::Store;

/// A cloneable, thread-safe handle to a store.
#[derive(Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<Store>>,
    /// Last statement count observed outside the lock, so diagnostics
    /// ([`std::fmt::Debug`]) stay informative even while a writer holds
    /// the lock. Updated when a write guard drops.
    len_hint: Arc<AtomicUsize>,
}

impl SharedStore {
    /// Wraps a store for shared access.
    pub fn new(store: Store) -> SharedStore {
        let len_hint = Arc::new(AtomicUsize::new(store.len()));
        SharedStore {
            inner: Arc::new(RwLock::new(store)),
            len_hint,
        }
    }

    /// Acquires a read guard (many readers may hold one concurrently).
    /// A poisoned lock (a writer panicked) is recovered rather than
    /// propagated: the store stays readable.
    pub fn read(&self) -> RwLockReadGuard<'_, Store> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard, recovering from poisoning.
    /// The guard refreshes the size hint used by `Debug` when dropped.
    pub fn write(&self) -> StoreWriteGuard<'_> {
        StoreWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            len_hint: &self.len_hint,
        }
    }

    /// Runs a closure under the read lock.
    pub fn with_read<T>(&self, f: impl FnOnce(&Store) -> T) -> T {
        f(&self.read())
    }

    /// Runs a closure under the write lock.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.write())
    }
}

/// Write guard returned by [`SharedStore::write`]; dereferences to the
/// [`Store`] and records the final statement count on drop so
/// contended `Debug` output reports a size instead of `<locked>`.
pub struct StoreWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, Store>,
    len_hint: &'a AtomicUsize,
}

impl Deref for StoreWriteGuard<'_> {
    type Target = Store;
    fn deref(&self) -> &Store {
        &self.guard
    }
}

impl DerefMut for StoreWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Store {
        &mut self.guard
    }
}

impl Drop for StoreWriteGuard<'_> {
    fn drop(&mut self) {
        self.len_hint.store(self.guard.len(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `try_read` consistently: never block (Debug may run from a
        // panic handler holding the lock), never lose the size either —
        // under contention report the last observed count.
        match self.inner.try_read() {
            Ok(store) => write!(f, "SharedStore({} triples)", store.len()),
            Err(_) => write!(
                f,
                "SharedStore(~{} triples, write-locked)",
                self.len_hint.load(Ordering::Relaxed)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::{Term, Triple};

    fn t(i: usize) -> Triple {
        Triple::spo(
            &format!("http://s/{i}"),
            "http://p",
            Term::literal(format!("v{i}")),
        )
    }

    #[test]
    fn concurrent_readers_with_interleaved_writer() {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            for i in 0..100 {
                store.insert(&t(i), g);
            }
        });

        let mut handles = Vec::new();
        // 4 readers scanning while a writer appends.
        for _ in 0..4 {
            let reader = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..50 {
                    total += reader.with_read(|store| store.len());
                }
                total
            }));
        }
        let writer = shared.clone();
        handles.push(std::thread::spawn(move || {
            for i in 100..200 {
                writer.with_write(|store| {
                    let g = store.default_graph();
                    store.insert(&t(i), g);
                });
            }
            0
        }));
        for handle in handles {
            handle.join().expect("no thread panics");
        }
        assert_eq!(shared.read().len(), 200);
    }

    #[test]
    fn queries_run_under_the_read_guard() {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(1), g);
        });
        let guard = shared.read();
        let results = lodify_sparql_probe(&guard).expect("query under read guard");
        assert_eq!(results, 1);
    }

    /// Stand-in for a SPARQL call (the sparql crate depends on this
    /// one, so here we just exercise pattern matching under the guard).
    fn lodify_sparql_probe(store: &Store) -> Option<usize> {
        Some(store.count_pattern(None, None, None))
    }

    #[test]
    fn debug_reports_size() {
        let shared = SharedStore::new(Store::new());
        assert!(format!("{shared:?}").contains("0 triples"));
    }

    #[test]
    fn debug_reports_size_even_under_write_contention() {
        let mut store = Store::new();
        let g = store.default_graph();
        for i in 0..7 {
            store.insert(&t(i), g);
        }
        let shared = SharedStore::new(store);
        // Uncontended: the exact count.
        assert_eq!(format!("{shared:?}"), "SharedStore(7 triples)");
        // A writer holds the lock: Debug must not report "<locked>" —
        // it falls back to the last observed count.
        let mut guard = shared.write();
        let contended = format!("{shared:?}");
        assert_eq!(contended, "SharedStore(~7 triples, write-locked)");
        assert!(!contended.contains("<locked>"));
        let g = guard.default_graph();
        guard.insert(&t(100), g);
        drop(guard);
        // The guard's drop refreshed the hint.
        assert_eq!(format!("{shared:?}"), "SharedStore(8 triples)");
    }
}
