//! MVCC stress tests: sustained writes with concurrent snapshot
//! readers, torn-commit detection, and shard-count invariance.
//!
//! The contract under test (see `crates/store/src/shared.rs`):
//!
//! * readers pin published versions and never block on the writer;
//! * a published epoch only ever moves forward, and always lands on a
//!   commit boundary — a reader can never observe half of a batch;
//! * one pinned snapshot answers identically no matter how much the
//!   writer churns after the pin;
//! * the shard count is a physical layout knob with zero observable
//!   effect on any read path.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use lodify_rdf::{Term, Triple};
use lodify_store::{SharedStore, SnapshotSource, Store};

fn t(i: u64) -> Triple {
    Triple::spo(
        &format!("http://tenant{}/pic/{i}", i % 11),
        "http://www.w3.org/2000/01/rdf-schema#label",
        Term::literal(format!("label {i}")),
    )
}

/// A writer commits fixed-size batches while readers continuously pin
/// snapshots. Every observation must sit on a commit boundary (epoch a
/// multiple of the batch size, len == epoch for an insert-only
/// workload) and epochs must be monotone per reader — the classic
/// torn-commit / time-travel detector.
#[test]
fn sustained_writes_never_expose_torn_commits() {
    const BATCH: u64 = 20;
    const COMMITS: u64 = 100;

    let shared = SharedStore::new(Store::new());
    let writer = shared.clone();
    let write_thread = std::thread::spawn(move || {
        for c in 0..COMMITS {
            writer.with_write(|store| {
                let g = store.default_graph();
                for k in 0..BATCH {
                    assert!(
                        store.insert(&t(c * BATCH + k), g),
                        "workload is insert-only"
                    );
                }
            });
        }
    });

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observations = 0u64;
                while last_epoch < COMMITS * BATCH {
                    let snap = shared.pin();
                    let epoch = snap.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "published epochs must be monotone: {epoch} after {last_epoch}"
                    );
                    assert_eq!(
                        epoch % BATCH,
                        0,
                        "observed a torn commit: epoch {epoch} is mid-batch"
                    );
                    assert_eq!(
                        snap.len() as u64,
                        epoch,
                        "snapshot len must match its epoch (insert-only workload)"
                    );
                    last_epoch = epoch;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    write_thread.join().expect("writer finished");
    for r in readers {
        let observations = r.join().expect("reader finished");
        assert!(observations > 0);
    }
    assert_eq!(shared.pin().len() as u64, COMMITS * BATCH);
    assert_eq!(shared.pin().epoch(), COMMITS * BATCH);
}

/// A pinned snapshot is a repeatable read: byte-identical exports and
/// stable query answers no matter how much the writer commits (and
/// removes) after the pin.
#[test]
fn pinned_snapshots_are_repeatable_reads() {
    let shared = SharedStore::new(Store::new());
    shared.with_write(|store| {
        let g = store.default_graph();
        for i in 0..200 {
            store.insert(&t(i), g);
        }
    });

    let snap = shared.pin();
    let export = snap.export_ntriples(None);
    let count = snap.count_pattern(None, None, None);

    // Churn: remove half, add new, across many commits.
    for i in 0..100 {
        shared.with_write(|store| {
            store.remove(&t(i));
            let g = store.default_graph();
            store.insert(&t(10_000 + i), g);
        });
    }

    assert_eq!(snap.export_ntriples(None), export, "export must not move");
    assert_eq!(snap.count_pattern(None, None, None), count);
    assert_eq!(snap.len(), 200);
    // The live handle did move.
    assert_eq!(shared.pin().len(), 200);
    assert_ne!(shared.pin().export_ntriples(None), export);
}

/// Readers proceed while a writer holds the (uncommitted) write guard
/// — the regression the MVCC refactor exists to prevent. The reader
/// must answer within the timeout even though the guard stays open.
#[test]
fn readers_proceed_while_write_guard_is_held() {
    let shared = SharedStore::new(Store::new());
    shared.with_write(|store| {
        let g = store.default_graph();
        for i in 0..50 {
            store.insert(&t(i), g);
        }
    });

    let mut guard = shared.write();
    let g = guard.default_graph();
    guard.insert(&t(999), g);

    let (tx, rx) = mpsc::channel();
    let reader = shared.clone();
    std::thread::spawn(move || {
        let snap = reader.pin();
        tx.send((snap.len(), snap.epoch())).ok();
    });
    let (len, epoch) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("reader must not block on the open write guard");
    assert_eq!(len, 50, "uncommitted write is invisible");
    assert_eq!(epoch, 50);
    drop(guard);
    assert_eq!(shared.pin().len(), 51);
}

/// The same concurrent workload, committed against stores with 1, 4
/// and 16 shards, must leave byte-identical state on every read path.
#[test]
fn shard_count_invariance_under_concurrent_readers() {
    let run = |shards: usize| -> (String, u64, usize) {
        let shared = SharedStore::new(Store::with_shards(shards));
        let writer = shared.clone();
        let write_thread = std::thread::spawn(move || {
            for c in 0..40u64 {
                writer.with_write(|store| {
                    let g = store.default_graph();
                    for k in 0..10 {
                        store.insert(&t(c * 10 + k), g);
                    }
                    if c % 4 == 0 {
                        store.remove(&t(c * 10));
                    }
                });
            }
        });
        // Concurrent readers exercise the merge paths while shards COW.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut total = 0usize;
                    for _ in 0..50 {
                        let snap = shared.pin();
                        total += snap.count_pattern(None, None, None);
                        let _ = snap.fulltext().search_prefix("label", 5);
                    }
                    total
                })
            })
            .collect();
        write_thread.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let snap = shared.pin();
        (snap.export_ntriples(None), snap.epoch(), snap.len())
    };

    let (export1, epoch1, len1) = run(1);
    let (export4, epoch4, len4) = run(4);
    let (export16, epoch16, len16) = run(16);
    assert_eq!(export1, export4);
    assert_eq!(export1, export16);
    assert_eq!(epoch1, epoch4);
    assert_eq!(epoch1, epoch16);
    assert_eq!(len1, len4);
    assert_eq!(len1, len16);
}

/// Snapshots are plain values: they cross threads, outlive the handle
/// that pinned them, and drop in any order without unsafety.
#[test]
fn snapshots_outlive_their_handle() {
    let snap = {
        let shared = SharedStore::new(Store::new());
        shared.with_write(|store| {
            let g = store.default_graph();
            store.insert(&t(1), g);
        });
        shared.pin()
    };
    let snap = Arc::new(snap);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let snap = Arc::clone(&snap);
            std::thread::spawn(move || snap.len())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 1);
    }
}
