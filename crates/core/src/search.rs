//! The mobile search flow (§4, Figures 2–3).
//!
//! "The search field is automatic and AJAX-based, which means that each
//! time, 2 seconds after the last keystroke is pressed, a query is
//! performed and a list of candidate results will be displayed. The
//! user can click on the result that matches his search to visualize
//! all the content associated with the selected resource."
//!
//! [`SearchService::suggest`] produces the candidate-resource list for
//! a prefix (Fig. 3: "Result candidates are listed for 'Turin'"),
//! [`SearchService::content_for_resource`] the content list behind a
//! selected candidate (Fig. 4), and [`Debouncer`] models the 2-second
//! AJAX debounce so the interaction itself is testable/benchable.

use lodify_rdf::{Iri, Point, Term};
use lodify_store::Store;

use crate::error::PlatformError;

/// One search suggestion (a clickable LOD resource).
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The resource.
    pub resource: Iri,
    /// The label that matched.
    pub label: String,
}

/// A content item associated to a selected resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentHit {
    /// The content resource (`tl-pid:…`).
    pub content: Iri,
    /// The media link (`comm:image-data`), when present.
    pub link: Option<String>,
    /// The content title, when present.
    pub title: Option<String>,
}

/// Stateless search operations over a platform store.
#[derive(Debug, Default)]
pub struct SearchService;

impl SearchService {
    /// Prefix suggestions: entity resources whose label carries a token
    /// starting with `prefix`. UGC items are excluded — the paper's
    /// search box suggests *concepts* (cities, monuments), then lists
    /// content per concept.
    pub fn suggest(store: &Store, prefix: &str, limit: usize) -> Vec<Suggestion> {
        if prefix.trim().is_empty() {
            return Vec::new();
        }
        // Suggestions come from naming predicates only — otherwise
        // abstract texts mentioning the prefix would masquerade as
        // candidate labels.
        let label_preds: Vec<Option<lodify_store::TermId>> = [
            lodify_rdf::ns::iri::rdfs_label(),
            lodify_rdf::ns::GN.iri("name"),
            lodify_rdf::ns::GN.iri("alternateName"),
            lodify_rdf::ns::iri::foaf_name(),
            lodify_rdf::ns::DCTERMS.iri("title"),
        ]
        .into_iter()
        .map(|iri| store.id_of(&Term::Iri(iri)))
        .collect();

        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Over-fetch: several postings can share a subject or be UGC.
        for posting in store.fulltext().search_prefix(prefix, limit * 8) {
            if !label_preds.contains(&Some(posting.predicate)) {
                continue;
            }
            let Some(Term::Iri(subject)) = store.term_of(posting.subject) else {
                continue;
            };
            if subject.as_str().starts_with("http://beta.teamlife.it/") {
                continue;
            }
            if !seen.insert(subject.clone()) {
                continue;
            }
            let Some(Term::Literal(label)) = store.term_of(posting.object) else {
                continue;
            };
            out.push(Suggestion {
                resource: subject.clone(),
                label: label.value().to_string(),
            });
            if out.len() >= limit {
                break;
            }
        }
        out
    }

    /// Content associated with a selected resource: items annotated
    /// with it (`dcterms:subject`), located in it (`tl:locatedIn`), or
    /// — when the resource has a geometry — taken within
    /// `geo_fallback_km` of it.
    pub fn content_for_resource(
        store: &Store,
        resource: &Iri,
        geo_fallback_km: f64,
    ) -> Result<Vec<ContentHit>, PlatformError> {
        let query = format!(
            r#"SELECT DISTINCT ?c ?link ?title WHERE {{
                 {{ ?c <{subject}> <{res}> . }}
                 UNION {{ ?c <{located}> <{res}> . }}
                 ?c a sioct:MicroblogPost .
                 OPTIONAL {{ ?c comm:image-data ?link }}
                 OPTIONAL {{ ?c rdfs:label ?title }}
               }}"#,
            subject = crate::platform::subject_pred().as_str(),
            located = crate::platform::located_in_pred().as_str(),
            res = resource.as_str(),
        );
        let results = lodify_sparql::execute(store, &query)?;
        let mut hits: Vec<ContentHit> = results
            .iter()
            .filter_map(|row| {
                Some(ContentHit {
                    content: row.get("c")?.as_iri()?.clone(),
                    link: row.get("link").map(|t| t.lexical().to_string()),
                    title: row.get("title").map(|t| t.lexical().to_string()),
                })
            })
            .collect();

        // Geo fallback: content taken near the resource.
        if let Some(center) = resource_point(store, resource) {
            let geo_query = format!(
                r#"SELECT DISTINCT ?c ?link ?title WHERE {{
                     ?c a sioct:MicroblogPost .
                     ?c geo:geometry ?g .
                     OPTIONAL {{ ?c comm:image-data ?link }}
                     OPTIONAL {{ ?c rdfs:label ?title }}
                     FILTER(bif:st_intersects(?g, "{wkt}", {radius})) .
                   }}"#,
                wkt = center.to_wkt(),
                radius = geo_fallback_km,
            );
            for row in lodify_sparql::execute(store, &geo_query)?.iter() {
                let Some(content) = row.get("c").and_then(|t| t.as_iri()).cloned() else {
                    continue;
                };
                if hits.iter().any(|h| h.content == content) {
                    continue;
                }
                hits.push(ContentHit {
                    content,
                    link: row.get("link").map(|t| t.lexical().to_string()),
                    title: row.get("title").map(|t| t.lexical().to_string()),
                });
            }
        }
        hits.sort_by(|a, b| a.content.cmp(&b.content));
        Ok(hits)
    }
}

/// The resource's point, if it has a `geo:geometry`.
pub fn resource_point(store: &Store, resource: &Iri) -> Option<Point> {
    let subject = store.id_of(&Term::Iri(resource.clone()))?;
    store.geo().point_of(subject)
}

/// Models the mobile interface's AJAX debounce: a query fires once no
/// keystroke has arrived for `delay` seconds.
#[derive(Debug, Clone)]
pub struct Debouncer {
    delay: f64,
    pending: Option<(f64, String)>,
    fired: Vec<(f64, String)>,
}

impl Debouncer {
    /// The paper's 2-second debounce.
    pub fn standard() -> Debouncer {
        Debouncer::new(2.0)
    }

    /// Custom delay.
    pub fn new(delay: f64) -> Debouncer {
        Debouncer {
            delay,
            pending: None,
            fired: Vec::new(),
        }
    }

    /// Records a keystroke at `t` with the current field text.
    pub fn keystroke(&mut self, t: f64, text: &str) {
        self.poll(t);
        self.pending = Some((t, text.to_string()));
    }

    /// Advances time; returns the query that fires at/ before `now`,
    /// if any.
    pub fn poll(&mut self, now: f64) -> Option<String> {
        if let Some((t, text)) = &self.pending {
            if now - t >= self.delay - 1e-9 {
                let fired = text.clone();
                self.fired.push((t + self.delay, fired.clone()));
                self.pending = None;
                return Some(fired);
            }
        }
        None
    }

    /// Every query fired so far, with firing times.
    pub fn fired(&self) -> &[(f64, String)] {
        &self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Platform, Upload};
    use lodify_context::Gazetteer;
    use lodify_relational::WorkloadConfig;

    fn platform() -> Platform {
        Platform::bootstrap(WorkloadConfig::small(11)).unwrap()
    }

    #[test]
    fn suggest_turin_returns_city_resources() {
        let p = platform();
        let suggestions = SearchService::suggest(p.store(), "Turi", 10);
        assert!(!suggestions.is_empty());
        assert!(
            suggestions
                .iter()
                .all(|s| !s.resource.as_str().contains("teamlife")),
            "UGC must not appear as a concept suggestion"
        );
        assert!(
            suggestions
                .iter()
                .any(|s| s.label.starts_with("Turi") || s.label.starts_with("Turí")),
            "{suggestions:?}"
        );
    }

    #[test]
    fn suggest_respects_limit_and_empty_prefix() {
        let p = platform();
        assert!(SearchService::suggest(p.store(), "", 10).is_empty());
        assert!(SearchService::suggest(p.store(), "   ", 10).is_empty());
        let limited = SearchService::suggest(p.store(), "t", 3);
        assert!(limited.len() <= 3);
    }

    #[test]
    fn content_for_annotated_resource() {
        let mut p = platform();
        let gaz = Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
        let receipt = p
            .upload(Upload {
                user_id: 1,
                title: "Tramonto alla Mole Antonelliana".into(),
                tags: vec!["torino".into()],
                ts: 1_320_600_000,
                gps: Some(mole),
                poi: None,
            })
            .unwrap();
        let mole_res =
            lodify_rdf::Iri::new("http://dbpedia.org/resource/Mole_Antonelliana").unwrap();
        let hits = SearchService::content_for_resource(p.store(), &mole_res, 0.3).unwrap();
        assert!(
            hits.iter().any(|h| h.content == receipt.resource),
            "uploaded picture should be listed under its annotation"
        );
        // Hits carry links and titles.
        let mine = hits.iter().find(|h| h.content == receipt.resource).unwrap();
        assert!(mine.link.as_deref().unwrap_or("").contains("media/"));
        assert_eq!(
            mine.title.as_deref(),
            Some("Tramonto alla Mole Antonelliana")
        );
    }

    #[test]
    fn geo_fallback_finds_unannotated_content_nearby() {
        let p = platform();
        let mole_res =
            lodify_rdf::Iri::new("http://dbpedia.org/resource/Mole_Antonelliana").unwrap();
        // No annotations have been run; everything found comes from geo.
        let hits = SearchService::content_for_resource(p.store(), &mole_res, 0.3).unwrap();
        let q = crate::albums::AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3)
            .execute(p.store())
            .unwrap();
        assert_eq!(hits.len(), q.len());
    }

    #[test]
    fn debouncer_fires_two_seconds_after_last_keystroke() {
        let mut d = Debouncer::standard();
        d.keystroke(0.0, "T");
        d.keystroke(0.5, "Tu");
        d.keystroke(1.0, "Tur");
        assert_eq!(d.poll(2.5), None, "only 1.5s since last keystroke");
        assert_eq!(d.poll(3.0).as_deref(), Some("Tur"));
        assert_eq!(d.poll(10.0), None, "nothing pending");
        // Typing resumes → a second query fires.
        d.keystroke(11.0, "Turin");
        assert_eq!(d.poll(13.0).as_deref(), Some("Turin"));
        assert_eq!(d.fired().len(), 2);
    }

    #[test]
    fn debouncer_intermediate_states_never_fire() {
        let mut d = Debouncer::new(2.0);
        d.keystroke(0.0, "T");
        d.keystroke(1.9, "Tu");
        d.keystroke(3.8, "Tur");
        let fired = d.poll(6.0);
        assert_eq!(fired.as_deref(), Some("Tur"));
        assert_eq!(d.fired().len(), 1, "intermediate prefixes debounced away");
    }
}
