//! The platform: relational base, semantic store, context integration,
//! triple tags and automatic annotation.

use std::collections::BTreeMap;
use std::sync::Arc;

use lodify_context::{ContextPlatform, ContextSnapshot};
use lodify_d2r::defaults::coppermine_mapping;
use lodify_d2r::{dump, Mapping};
use lodify_durability::{
    DurabilityOptions, DurabilityStats, DurableStore, GroupCommitPolicy, RecoveryReport, Storage,
};
use lodify_lod::annotator::{Annotator, ContentInput, PoiRefInput};
use lodify_lod::cache::{SemanticCache, SemanticCacheStats};
use lodify_lod::datasets::{load_lod, GRAPH_UGC};
use lodify_lod::AnnotationResult;
use lodify_obs::Obs;
use lodify_rdf::{ns, Iri, Point, Term, Triple};
use lodify_relational::workload::{generate, PictureTruth, WorkloadConfig};
use lodify_relational::{coppermine as cpg, Database, SqlValue};
use lodify_resilience::FaultPlan;
use lodify_store::{GraphId, SnapshotSource, Store, StoreSnapshot};
use lodify_tripletags::context_tags::tags_for;
use lodify_tripletags::{Tag, TagIndex, TripleTag};

use crate::albums::{AlbumCache, AlbumCacheStats, AlbumSpec};
use crate::error::PlatformError;
use crate::federation::Acct;
use crate::live::{LiveAlbumId, LiveService, SubscriberId};
use crate::replication::{Emission, EmissionOutbox, EmissionQuad};

/// Annotation predicate: content → LOD resource it is about.
pub fn subject_pred() -> Iri {
    ns::DCTERMS.iri("subject")
}

/// Annotation predicate: content → Geonames city it was taken in.
pub fn located_in_pred() -> Iri {
    ns::TL.iri("locatedIn")
}

/// Annotation predicate: content → nearby buddy (local resource).
pub fn with_buddy_pred() -> Iri {
    ns::TL.iri("withBuddy")
}

/// A new content upload from the mobile client (§1.1: title, custom
/// tags, timestamp, GPS when available, optional POI attachment).
#[derive(Debug, Clone)]
pub struct Upload {
    /// Uploading user.
    pub user_id: i64,
    /// Title typed by the user.
    pub title: String,
    /// Plain folksonomy tags.
    pub tags: Vec<String>,
    /// Capture timestamp (Unix seconds).
    pub ts: i64,
    /// GPS position, when the device had a fix.
    pub gps: Option<Point>,
    /// Explicit POI attachment from the search provider
    /// (`poi:recs_id`), as `(name, category, position)`.
    pub poi: Option<(String, String, Point)>,
}

/// Per-upload processing summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadReceipt {
    /// The new picture id.
    pub pid: i64,
    /// The minted picture resource.
    pub resource: Iri,
    /// Triples added to the UGC graph for this upload.
    pub triples_added: usize,
    /// Context triple tags generated.
    pub context_tags: usize,
    /// Term annotations that fired.
    pub auto_annotations: usize,
}

/// An upload that has passed the *prepare* stage: validated, context
/// analyzed, and ready for read-only annotation followed by the short
/// commit stage. Produced by [`Platform::stage_upload`], consumed by
/// [`Platform::commit_staged`]; [`crate::ingest::IngestPool`] runs the
/// annotation of many staged uploads concurrently because that stage
/// only reads the store.
#[derive(Debug, Clone)]
pub struct StagedUpload {
    pub(crate) upload: Upload,
    pub(crate) aid: i64,
    pub(crate) snapshot: ContextSnapshot,
    pub(crate) context_tags: Vec<TripleTag>,
    pub(crate) poi_input: Option<PoiRefInput>,
}

impl StagedUpload {
    /// The annotation-pipeline input for this staged upload. Borrows
    /// only the staged data, so annotation can run against a shared
    /// store reference on any thread.
    pub(crate) fn content_input(&self) -> ContentInput<'_> {
        ContentInput {
            title: &self.upload.title,
            tags: &self.upload.tags,
            context: Some(&self.snapshot),
            poi_ref: self.poi_input.clone(),
        }
    }

    /// Capture timestamp (commit order of batched ingest).
    pub fn ts(&self) -> i64 {
        self.upload.ts
    }
}

/// A legacy picture staged for batch (re-)annotation: everything the
/// read-only annotation stage needs, extracted from relational state
/// by [`Platform::stage_legacy`].
#[derive(Debug, Clone)]
pub struct StagedLegacy {
    pub(crate) pid: i64,
    pub(crate) title: String,
    pub(crate) tags: Vec<String>,
    pub(crate) snapshot: Option<ContextSnapshot>,
    pub(crate) poi_input: Option<PoiRefInput>,
}

impl StagedLegacy {
    /// The annotation-pipeline input for this staged picture.
    pub(crate) fn content_input(&self) -> ContentInput<'_> {
        ContentInput {
            title: &self.title,
            tags: &self.tags,
            context: self.snapshot.as_ref(),
            poi_ref: self.poi_input.clone(),
        }
    }

    /// The picture id being (re-)annotated.
    pub fn pid(&self) -> i64 {
        self.pid
    }
}

/// The LODified platform.
pub struct Platform {
    db: Database,
    store: DurableStore,
    ugc_graph: GraphId,
    mapping: Mapping,
    context: ContextPlatform,
    annotator: Annotator,
    tags: TagIndex,
    annotations: BTreeMap<i64, AnnotationResult>,
    truth: Vec<PictureTruth>,
    next_pid: i64,
    next_vote: i64,
    next_poi_ref: i64,
    fault_plan: Option<FaultPlan>,
    album_cache: AlbumCache,
    semantic_cache: Arc<SemanticCache>,
    obs: Obs,
    outbox: Option<EmissionOutbox>,
    live: LiveService,
    cardinality: lodify_sparql::CardinalityProfile,
    plan_cache: lodify_sparql::PlanCache,
    admission: Option<crate::admission::AdmissionController>,
}

impl Platform {
    /// Bootstraps a full platform: generates the UGC workload, loads
    /// the LOD snapshots, runs the D2R semanticization (§2.1), wires
    /// the context platform from the relational data, and builds the
    /// triple-tag baseline index. Annotation of the legacy content is
    /// a separate batch step ([`crate::batch::BatchAnnotator`]) —
    /// exactly the situation §6 describes ("a huge amount of content already
    /// present in our platform … remains to be semantically annotated").
    pub fn bootstrap(config: WorkloadConfig) -> Result<Platform, PlatformError> {
        Self::assemble(config, |store| {
            Ok((DurableStore::ephemeral(store), RecoveryReport::default()))
        })
        .map(|(platform, _)| platform)
    }

    /// Bootstraps a platform whose semantic store is backed by the
    /// durability engine. On fresh storage the freshly semanticized
    /// seed store is *adopted* (written as the initial snapshot
    /// generation); on later boots the store — triple indexes,
    /// fulltext, geo, stats — is **recovered** from the journal to the
    /// last acknowledged state instead of being rebuilt, and the
    /// [`RecoveryReport`] says what was replayed. The relational base,
    /// context platform and tag index are deterministic functions of
    /// the workload config and are re-derived on every boot; the
    /// journal covers the semantic store, where all post-bootstrap
    /// platform state (uploads, annotations, votes) lands.
    pub fn bootstrap_durable(
        config: WorkloadConfig,
        storage: Box<dyn Storage>,
        options: DurabilityOptions,
    ) -> Result<(Platform, RecoveryReport), PlatformError> {
        Self::assemble(config, move |store| {
            Ok(DurableStore::open_or_adopt(storage, options, move || {
                store
            })?)
        })
    }

    fn assemble(
        config: WorkloadConfig,
        persist: impl FnOnce(Store) -> Result<(DurableStore, RecoveryReport), PlatformError>,
    ) -> Result<(Platform, RecoveryReport), PlatformError> {
        let workload = generate(config);
        let mut store = Store::new();
        load_lod(&mut store, lodify_context::Gazetteer::global());
        let ugc_graph = store.graph(GRAPH_UGC);

        let mapping = coppermine_mapping();
        let (triples, _stats) = dump::dump_rdf(&workload.db, &mapping)?;
        store.insert_all(&triples, ugc_graph);

        // Hand the seed store to the persistence layer; a recovery
        // replaces it wholesale with the journaled one.
        let (mut store, report) = persist(store)?;
        let ugc_graph = store.graph(GRAPH_UGC);

        // Context platform from relational state.
        let mut context = ContextPlatform::new();
        let users = workload.db.table(cpg::USERS)?;
        for (uid, row) in users.scan() {
            let user_name = row[1].as_text().unwrap_or_default();
            let full_name = row[2].as_text().unwrap_or_default();
            context
                .buddies_mut()
                .add_user(uid as u64, user_name, full_name);
        }
        let friends = workload.db.table(cpg::FRIENDS)?;
        for (_, row) in friends.scan() {
            if let (Some(a), Some(b)) = (row[1].as_int(), row[2].as_int()) {
                context.buddies_mut().add_friend(a as u64, b as u64);
            }
        }
        // Last-seen positions: each user's latest GPS-bearing picture.
        let pictures = workload.db.table(cpg::PICTURES)?;
        for (_, row) in pictures.scan() {
            if let (Some(owner), Some(lon), Some(lat)) =
                (row[2].as_int(), row[6].as_real(), row[7].as_real())
            {
                if let Ok(point) = Point::new(lon, lat) {
                    context.buddies_mut().update_position(owner as u64, point);
                }
            }
        }

        let next_pid = pictures.scan().map(|(pid, _)| pid).max().unwrap_or(0) + 1;
        let next_vote = workload
            .db
            .table(cpg::VOTES)?
            .scan()
            .map(|(id, _)| id)
            .max()
            .unwrap_or(0)
            + 1;
        let next_poi_ref = workload
            .db
            .table(cpg::POI_REFS)?
            .scan()
            .map(|(id, _)| id)
            .max()
            .unwrap_or(0)
            + 1;

        let mut platform = Platform {
            db: workload.db,
            store,
            ugc_graph,
            mapping,
            context,
            annotator: Annotator::standard(),
            tags: TagIndex::new(),
            annotations: BTreeMap::new(),
            truth: workload.truth,
            next_pid,
            next_vote,
            next_poi_ref,
            fault_plan: None,
            album_cache: AlbumCache::new(),
            semantic_cache: Arc::new(SemanticCache::new()),
            obs: Obs::new(),
            outbox: None,
            live: LiveService::new(),
            cardinality: lodify_sparql::CardinalityProfile::new(),
            plan_cache: lodify_sparql::PlanCache::new(),
            admission: None,
        };
        platform.wire_observability();
        platform.rebuild_tag_index()?;
        Ok((platform, report))
    }

    /// Forwards the current observability bundle's metrics registry to
    /// the layers that record their own histograms (annotator + broker,
    /// durability engine), and the platform's semantic-resolution
    /// cache to the broker.
    fn wire_observability(&mut self) {
        self.annotator.set_observability(self.obs.metrics().clone());
        self.annotator
            .set_semantic_cache(self.semantic_cache.clone());
        self.store.set_observability(self.obs.metrics().clone());
        self.live.set_observability(&self.obs);
    }

    /// The observability bundle: metrics registry, tracer, slow-query
    /// and access logs. Clone handles out of it to wire external
    /// components (e.g. [`crate::federation::Federation`]) into the
    /// same `/metrics` exposition.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replaces the observability bundle (tests install one backed by
    /// a `VirtualClock` for deterministic traces) and re-wires the
    /// annotator and durability engine onto it.
    pub fn set_observability(&mut self, obs: Obs) {
        self.obs = obs;
        self.wire_observability();
    }

    /// Rebuilds the triple-tag baseline index from relational state:
    /// plain keywords plus context tags for every picture.
    fn rebuild_tag_index(&mut self) -> Result<(), PlatformError> {
        let mut index = TagIndex::new();
        let pictures = self.db.table(cpg::PICTURES)?;
        for (pid, row) in pictures.scan() {
            for keyword in row[4].as_text().unwrap_or_default().split_whitespace() {
                index.insert(pid, Tag::Plain(keyword.to_string()));
            }
            let owner = row[2].as_int().unwrap_or(0) as u64;
            let ts = row[5].as_int().unwrap_or(0);
            let gps = match (row[6].as_real(), row[7].as_real()) {
                (Some(lon), Some(lat)) => Point::new(lon, lat).ok(),
                _ => None,
            };
            let snapshot = self.context.contextualize(owner, ts, gps);
            for tag in tags_for(&snapshot) {
                index.insert(pid, Tag::Triple(tag));
            }
        }
        self.tags = index;
        Ok(())
    }

    /// The picture resource IRI for a pid.
    pub fn picture_iri(pid: i64) -> Iri {
        ns::TL_PID.iri(&pid.to_string())
    }

    /// The user resource IRI for a user id.
    pub fn user_iri(user_id: i64) -> Iri {
        ns::TL_UID.iri(&user_id.to_string())
    }

    /// Installs a scripted fault plan judged on every upload under
    /// target `platform.upload` (chaos tests, deferred-queue drills).
    /// The plan is also forwarded to the durability engine, which
    /// honors the `wal.flush` and `snapshot.write` targets.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.store.set_fault_plan(plan.clone());
        self.fault_plan = Some(plan);
    }

    /// Removes the installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.store.clear_fault_plan();
        self.fault_plan = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Processes one upload end-to-end through the prepare/commit
    /// split: validation and context analysis
    /// ([`Platform::stage_upload`]), read-only semantic annotation
    /// ([`Platform::annotate_staged`]), then the short commit stage
    /// ([`Platform::commit_staged`]) that alone mutates the relational
    /// base and the store.
    ///
    /// The whole pipeline runs under an `upload` trace with one child
    /// span per stage (`upload.context`, `upload.annotate`,
    /// `upload.relational`, `upload.semanticize`, `upload.record`);
    /// span durations feed same-named histograms in the metrics
    /// registry. Batched ingest ([`crate::ingest::IngestPool`]) runs
    /// the same three stages, annotating many uploads concurrently.
    pub fn upload(&mut self, upload: Upload) -> Result<UploadReceipt, PlatformError> {
        let root = self.obs.tracer().start("upload");
        let result = self.upload_staged(upload, &root);
        root.finish();
        match &result {
            Ok(_) => self.obs.metrics().incr("upload.accepted"),
            Err(_) => self.obs.metrics().incr("upload.errors"),
        }
        result
    }

    fn upload_staged(
        &mut self,
        upload: Upload,
        root: &lodify_obs::Span,
    ) -> Result<UploadReceipt, PlatformError> {
        let context_span = root.child("upload.context");
        let staged = self.stage_upload(upload);
        context_span.finish();
        let staged = staged?;

        let annotate = root.child("upload.annotate");
        let result = self.annotate_staged(&staged);
        annotate.finish();

        self.commit_staged(staged, result, Some(root))
    }

    /// **Prepare stage.** Validates the upload, updates the uploader's
    /// last-seen position and derives the context snapshot and triple
    /// tags (§1.1). No store write happens here; the returned
    /// [`StagedUpload`] carries everything the read-only annotation
    /// stage and the commit stage need.
    pub fn stage_upload(&mut self, upload: Upload) -> Result<StagedUpload, PlatformError> {
        if let Some(plan) = &self.fault_plan {
            plan.check("platform.upload")
                .map_err(|e| PlatformError::Unavailable(e.to_string()))?;
        }
        if upload.title.trim().is_empty() && upload.tags.is_empty() {
            return Err(PlatformError::Invalid(
                "upload needs a title or tags".into(),
            ));
        }
        let users = self.db.table(cpg::USERS)?;
        if users.get(upload.user_id).is_none() {
            return Err(PlatformError::NotFound(format!("user {}", upload.user_id)));
        }
        // The user's first album hosts ad-hoc uploads.
        let albums = self.db.table(cpg::ALBUMS)?;
        let aid = albums
            .select(|row| row[1].as_int() == Some(upload.user_id))
            .map(|(aid, _)| aid)
            .next()
            .ok_or_else(|| PlatformError::NotFound(format!("album for user {}", upload.user_id)))?;

        // Context analysis — including the buddy model's last-seen
        // position, which is why staging is sequential (in capture
        // order) even when annotation then runs concurrently.
        if let Some(point) = upload.gps {
            self.context
                .buddies_mut()
                .update_position(upload.user_id as u64, point);
        }
        let snapshot = self
            .context
            .contextualize(upload.user_id as u64, upload.ts, upload.gps);
        let context_tags = tags_for(&snapshot);
        let poi_input = upload
            .poi
            .as_ref()
            .map(|(name, category, point)| PoiRefInput {
                name: name.clone(),
                category: category.clone(),
                point: *point,
            });
        Ok(StagedUpload {
            upload,
            aid,
            snapshot,
            context_tags,
            poi_input,
        })
    }

    /// **Annotation stage.** Runs the full semantic-annotation
    /// pipeline (§2.2) for a staged upload against the current store
    /// snapshot. Takes `&self` and only reads — safe to fan out
    /// across threads for a batch of staged uploads.
    pub fn annotate_staged(&self, staged: &StagedUpload) -> AnnotationResult {
        self.annotator
            .annotate(self.store.store(), &staged.content_input())
    }

    /// **Commit stage.** The only stage that takes exclusive access:
    /// allocates the pid, inserts the relational rows, semanticizes
    /// them into the UGC graph (§2.1), indexes the tags and records
    /// the annotation result. Store writes are ordered exactly as the
    /// serial path always ordered them (POI triples, picture triples,
    /// annotation triples), so batched and sequential ingest journal
    /// byte-identical WAL streams.
    pub fn commit_staged(
        &mut self,
        staged: StagedUpload,
        result: AnnotationResult,
        root: Option<&lodify_obs::Span>,
    ) -> Result<UploadReceipt, PlatformError> {
        let StagedUpload {
            upload,
            aid,
            snapshot: _,
            context_tags,
            poi_input: _,
        } = staged;

        let relational = root.map(|r| r.child("upload.relational"));
        let pid = self.next_pid;
        self.next_pid += 1;
        let (lon, lat) = match upload.gps {
            Some(p) => (SqlValue::Real(p.lon), SqlValue::Real(p.lat)),
            None => (SqlValue::Null, SqlValue::Null),
        };
        self.db.insert(
            cpg::PICTURES,
            vec![
                pid.into(),
                aid.into(),
                upload.user_id.into(),
                upload.title.clone().into(),
                upload.tags.join(" ").into(),
                upload.ts.into(),
                lon,
                lat,
                format!("media/{pid}.jpg").into(),
            ],
        )?;
        let mut poi_ref_id = None;
        if let Some((name, category, point)) = &upload.poi {
            let ref_id = self.next_poi_ref;
            self.next_poi_ref += 1;
            self.db.insert(
                cpg::POI_REFS,
                vec![
                    ref_id.into(),
                    pid.into(),
                    name.clone().into(),
                    category.clone().into(),
                    SqlValue::Real(point.lon),
                    SqlValue::Real(point.lat),
                ],
            )?;
            poi_ref_id = Some(ref_id);
        }
        if let Some(span) = relational {
            span.finish();
        }

        // Incremental semanticization of the new rows (§2.1). The
        // committed delta is collected whenever a consumer needs it:
        // the emission outbox (replication) or the standing-query
        // engine (live albums) — both see exactly what was inserted.
        let semanticize = root.map(|r| r.child("upload.semanticize"));
        let track_delta = self.outbox.is_some() || !self.live.engine().is_empty();
        let mut emitted: Vec<Triple> = Vec::new();
        if let Some(ref_id) = poi_ref_id {
            let poi_triples = dump::dump_resource(&self.db, &self.mapping, cpg::POI_REFS, ref_id)?;
            self.store.insert_all(&poi_triples, self.ugc_graph)?;
            if track_delta {
                emitted.extend(poi_triples);
            }
        }
        let triples = dump::dump_resource(&self.db, &self.mapping, cpg::PICTURES, pid)?;
        let mut triples_added = self.store.insert_all(&triples, self.ugc_graph)?;
        if track_delta {
            emitted.extend(triples);
        }
        if let Some(span) = semanticize {
            span.finish();
        }

        for keyword in &upload.tags {
            self.tags.insert(pid, Tag::Plain(keyword.clone()));
        }
        for tag in &context_tags {
            self.tags.insert(pid, Tag::Triple(tag.clone()));
        }

        let record = root.map(|r| r.child("upload.record"));
        let annotation = Self::annotation_triples(pid, &result);
        triples_added += self.store.insert_all(&annotation, self.ugc_graph)?;
        if track_delta {
            emitted.extend(annotation);
        }
        if let Some(span) = record {
            span.finish();
        }

        // Maintain live albums from the committed delta before the
        // outbox consumes it (the engine only borrows the triples).
        let trace = root.and_then(|r| r.context());
        self.live.on_commit(
            self.store.store(),
            Some(&self.album_cache),
            &emitted,
            &[],
            trace,
        );

        if let Some(outbox) = &mut self.outbox {
            let additions = emitted
                .into_iter()
                .map(|triple| EmissionQuad {
                    triple,
                    graph: Some(GRAPH_UGC.to_string()),
                })
                .collect();
            outbox.record(
                self.store.store().epoch(),
                None,
                additions,
                Vec::new(),
                trace,
            )?;
            self.obs.metrics().incr("replication.emissions");
        }

        let auto_annotations = result.terms.iter().filter(|t| t.resource.is_some()).count();
        self.annotations.insert(pid, result);

        Ok(UploadReceipt {
            pid,
            resource: Self::picture_iri(pid),
            triples_added,
            context_tags: context_tags.len(),
            auto_annotations,
        })
    }

    /// Writes an annotation result into the UGC graph; returns the
    /// number of new triples.
    fn record_annotation(
        &mut self,
        pid: i64,
        result: &AnnotationResult,
    ) -> Result<usize, PlatformError> {
        let triples = Self::annotation_triples(pid, result);
        Ok(self.store.insert_all(&triples, self.ugc_graph)?)
    }

    /// The store triples an annotation result contributes for `pid` —
    /// shared by the commit path and the emission outbox so replicated
    /// state matches local state exactly.
    fn annotation_triples(pid: i64, result: &AnnotationResult) -> Vec<Triple> {
        let subject = Term::Iri(Self::picture_iri(pid));
        let mut triples = Vec::new();
        if let Some(city) = &result.location {
            triples.push(Triple::new_unchecked(
                subject.clone(),
                located_in_pred(),
                Term::Iri(city.clone()),
            ));
        }
        for buddy in &result.buddies {
            triples.push(Triple::new_unchecked(
                subject.clone(),
                with_buddy_pred(),
                Term::Iri(buddy.clone()),
            ));
        }
        if let Some(poi) = &result.poi {
            triples.push(Triple::new_unchecked(
                subject.clone(),
                subject_pred(),
                Term::Iri(poi.clone()),
            ));
        }
        for term in &result.terms {
            if let Some(resource) = &term.resource {
                triples.push(Triple::new_unchecked(
                    subject.clone(),
                    subject_pred(),
                    Term::Iri(resource.clone()),
                ));
            }
        }
        triples
    }

    /// Annotates one legacy picture (used by the batch job). Returns
    /// the number of term annotations that fired. Equivalent to
    /// [`Platform::stage_legacy`], [`Platform::annotate_legacy_staged`],
    /// and [`Platform::commit_legacy`], which the batched path runs
    /// with the annotation stage fanned out across workers.
    pub fn annotate_legacy(&mut self, pid: i64) -> Result<usize, PlatformError> {
        let staged = self.stage_legacy(pid)?;
        let result = self.annotate_legacy_staged(&staged);
        self.commit_legacy(pid, result)
    }

    /// **Prepare stage** of legacy batch annotation: extracts the
    /// picture's title, tags, context snapshot and POI reference from
    /// relational state. Read-only.
    pub fn stage_legacy(&self, pid: i64) -> Result<StagedLegacy, PlatformError> {
        let pictures = self.db.table(cpg::PICTURES)?;
        let row = pictures
            .get(pid)
            .ok_or_else(|| PlatformError::NotFound(format!("picture {pid}")))?;
        let title = row[3].as_text().unwrap_or_default().to_string();
        let tags: Vec<String> = row[4]
            .as_text()
            .unwrap_or_default()
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let owner = row[2].as_int().unwrap_or(0) as u64;
        let ts = row[5].as_int().unwrap_or(0);
        let gps = match (row[6].as_real(), row[7].as_real()) {
            (Some(lon), Some(lat)) => Point::new(lon, lat).ok(),
            _ => None,
        };
        // Explicit POI reference, if the user attached one.
        let poi_refs = self.db.table(cpg::POI_REFS)?;
        let poi_input = poi_refs
            .select(|r| r[1].as_int() == Some(pid))
            .next()
            .and_then(|(_, r)| {
                Some(PoiRefInput {
                    name: r[2].as_text()?.to_string(),
                    category: r[3].as_text()?.to_string(),
                    point: Point::new(r[4].as_real()?, r[5].as_real()?).ok()?,
                })
            });
        let snapshot = gps.map(|p| self.context.contextualize(owner, ts, Some(p)));
        Ok(StagedLegacy {
            pid,
            title,
            tags,
            snapshot,
            poi_input,
        })
    }

    /// **Annotation stage** of legacy batch annotation: read-only, so
    /// a batch of staged pictures can be annotated concurrently.
    pub fn annotate_legacy_staged(&self, staged: &StagedLegacy) -> AnnotationResult {
        self.annotator
            .annotate(self.store.store(), &staged.content_input())
    }

    /// **Commit stage** of legacy batch annotation: records the
    /// annotation triples into the UGC graph and stores the result.
    /// Returns the number of term annotations that fired.
    pub fn commit_legacy(
        &mut self,
        pid: i64,
        result: AnnotationResult,
    ) -> Result<usize, PlatformError> {
        self.record_annotation(pid, &result)?;
        if !self.live.engine().is_empty() {
            let triples = Self::annotation_triples(pid, &result);
            self.live.on_commit(
                self.store.store(),
                Some(&self.album_cache),
                &triples,
                &[],
                None,
            );
        }
        let fired = result.terms.iter().filter(|t| t.resource.is_some()).count();
        self.annotations.insert(pid, result);
        Ok(fired)
    }

    /// Records a vote and refreshes the picture's `rev:rating`.
    pub fn rate(&mut self, pid: i64, user_id: i64, rating: i64) -> Result<(), PlatformError> {
        if !(1..=5).contains(&rating) {
            return Err(PlatformError::Invalid(format!(
                "rating {rating} out of 1..=5"
            )));
        }
        let vote_id = self.next_vote;
        self.next_vote += 1;
        self.db.insert(
            cpg::VOTES,
            vec![vote_id.into(), pid.into(), user_id.into(), rating.into()],
        )?;
        let agg = self.mapping.aggregate_maps[0].clone();
        let subject = Term::Iri(Self::picture_iri(pid));
        // Capture the aggregate triples being replaced so the
        // standing-query engine sees the removal half of the delta.
        let removed = if self.live.engine().is_empty() {
            Vec::new()
        } else {
            self.store
                .store()
                .match_terms(Some(&subject), Some(&agg.predicate), None)
        };
        self.store.remove_pattern_sp(&subject, &agg.predicate)?;
        let mut added = Vec::new();
        if let Some(triple) = dump::aggregate_for(&self.db, &self.mapping, &agg, pid)? {
            self.store.insert(&triple, self.ugc_graph)?;
            added.push(triple);
        }
        self.live.on_commit(
            self.store.store(),
            Some(&self.album_cache),
            &added,
            &removed,
            None,
        );
        Ok(())
    }

    /// All picture ids, in order.
    pub fn picture_ids(&self) -> Vec<i64> {
        self.db
            .table(cpg::PICTURES)
            .map(|t| t.scan().map(|(pid, _)| pid).collect())
            .unwrap_or_default()
    }

    /// The semantic store (LOD + semanticized UGC + annotations).
    pub fn store(&self) -> &Store {
        self.store.store()
    }

    /// Pins the current store state as an immutable
    /// [`StoreSnapshot`]: O(shards) to take, safe to hold across
    /// broker calls, I/O and threads, and guaranteed never to observe
    /// a half-commit. This is what the ingest pool's annotation
    /// workers and any long-running reader should use instead of
    /// borrowing [`Platform::store`] across slow calls.
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.store.pin()
    }

    /// Durability counters, when the store is journal-backed
    /// (`None` for ephemeral platforms).
    pub fn durability(&self) -> Option<DurabilityStats> {
        self.store.stats()
    }

    /// Forces the WAL durability barrier: every mutation so far is
    /// acknowledged once this returns `Ok`. No-op for ephemeral
    /// platforms.
    pub fn flush_store(&mut self) -> Result<(), PlatformError> {
        Ok(self.store.flush()?)
    }

    /// Forces log compaction into a fresh snapshot generation. No-op
    /// for ephemeral platforms.
    pub fn snapshot_store(&mut self) -> Result<(), PlatformError> {
        Ok(self.store.snapshot()?)
    }

    /// The relational database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The triple-tag baseline index.
    pub fn tags(&self) -> &TagIndex {
        &self.tags
    }

    /// The context platform.
    pub fn context(&self) -> &ContextPlatform {
        &self.context
    }

    /// Mutable context platform (tests set up buddies/calendars).
    pub fn context_mut(&mut self) -> &mut ContextPlatform {
        &mut self.context
    }

    /// Replaces the annotator (ablations and fault-injection tests).
    /// The replacement inherits the platform's metrics registry and
    /// semantic-resolution cache.
    pub fn set_annotator(&mut self, annotator: Annotator) {
        self.annotator = annotator;
        self.annotator.set_observability(self.obs.metrics().clone());
        self.annotator
            .set_semantic_cache(self.semantic_cache.clone());
    }

    /// The annotator (read-only; the ingest pool shares it across
    /// prepare-stage workers).
    pub(crate) fn annotator(&self) -> &Annotator {
        &self.annotator
    }

    /// Swaps the durability engine's group-commit policy for the
    /// batched-ingest commit stage; returns the prior policy to hand
    /// back to [`Platform::restore_group_commit`]. `None` when the
    /// store is ephemeral (nothing to restore).
    pub(crate) fn swap_group_commit(
        &mut self,
        policy: GroupCommitPolicy,
    ) -> Option<GroupCommitPolicy> {
        let prior = self.store.group_commit();
        self.store.set_group_commit(policy);
        prior
    }

    /// Restores a group-commit policy swapped out by
    /// [`Platform::swap_group_commit`] and runs the durability barrier,
    /// so a batch is exactly as durable at its end as the same
    /// mutations issued one by one.
    pub(crate) fn restore_group_commit(
        &mut self,
        prior: Option<GroupCommitPolicy>,
    ) -> Result<(), PlatformError> {
        if let Some(prior) = prior {
            self.store.set_group_commit(prior);
            self.store.flush()?;
        }
        Ok(())
    }

    /// Workload ground truth (experiment scoring).
    pub fn truth(&self) -> &[PictureTruth] {
        &self.truth
    }

    /// Annotation results recorded so far, by pid.
    pub fn annotations(&self) -> &BTreeMap<i64, AnnotationResult> {
        &self.annotations
    }

    /// Runs a SPARQL query against the platform store.
    ///
    /// Execution is traced (`sparql` root span, `sparql.parse` /
    /// `sparql.plan` / `sparql.eval` children) and goes through the
    /// fingerprint-keyed [`lodify_sparql::PlanCache`]: a full hit skips
    /// parse *and* plan, a plan-only hit (same fingerprint, different
    /// literals) reparses but reuses the cached join order, and a miss
    /// compiles a fresh cost-based [`lodify_sparql::Plan`] calibrated
    /// by the cardinality registry and caches it. After every planned
    /// execution the worst estimated-vs-actual operator drift is fed
    /// back; past the cache's threshold the entry is invalidated so the
    /// next request replans against current statistics.
    ///
    /// The evaluator's [`lodify_sparql::EvalReport`] feeds
    /// the `sparql.busy` and `sparql.critical_path` histograms when
    /// parallel sections ran, and executions crossing the slow-query
    /// threshold are aggregated in the slow-query log under the
    /// query's normalized fingerprint, together with the per-operator
    /// [`lodify_sparql::EvalProfile`] breakdown, plan-cache outcome
    /// (`hit` / `miss`) and plan id of the worst run. Every profiled
    /// execution also feeds the per-predicate
    /// [`lodify_sparql::CardinalityProfile`] registry
    /// ([`Self::cardinality`]), and the `sparql.query` histogram tags
    /// its bucket with the query's trace id as an exemplar.
    pub fn query(&self, sparql: &str) -> Result<lodify_sparql::QueryResults, PlatformError> {
        if !self.obs.is_enabled() {
            self.plan_cache.note_bypass();
            return Ok(lodify_sparql::execute(self.store.store(), sparql)?);
        }
        let started = self.obs.metrics().now_micros();
        let root = self.obs.tracer().start("sparql");

        let fingerprint = lodify_sparql::fingerprint(sparql);
        let lookup = self.plan_cache.lookup(&fingerprint, sparql);
        let outcome = match &lookup {
            lodify_sparql::PlanLookup::Miss => "miss",
            _ => "hit",
        };
        self.obs.metrics().incr(match outcome {
            "hit" => "sparql.plan.hits",
            _ => "sparql.plan.misses",
        });

        let (parsed, cached_plan) = match lookup {
            lodify_sparql::PlanLookup::Hit { query, plan } => (query, Some(plan)),
            lodify_sparql::PlanLookup::PlanOnly { plan } => {
                let parse_span = root.child("sparql.parse");
                let parsed = lodify_sparql::parse(sparql);
                parse_span.finish();
                match parsed {
                    Ok(parsed) => (Arc::new(parsed), Some(plan)),
                    Err(e) => {
                        self.obs.metrics().incr("sparql.parse.errors");
                        root.finish();
                        return Err(e.into());
                    }
                }
            }
            lodify_sparql::PlanLookup::Miss => {
                let parse_span = root.child("sparql.parse");
                let parsed = lodify_sparql::parse(sparql);
                parse_span.finish();
                match parsed {
                    Ok(parsed) => (Arc::new(parsed), None),
                    Err(e) => {
                        self.obs.metrics().incr("sparql.parse.errors");
                        root.finish();
                        return Err(e.into());
                    }
                }
            }
        };
        let plan = match cached_plan {
            Some(plan) => plan,
            None => {
                let plan_span = root.child("sparql.plan");
                let plan = Arc::new(lodify_sparql::plan_query(
                    self.store.store(),
                    &parsed,
                    Some(&self.cardinality),
                ));
                plan_span.finish();
                self.plan_cache.insert(
                    &fingerprint,
                    sparql,
                    Arc::clone(&parsed),
                    Arc::clone(&plan),
                );
                plan
            }
        };

        let eval_span = root.child("sparql.eval");
        let evaluated = lodify_sparql::evaluate_planned(
            self.store.store(),
            &parsed,
            lodify_sparql::EvalOptions::default(),
            &plan,
        );
        eval_span.finish();
        let trace_id = root.context().map(|c| c.trace_id).unwrap_or(0);
        root.finish();
        let (results, report) = match evaluated {
            Ok(pair) => pair,
            Err(e) => {
                self.obs.metrics().incr("sparql.eval.errors");
                return Err(e.into());
            }
        };
        let metrics = self.obs.metrics();
        metrics.incr("sparql.queries");
        if report.parallel_sections > 0 {
            metrics.observe_duration("sparql.busy", report.busy);
            metrics.observe_duration("sparql.critical_path", report.critical_path);
        }
        self.cardinality.absorb(&report.profile);
        // Drift only invalidates once the store has moved past the
        // plan's epoch: same-epoch drift is cost-model error a replan
        // against identical statistics would reproduce (the cache
        // would thrash, every request a miss), while stale-epoch
        // drift means the data shifted under the plan and replanning
        // can actually pick a better order.
        if plan.epoch() != self.store.store().epoch()
            && self.plan_cache.note_drift(&fingerprint, report.plan_drift)
        {
            metrics.incr("sparql.plan.invalidations");
        }
        let elapsed_us = metrics.now_micros().saturating_sub(started);
        metrics.observe_with_exemplar("sparql.query", elapsed_us, trace_id);
        if elapsed_us >= self.obs.slow_queries().threshold_us() {
            self.obs.slow_queries().record_annotated(
                &fingerprint,
                sparql,
                elapsed_us,
                &report.profile.render_lines(),
                Some(outcome),
                Some(plan.id()),
            );
            metrics.incr("sparql.slow");
        }
        Ok(results)
    }

    /// The per-predicate cardinality registry fed by every profiled
    /// query: mean actual vs. estimated rows per constant predicate,
    /// sorted by how badly the optimizer misestimates it. Seed
    /// statistics for cost-based planning (ROADMAP item 5).
    pub fn cardinality(&self) -> &lodify_sparql::CardinalityProfile {
        &self.cardinality
    }

    /// The compiled-plan cache (counters, drift threshold).
    pub fn plan_cache(&self) -> &lodify_sparql::PlanCache {
        &self.plan_cache
    }

    /// Plan-cache counter snapshot (for [`crate::metrics`]).
    pub fn plan_cache_stats(&self) -> lodify_sparql::PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Switches admission control on: from now on the web layer
    /// consults a per-tenant token-bucket + queue-depth shedding
    /// [`crate::admission::AdmissionController`] before routing, and
    /// the `/ops` verdict degrades while the controller sheds. The
    /// controller reads the platform's obs clock, so virtual-time
    /// chaos tests drive refill and recovery deterministically.
    pub fn enable_admission(&mut self, config: crate::admission::AdmissionConfig) {
        self.admission = Some(crate::admission::AdmissionController::new(
            Arc::clone(self.obs.clock()),
            config,
        ));
    }

    /// The admission controller, when [`Platform::enable_admission`]
    /// ran.
    pub fn admission(&self) -> Option<&crate::admission::AdmissionController> {
        self.admission.as_ref()
    }

    /// Serves a virtual album through the materialized-album cache:
    /// a fresh cached answer is returned without touching the SPARQL
    /// engine; stale or cold albums are solved and admitted. Because
    /// WAL recovery replays `Store::insert`/`remove`, store epochs —
    /// and with them cache validity — repopulate correctly on reboot.
    ///
    /// With observability enabled, cold/stale solves run through
    /// [`Self::query`], so album misses show up in the `sparql.parse`
    /// / `sparql.eval` histograms and the slow-query log like any
    /// other query.
    pub fn view_album(&self, spec: &AlbumSpec) -> Result<Vec<String>, PlatformError> {
        if !self.obs.is_enabled() {
            return self.album_cache.view(self.store.store(), spec);
        }
        let before = self.album_cache.stats();
        let span = self.obs.tracer().start("album.view");
        let out = self
            .album_cache
            .view_with(self.store.store(), spec, |spec| {
                let results = self.query(&spec.to_sparql())?;
                Ok(results
                    .column("link")
                    .into_iter()
                    .map(|t| t.lexical().to_string())
                    .collect())
            });
        span.finish();
        let after = self.album_cache.stats();
        let metrics = self.obs.metrics();
        metrics.add("album.cache.hits", after.hits - before.hits);
        metrics.add("album.cache.misses", after.misses - before.misses);
        metrics.add(
            "album.cache.invalidations",
            after.invalidations - before.invalidations,
        );
        out
    }

    /// The materialized-album cache (counters, manual clear).
    pub fn album_cache(&self) -> &AlbumCache {
        &self.album_cache
    }

    /// Album-cache counter snapshot (for [`crate::metrics`]).
    pub fn album_cache_stats(&self) -> AlbumCacheStats {
        self.album_cache.stats()
    }

    /// The semantic-resolution cache shared with the broker (counters,
    /// manual clear).
    pub fn semantic_cache(&self) -> &SemanticCache {
        &self.semantic_cache
    }

    /// Semantic-cache counter snapshot (for [`crate::metrics`]).
    pub fn semantic_cache_stats(&self) -> SemanticCacheStats {
        self.semantic_cache.stats()
    }

    /// Collects the platform-local operational snapshot: broker and
    /// breaker state, durability counters, album-cache and
    /// semantic-cache counters. Callers holding a re-annotation queue
    /// or a federation wire those in via
    /// [`crate::metrics::OpsSnapshot::collect`] directly.
    pub fn ops_snapshot(&self) -> crate::metrics::OpsSnapshot {
        crate::metrics::OpsSnapshot::collect(
            self.annotator.broker(),
            crate::metrics::OpsSources {
                replication: self
                    .outbox
                    .as_ref()
                    .map(|o| crate::metrics::ReplicationOps {
                        lag: o.lag(),
                        emissions: o.len() as u64,
                        ..Default::default()
                    }),
                durability: self.durability(),
                album_cache: Some(self.album_cache_stats()),
                semantic_cache: Some(self.semantic_cache_stats()),
                live: (!self.live.engine().is_empty() || !self.live.hub().is_empty())
                    .then(|| self.live.ops()),
                plan_cache: Some(self.plan_cache_stats()),
                admission: self.admission.as_ref().map(|a| a.ops()),
                ..Default::default()
            },
        )
    }

    /// Registers a standing live-album query: from now on every commit
    /// maintains its materialized answer differentially (and keeps the
    /// album cache patched), instead of invalidating it.
    pub fn live_register(&mut self, spec: &AlbumSpec) -> LiveAlbumId {
        self.live
            .register(self.store.store(), spec, Some(&self.album_cache))
    }

    /// Subscribes a callback to a registered live album's diff stream
    /// (SparqlPuSH). Deliveries are at-least-once; the subscriber's
    /// idempotent apply absorbs duplicates.
    pub fn live_subscribe(&mut self, callback: &str, album: LiveAlbumId) -> SubscriberId {
        self.live.subscribe(callback, album)
    }

    /// The live-album service (engine + push hub).
    pub fn live(&self) -> &LiveService {
        &self.live
    }

    /// Mutable live-album service (fault plans, chaos controls,
    /// manual pumps and dead-letter redelivery).
    pub fn live_mut(&mut self) -> &mut LiveService {
        &mut self.live
    }

    /// Rebuilds all standing-query state from the (recovered) store
    /// and re-seeds the album cache — the crash-recovery counterpart
    /// to WAL replay for the live subsystem.
    pub fn live_rebuild(&mut self) {
        self.live
            .rebuild(self.store.store(), Some(&self.album_cache));
    }

    /// Switches the platform into emission-producing mode: every
    /// [`Platform::commit_staged`] from now on journals its committed
    /// UGC delta as an [`Emission`] from `origin`, durably on
    /// `storage` (beside the WAL when they share a directory). On
    /// recycled storage the sequence resumes exactly where the journal
    /// left off; returns how many emissions were recovered.
    pub fn enable_emissions(
        &mut self,
        origin: Acct,
        storage: Box<dyn Storage>,
    ) -> Result<usize, PlatformError> {
        let outbox = EmissionOutbox::open(origin, storage)?;
        let recovered = outbox.len();
        self.outbox = Some(outbox);
        Ok(recovered)
    }

    /// The emission outbox, when [`Platform::enable_emissions`] ran.
    pub fn outbox(&self) -> Option<&EmissionOutbox> {
        self.outbox.as_ref()
    }

    /// Hands every undrained emission to a replication agent. The
    /// drain position is in-memory consumer state: after a restart the
    /// journal re-offers everything and downstream idempotent apply
    /// absorbs the overlap.
    pub fn drain_emissions(&mut self) -> Vec<Emission> {
        self.outbox
            .as_mut()
            .map(EmissionOutbox::drain)
            .unwrap_or_default()
    }

    /// Refreshes registry gauges from current platform state (store
    /// size, WAL depth, album-cache entries, semantic-cache state).
    /// Called by the web layer before rendering `/metrics` so
    /// point-in-time values are current without per-mutation
    /// bookkeeping.
    pub fn publish_gauges(&self) {
        let metrics = self.obs.metrics();
        metrics.set_gauge("store.triples", self.store.store().len() as u64);
        let cache = self.album_cache_stats();
        metrics.set_gauge("album.cache.entries", cache.entries as u64);
        let semantic = self.semantic_cache_stats();
        metrics.set_gauge("semantic.cache.entries", semantic.entries as u64);
        metrics.set_gauge(
            "semantic.cache.hit.ratio.permille",
            (semantic.hit_ratio() * 1000.0) as u64,
        );
        if let Some(stats) = self.durability() {
            metrics.set_gauge("wal.pending", stats.wal_pending as u64);
            metrics.set_gauge("wal.records", stats.wal_records);
            metrics.set_gauge("wal.generation", stats.generation);
        }
        if let Some(outbox) = &self.outbox {
            metrics.set_gauge("replication.outbox.lag", outbox.lag());
        }
        if !self.live.engine().is_empty() {
            let live = self.live.ops();
            metrics.set_gauge("live.albums", live.albums as u64);
            metrics.set_gauge("live.push.subscribers", live.push.subscribers as u64);
            metrics.set_gauge("live.push.lag", live.push.lag);
            metrics.set_gauge("live.push.dlq.depth", live.push.dlq_depth as u64);
        }
        let plan = self.plan_cache_stats();
        metrics.set_gauge("sparql.plan.entries", plan.entries as u64);
        if let Some(admission) = &self.admission {
            let ops = admission.ops();
            metrics.set_gauge("admission.queue.depth", ops.queue_depth as u64);
            metrics.set_gauge("admission.tenants", ops.tenants as u64);
        }
        metrics.set_gauge("store.epoch", self.store.store().epoch());
        metrics.set_gauge("store.shards", self.store.store().shard_count() as u64);
    }
}

impl SnapshotSource for Platform {
    /// The platform is a [`SnapshotSource`]: readers that should not
    /// borrow the platform across slow calls pin a version instead.
    fn pin(&self) -> StoreSnapshot {
        self.store_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_context::Gazetteer;

    fn small_platform() -> Platform {
        Platform::bootstrap(WorkloadConfig::small(42)).expect("bootstrap")
    }

    #[test]
    fn bootstrap_fuses_ugc_and_lod() {
        let p = small_platform();
        assert!(p.store().len() > 1000);
        // A picture resource exists with the paper's shape.
        let results = p
            .query("SELECT (COUNT(*) AS ?n) WHERE { ?r a sioct:MicroblogPost . }")
            .unwrap();
        assert_eq!(
            results.column("n")[0].lexical(),
            p.picture_ids().len().to_string()
        );
        // Tag index has both plain and context tags.
        assert!(!p.tags().by_namespace("address").is_empty());
        assert!(!p.tags().by_namespace("cell").is_empty());
    }

    #[test]
    fn upload_flows_end_to_end() {
        let mut p = small_platform();
        let gaz = Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap();
        let receipt = p
            .upload(Upload {
                user_id: 1,
                title: "Tramonto alla Mole Antonelliana".into(),
                tags: vec!["torino".into(), "tramonto".into()],
                ts: 1_320_500_000,
                gps: Some(mole.point(gaz)),
                poi: Some((
                    "Mole Antonelliana".into(),
                    "monument".into(),
                    mole.point(gaz),
                )),
            })
            .expect("upload");

        assert!(receipt.triples_added > 5);
        assert!(receipt.context_tags >= 5);
        assert!(receipt.auto_annotations >= 1);

        // The new picture is queryable with annotations.
        let q = format!(
            "SELECT ?s WHERE {{ <{}> <{}> ?s . }}",
            receipt.resource.as_str(),
            subject_pred().as_str()
        );
        let results = p.query(&q).unwrap();
        let subjects: Vec<&str> = results.column("s").iter().map(|t| t.lexical()).collect();
        assert!(
            subjects.contains(&"http://dbpedia.org/resource/Mole_Antonelliana"),
            "{subjects:?}"
        );
        // Located-in points at Geonames Turin.
        let q = format!(
            "SELECT ?c WHERE {{ <{}> <{}> ?c . }}",
            receipt.resource.as_str(),
            located_in_pred().as_str()
        );
        let results = p.query(&q).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results.column("c")[0]
            .lexical()
            .starts_with("http://sws.geonames.org/"));
        // Triple-tag index got the context tags.
        let cities = p.tags().by_predicate("address", "city");
        assert!(cities.contains(&receipt.pid));
    }

    #[test]
    fn upload_validation() {
        let mut p = small_platform();
        assert!(matches!(
            p.upload(Upload {
                user_id: 9999,
                title: "x".into(),
                tags: vec![],
                ts: 0,
                gps: None,
                poi: None,
            }),
            Err(PlatformError::NotFound(_))
        ));
        assert!(matches!(
            p.upload(Upload {
                user_id: 1,
                title: "  ".into(),
                tags: vec![],
                ts: 0,
                gps: None,
                poi: None,
            }),
            Err(PlatformError::Invalid(_))
        ));
    }

    #[test]
    fn rating_refreshes_rev_rating() {
        let mut p = small_platform();
        let pid = p.picture_ids()[0];
        p.rate(pid, 1, 5).unwrap();
        p.rate(pid, 2, 3).unwrap();
        let q = format!(
            "SELECT ?r WHERE {{ <{}> rev:rating ?r . }}",
            Platform::picture_iri(pid).as_str()
        );
        let results = p.query(&q).unwrap();
        assert_eq!(results.len(), 1, "exactly one rating triple");
        let value: f64 = results.column("r")[0].lexical().parse().unwrap();
        assert!((1.0..=5.0).contains(&value));
        assert!(matches!(p.rate(pid, 1, 9), Err(PlatformError::Invalid(_))));
    }

    #[test]
    fn view_album_caches_until_an_upload_invalidates() {
        let mut p = small_platform();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        let cold = p.view_album(&spec).unwrap();
        let warm = p.view_album(&spec).unwrap();
        assert_eq!(cold, warm);
        let stats = p.album_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // An upload semanticizes new picture triples (rdf:type,
        // comm:image-data, geo:geometry, …) — the cache must notice.
        let gaz = Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap();
        let receipt = p
            .upload(Upload {
                user_id: 1,
                title: "Davanti alla Mole".into(),
                tags: vec!["torino".into()],
                ts: 7,
                gps: Some(mole.point(gaz)),
                poi: None,
            })
            .unwrap();
        let refreshed = p.view_album(&spec).unwrap();
        assert!(
            refreshed
                .iter()
                .any(|l| l.contains(&format!("media/{}.jpg", receipt.pid))),
            "the cached album refreshed to include the new upload"
        );
        let stats = p.album_cache_stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn legacy_annotation_records_results() {
        let mut p = small_platform();
        let pid = p.picture_ids()[0];
        assert!(p.annotations().is_empty());
        p.annotate_legacy(pid).unwrap();
        assert!(p.annotations().contains_key(&pid));
        assert!(matches!(
            p.annotate_legacy(99999),
            Err(PlatformError::NotFound(_))
        ));
    }
}
