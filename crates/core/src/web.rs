//! The web/mobile interface (§3–§4), as a library: request routing,
//! HTML rendering, and a minimal std-only HTTP server.
//!
//! "The platform's web interface offers users an environment to
//! perform many operations … when it is accessed from a mobile device,
//! redirects the user automatically to the mobile interface" (§3). The
//! routes mirror the paper's flows:
//!
//! * `GET /` — the search box (Fig. 2);
//! * `GET /search?q=<prefix>` — the AJAX candidate list (Fig. 3);
//! * `GET /resource?iri=<iri>` — content associated with a selected
//!   resource (Fig. 4);
//! * `GET /picture/<pid>` — one picture with its *friendly-format*
//!   context tags ("context tags are displayed in a friendly format,
//!   and are separated from user-defined tags", §1.1);
//! * `GET /about/<pid>` — the "About" mashup (§4.1);
//! * `GET /album?monument=<label>&lang=<tag>&radius=<km>` — a virtual
//!   album (§2.3).
//!
//! Desktop vs mobile rendering is selected by the `User-Agent` header,
//! reproducing the §3 redirect behaviour. The HTTP layer is
//! deliberately tiny (HTTP/1.1, GET only) — enough to drive the
//! platform from a browser or `curl` without external dependencies.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lodify_rdf::Iri;
use lodify_tripletags::Tag;

use crate::error::PlatformError;
use crate::mashup::MashupService;
use crate::platform::Platform;
use crate::search::SearchService;

/// A parsed (minimal) HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Whether the `User-Agent` looks like a mobile device (§3's
    /// automatic redirect to the mobile interface).
    pub mobile: bool,
    /// Caller identity for admission control, from the `X-Tenant`
    /// header (preferred) or a `tenant` query parameter. Anonymous
    /// requests share one quota bucket.
    pub tenant: Option<String>,
}

impl Request {
    /// Parses a request line + headers.
    pub fn parse(request_line: &str, headers: &[(String, String)]) -> Option<Request> {
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?;
        if method != "GET" {
            return None;
        }
        let target = parts.next()?;
        let (path, query_text) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let mut query = BTreeMap::new();
        for pair in query_text.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(url_decode(k), url_decode(v));
        }
        let mobile = headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("user-agent"))
            .map(|(_, value)| {
                let ua = value.to_lowercase();
                ua.contains("mobile") || ua.contains("android") || ua.contains("iphone")
            })
            .unwrap_or(false);
        let tenant = headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("x-tenant"))
            .map(|(_, value)| value.trim().to_string())
            .or_else(|| query.get("tenant").cloned())
            .filter(|t| !t.is_empty());
        Some(Request {
            path: path.to_string(),
            query,
            mobile,
            tenant,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type.
    pub content_type: &'static str,
    /// Body.
    pub body: String,
    /// Request id assigned by [`handle_request`], echoed to the client
    /// as an `X-Request-Id` header and recorded in the access log.
    pub request_id: Option<u64>,
    /// Trace id of the request's root span, assigned by
    /// [`handle_request`] when tracing is live and echoed to the
    /// client as an `X-Trace-Id` header — paste it into `/trace/<id>`
    /// to see the request's span tree.
    pub trace_id: Option<u64>,
}

impl Response {
    /// 200 with HTML.
    pub fn html(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body,
            request_id: None,
            trace_id: None,
        }
    }

    /// 200 with an explicit content type (plain-text expositions).
    pub fn text(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
            request_id: None,
            trace_id: None,
        }
    }

    /// 404.
    pub fn not_found(what: &str) -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("not found: {what}\n"),
            request_id: None,
            trace_id: None,
        }
    }

    /// 400.
    pub fn bad_request(message: &str) -> Response {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("bad request: {message}\n"),
            request_id: None,
            trace_id: None,
        }
    }

    /// 429: the tenant's quota bucket is empty.
    pub fn too_many_requests(tenant: &str) -> Response {
        Response {
            status: 429,
            content_type: "text/plain; charset=utf-8",
            body: format!("quota exceeded for tenant {tenant}: retry later\n"),
            request_id: None,
            trace_id: None,
        }
    }

    /// 503: the node is shedding this request class under overload.
    pub fn service_unavailable() -> Response {
        Response {
            status: 503,
            content_type: "text/plain; charset=utf-8",
            body: "overloaded: request shed, retry later\n".to_string(),
            request_id: None,
            trace_id: None,
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let request_id = self
            .request_id
            .map(|id| format!("X-Request-Id: {id}\r\n"))
            .unwrap_or_default();
        let trace_id = self
            .trace_id
            .map(|id| format!("X-Trace-Id: {id:016x}\r\n"))
            .unwrap_or_default();
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            request_id,
            trace_id,
            self.body
        )
    }
}

/// Routes requests against a platform. Pure (no I/O): fully unit-testable.
pub fn route(platform: &Platform, request: &Request) -> Response {
    match request.path.as_str() {
        "/" => Response::html(render_home(request.mobile)),
        "/search" => {
            let Some(q) = request.query.get("q") else {
                return Response::bad_request("missing q parameter");
            };
            let limit = request
                .query
                .get("limit")
                .and_then(|l| l.parse().ok())
                .unwrap_or(8);
            let suggestions = SearchService::suggest(platform.store(), q, limit);
            Response::html(render_suggestions(q, &suggestions, request.mobile))
        }
        "/resource" => {
            let Some(iri_text) = request.query.get("iri") else {
                return Response::bad_request("missing iri parameter");
            };
            let Ok(iri) = Iri::new(iri_text.clone()) else {
                return Response::bad_request("malformed iri");
            };
            match SearchService::content_for_resource(platform.store(), &iri, 1.0) {
                Ok(hits) => Response::html(render_content_list(iri_text, &hits, request.mobile)),
                Err(e) => Response::bad_request(&e.to_string()),
            }
        }
        "/album" => {
            let Some(monument) = request.query.get("monument") else {
                return Response::bad_request("missing monument parameter");
            };
            let lang = request
                .query
                .get("lang")
                .map(String::as_str)
                .unwrap_or("it");
            let radius: f64 = request
                .query
                .get("radius")
                .and_then(|r| r.parse().ok())
                .unwrap_or(0.3);
            let spec = crate::albums::AlbumSpec::near_monument(monument, lang, radius);
            // Served through the materialized-album cache: repeated
            // hits on the same spec skip SPARQL evaluation entirely
            // until a relevant store mutation bumps a predicate epoch.
            match platform.view_album(&spec) {
                Ok(links) => Response::html(render_album(monument, &links)),
                Err(e) => Response::bad_request(&e.to_string()),
            }
        }
        path if path.starts_with("/picture/") => {
            let Ok(pid) = path["/picture/".len()..].parse::<i64>() else {
                return Response::bad_request("bad picture id");
            };
            render_picture(platform, pid)
                .map(Response::html)
                .unwrap_or_else(|| Response::not_found(&format!("picture {pid}")))
        }
        path if path.starts_with("/about/") => {
            let Ok(pid) = path["/about/".len()..].parse::<i64>() else {
                return Response::bad_request("bad picture id");
            };
            let iri = Platform::picture_iri(pid);
            match MashupService::standard().about(platform.store(), &iri) {
                Ok(mashup) => Response::html(render_mashup(pid, &mashup)),
                Err(e) => Response::bad_request(&e.to_string()),
            }
        }
        "/metrics" => {
            // Refresh point-in-time gauges (store size, cache entries,
            // WAL depth) right before scraping, then expose everything
            // in Prometheus text format.
            platform.publish_gauges();
            Response::text(
                lodify_obs::prometheus::CONTENT_TYPE,
                platform.obs().render_prometheus(),
            )
        }
        "/ops" => Response::text("text/plain; charset=utf-8", render_ops(platform)),
        path if path.starts_with("/trace/") => {
            let id_text = &path["/trace/".len()..];
            let Ok(trace_id) = u64::from_str_radix(id_text, 16) else {
                return Response::bad_request("bad trace id (expected hex)");
            };
            match platform.obs().traces().render(trace_id) {
                Some(tree) => Response::text("text/plain; charset=utf-8", tree),
                None => Response::not_found(&format!("trace {trace_id:016x}")),
            }
        }
        "/subscriptions" => {
            Response::text("text/plain; charset=utf-8", render_subscriptions(platform))
        }
        other => Response::not_found(other),
    }
}

/// Routes a request with full observability: issues a request id,
/// wraps the handler in a `web.request` root span, times it into the
/// `web.request` histogram (tagging the bucket with the trace id as an
/// exemplar), and appends an [`lodify_obs::AccessEntry`] to the
/// platform's access log. The ids are echoed back on the response
/// (`X-Request-Id`, `X-Trace-Id`). [`route`] stays pure for tests
/// that don't care about the plumbing.
///
/// When [`Platform::enable_admission`] ran, admission is decided
/// *before* routing — a shed request costs a classification and an
/// atomic load, never a parse or a store touch. Quota rejections
/// return 429, overload sheds 503; both still get a request id and an
/// access-log entry so storms stay visible. Operational endpoints
/// (`/ops`, `/metrics`, `/trace/…`) are never shed.
pub fn handle_request(platform: &Platform, request: &Request) -> Response {
    let obs = platform.obs();
    let request_id = obs.access_log().begin();
    let started = obs.metrics().now_micros();

    let mut permit = None;
    if let Some(admission) = platform.admission() {
        use crate::admission::{AdmissionDecision, ShedClass};
        let class = ShedClass::classify(&request.path);
        match admission.admit(request.tenant.as_deref(), class) {
            AdmissionDecision::Admit(p) => permit = Some(p),
            AdmissionDecision::RejectQuota => {
                obs.metrics().incr("web.shed.quota");
                let mut response =
                    Response::too_many_requests(request.tenant.as_deref().unwrap_or("anon"));
                let elapsed_us = obs.metrics().now_micros().saturating_sub(started);
                obs.access_log().record(lodify_obs::AccessEntry {
                    request_id,
                    target: request_target(request),
                    status: response.status,
                    duration_us: elapsed_us,
                });
                response.request_id = Some(request_id);
                return response;
            }
            AdmissionDecision::RejectOverload => {
                obs.metrics().incr("web.shed.overload");
                let mut response = Response::service_unavailable();
                let elapsed_us = obs.metrics().now_micros().saturating_sub(started);
                obs.access_log().record(lodify_obs::AccessEntry {
                    request_id,
                    target: request_target(request),
                    status: response.status,
                    duration_us: elapsed_us,
                });
                response.request_id = Some(request_id);
                return response;
            }
        }
    }

    let span = obs.tracer().start("web.request");
    let trace_id = span.context().map(|c| c.trace_id);
    let mut response = route(platform, request);
    drop(permit);
    // A live span mirrors its duration (exemplar included) into the
    // `web.request` histogram on finish; observe manually only when
    // tracing is off so the histogram never double-counts.
    span.finish();
    let elapsed_us = obs.metrics().now_micros().saturating_sub(started);
    if trace_id.is_none() {
        obs.metrics().observe("web.request", elapsed_us);
    }
    obs.access_log().record(lodify_obs::AccessEntry {
        request_id,
        target: request_target(request),
        status: response.status,
        duration_us: elapsed_us,
    });
    response.request_id = Some(request_id);
    response.trace_id = trace_id;
    response
}

/// Reconstructs `path?k=v&…` for the access log (parameters in sorted
/// order — [`Request`] keeps them in a map).
fn request_target(request: &Request) -> String {
    if request.query.is_empty() {
        return request.path.clone();
    }
    let params: Vec<String> = request
        .query
        .iter()
        .map(|(k, v)| format!("{}={}", url_encode(k), url_encode(v)))
        .collect();
    format!("{}?{}", request.path, params.join("&"))
}

// ---------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------

/// HTML-escapes text content.
pub fn escape_html(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn page(title: &str, body: &str, mobile: bool) -> String {
    let class = if mobile { "mobile" } else { "desktop" };
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>{}</title></head>\
         <body class=\"{class}\"><h1>{}</h1>{body}</body></html>",
        escape_html(title),
        escape_html(title),
    )
}

fn render_home(mobile: bool) -> String {
    // Fig. 2: the search box; the mobile variant notes the location API.
    let hint = if mobile {
        "<p class=\"geo\">using your location to filter results</p>"
    } else {
        ""
    };
    page(
        "TeamLife — semantic search",
        &format!(
            "{hint}<form action=\"/search\"><input name=\"q\" placeholder=\"search places, monuments, people\">\
             <button>search</button></form>"
        ),
        mobile,
    )
}

fn render_suggestions(q: &str, suggestions: &[crate::search::Suggestion], mobile: bool) -> String {
    // Fig. 3: candidate resources for the typed prefix.
    let mut items = String::new();
    for s in suggestions {
        items.push_str(&format!(
            "<li><a href=\"/resource?iri={}\">{}</a> <span class=\"iri\">{}</span></li>",
            url_encode(s.resource.as_str()),
            escape_html(&s.label),
            escape_html(s.resource.as_str()),
        ));
    }
    page(
        &format!("candidates for “{q}”"),
        &format!("<ul class=\"candidates\">{items}</ul>"),
        mobile,
    )
}

fn render_content_list(iri: &str, hits: &[crate::search::ContentHit], mobile: bool) -> String {
    // Fig. 4: thumbnails + links for the selected resource, About on top.
    let pid_of = |hit: &crate::search::ContentHit| -> Option<i64> {
        hit.content.as_str().rsplit('/').next()?.parse().ok()
    };
    let about = hits
        .first()
        .and_then(pid_of)
        .map(|pid| format!("<a class=\"about\" href=\"/about/{pid}\">About</a>"))
        .unwrap_or_default();
    let mut items = String::new();
    for hit in hits {
        let title = hit.title.as_deref().unwrap_or("(untitled)");
        let link = hit.link.as_deref().unwrap_or("#");
        let detail = pid_of(hit)
            .map(|pid| format!("<a href=\"/picture/{pid}\">details</a>"))
            .unwrap_or_default();
        items.push_str(&format!(
            "<li><img src=\"{}\" alt=\"\"> {} {detail}</li>",
            escape_html(link),
            escape_html(title),
        ));
    }
    page(
        &format!("content for {iri}"),
        &format!("{about}<ul class=\"content\">{items}</ul>"),
        mobile,
    )
}

fn render_album(monument: &str, links: &[String]) -> String {
    let mut items = String::new();
    for link in links {
        items.push_str(&format!(
            "<li><img src=\"{}\" alt=\"\"></li>",
            escape_html(link)
        ));
    }
    page(
        &format!("virtual album — near {monument}"),
        &format!("<ul class=\"album\">{items}</ul>"),
        false,
    )
}

/// The §1.1 friendly-format tag rendering: context triple tags become
/// readable phrases, plain user tags stay as-is and are shown apart.
pub fn friendly_tag(tag: &lodify_tripletags::TripleTag) -> String {
    match (tag.namespace.as_str(), tag.predicate.as_str()) {
        ("address", "city") => format!("in {}", tag.value),
        ("address", "street") => format!("on {}", tag.value),
        ("address", "country") => tag.value.clone(),
        ("people", "fn") => format!("with {}", tag.value),
        ("people", "user") => format!("with @{}", tag.value),
        ("place", "is") => format!("a {} place", tag.value),
        ("place", "label") => format!("at “{}”", tag.value),
        ("cell", "cgi") => format!("cell {}", tag.value),
        ("calendar", "event") => format!("during “{}”", tag.value),
        ("geo", "lat") | ("geo", "long") => format!("{}: {}", tag.predicate, tag.value),
        ("geonames", "id") => format!("geonames #{}", tag.value),
        _ => tag.to_wire(),
    }
}

fn render_picture(platform: &Platform, pid: i64) -> Option<String> {
    let pictures = platform
        .db()
        .table(lodify_relational::coppermine::PICTURES)
        .ok()?;
    let row = pictures.get(pid)?;
    let title = row[3].as_text().unwrap_or_default();

    let mut user_tags = String::new();
    let mut context_tags = String::new();
    for tag in platform.tags().tags_of(pid) {
        match tag {
            Tag::Plain(word) => {
                user_tags.push_str(&format!(
                    "<span class=\"tag\">{}</span> ",
                    escape_html(word)
                ));
            }
            Tag::Triple(tt) => {
                context_tags.push_str(&format!(
                    "<span class=\"ctx\">{}</span> ",
                    escape_html(&friendly_tag(tt))
                ));
            }
        }
    }
    let annotations = platform
        .annotations()
        .get(&pid)
        .map(|a| {
            a.resources()
                .iter()
                .map(|r| {
                    format!(
                        "<li><a href=\"/resource?iri={}\">{}</a></li>",
                        url_encode(r.as_str()),
                        escape_html(r.local_name()),
                    )
                })
                .collect::<String>()
        })
        .unwrap_or_default();

    Some(page(
        title,
        &format!(
            "<img src=\"http://beta.teamlife.it/media/{pid}.jpg\" alt=\"\">\
             <p class=\"user-tags\">{user_tags}</p>\
             <p class=\"context-tags\">{context_tags}</p>\
             <a href=\"/about/{pid}\">About</a>\
             <ul class=\"annotations\">{annotations}</ul>"
        ),
        false,
    ))
}

/// The `/subscriptions` page: the registered standing albums and, per
/// SparqlPuSH subscriber, outbox head vs shipped vs applied cursor
/// plus breaker state — enough to see at a glance who is lagging and
/// why. Plain text, like `/ops`.
fn render_subscriptions(platform: &Platform) -> String {
    use std::fmt::Write as _;
    let live = platform.live();
    let engine = live.engine();
    let mut out = String::new();
    let _ = writeln!(out, "live albums ({}):", engine.len());
    for id in 0..engine.len() {
        let spec = engine.spec(id);
        let mut shape = format!("\"{}\"@{}", spec.monument_label, spec.label_lang);
        if let Some(friend) = &spec.friend_of {
            let _ = write!(shape, " friends-of={friend}");
        }
        if spec.order_by_rating {
            shape.push_str(" rated");
        }
        if let Some(n) = spec.limit {
            let _ = write!(shape, " limit={n}");
        }
        let _ = writeln!(
            out,
            "  album {id} {shape} members={}",
            engine.links(id).len()
        );
    }
    let hub = live.hub();
    let _ = writeln!(out, "subscribers ({}):", hub.len());
    for (callback, album, head, shipped, cursor, breaker) in hub.rows() {
        let cursor = cursor.map_or_else(|| "down".to_string(), |c| c.to_string());
        let _ = writeln!(
            out,
            "  {callback} album={album} head={head} shipped={shipped} \
             cursor={cursor} breaker={breaker}"
        );
    }
    let ops = live.ops();
    let _ = writeln!(
        out,
        "push: delivered={} parked={} redelivered={} lag={} dlq={}",
        ops.push.delivered, ops.push.parked, ops.push.redelivered, ops.push.lag, ops.push.dlq_depth
    );
    out
}

/// The `/ops` page: the resilience snapshot, recent traces rendered as
/// indented span trees, slow-query aggregates and the access-log tail.
/// Plain text on purpose — it is read over `curl` during incidents.
fn render_ops(platform: &Platform) -> String {
    use std::fmt::Write as _;
    let obs = platform.obs();
    let snapshot = platform.ops_snapshot();
    let mut out = String::new();
    let status = if snapshot.is_degraded() {
        "DEGRADED"
    } else {
        "healthy"
    };
    let _ = writeln!(out, "status: {status}");
    let store = platform.store();
    let _ = writeln!(
        out,
        "store: {} triples @ epoch {} ({} shards)",
        store.len(),
        store.epoch(),
        store.shard_count()
    );
    let _ = writeln!(out, "{snapshot}");

    let traces = obs.tracer().recent_traces(8);
    let _ = writeln!(out, "\nrecent traces ({}):", traces.len());
    for trace in &traces {
        // Spans arrive in completion order (children before parents);
        // indent by chasing parent links, and show start order.
        let parents: BTreeMap<u64, Option<u64>> =
            trace.iter().map(|s| (s.span_id, s.parent_id)).collect();
        let _ = writeln!(
            out,
            "  trace {:016x}",
            trace.first().map_or(0, |s| s.trace_id)
        );
        let mut ordered: Vec<_> = trace.iter().collect();
        ordered.sort_by_key(|s| (s.start_us, s.span_id));
        for span in ordered {
            let mut d = 0usize;
            let mut cursor = span.parent_id;
            while let Some(p) = cursor {
                d += 1;
                cursor = parents.get(&p).copied().flatten();
            }
            let _ = writeln!(
                out,
                "  {}{} {}us",
                "  ".repeat(d + 1),
                span.name,
                span.duration_us()
            );
        }
    }

    // The flight recorder: the cross-node trace store's summary of
    // the most recent assembled traces, the first thing to read from
    // a crash dump (the full tree of any listed id is `/trace/<id>`).
    out.push('\n');
    out.push_str(&obs.traces().flight_summary(8));

    let slow = obs.slow_queries().entries();
    let _ = writeln!(
        out,
        "\nslow queries (threshold {}us, {} fingerprints, {} evicted):",
        obs.slow_queries().threshold_us(),
        slow.len(),
        obs.slow_queries().evictions()
    );
    for (fingerprint, entry) in slow.iter().take(16) {
        let plan = match (&entry.plan_cache, entry.plan_id) {
            (Some(outcome), Some(id)) => format!(" plan_cache={outcome} plan_id={id:016x}"),
            (Some(outcome), None) => format!(" plan_cache={outcome}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  count={} mean={}us max={}us{}  {}",
            entry.count,
            entry.mean_us(),
            entry.max_us,
            plan,
            fingerprint
        );
        for line in entry.breakdown.iter().take(8) {
            let _ = writeln!(out, "    {line}");
        }
    }

    let accesses = obs.access_log().recent(16);
    let _ = writeln!(out, "\nrecent requests ({}):", accesses.len());
    for entry in &accesses {
        let _ = writeln!(
            out,
            "  #{} {} {} {}us",
            entry.request_id, entry.status, entry.target, entry.duration_us
        );
    }
    out
}

fn render_mashup(pid: i64, mashup: &crate::mashup::MashupResult) -> String {
    let mut body = String::new();
    if let Some((city, abstract_)) = &mashup.city {
        body.push_str(&format!(
            "<section class=\"city\"><h2>{}</h2><p>{}</p></section>",
            escape_html(city),
            escape_html(abstract_)
        ));
    }
    body.push_str("<section class=\"restaurants\"><h2>Restaurants</h2><ul>");
    for r in &mashup.restaurants {
        body.push_str(&format!(
            "<li>{}{}</li>",
            escape_html(&r.label),
            r.detail
                .as_deref()
                .map(|d| format!(" — <a href=\"{}\">{}</a>", escape_html(d), escape_html(d)))
                .unwrap_or_default()
        ));
    }
    body.push_str("</ul></section><section class=\"tourism\"><h2>Attractions</h2><ul>");
    for a in &mashup.attractions {
        body.push_str(&format!("<li>{}</li>", escape_html(&a.label)));
    }
    body.push_str("</ul></section><section class=\"ugc\"><h2>Nearby content</h2><ul>");
    for link in &mashup.related_content {
        body.push_str(&format!(
            "<li><img src=\"{}\" alt=\"\"></li>",
            escape_html(link)
        ));
    }
    body.push_str("</ul></section>");
    page(&format!("About picture {pid}"), &body, false)
}

// ---------------------------------------------------------------------
// the HTTP server
// ---------------------------------------------------------------------

/// HTTP server tuning. The paper-era seed hardcoded a 2-second read
/// timeout deep inside the connection handler; both deadlines are now
/// configurable (and a write timeout exists at all), with timeouts
/// surfacing as typed [`PlatformError::Timeout`] values.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a connection may take to deliver its request.
    pub read_timeout: std::time::Duration,
    /// How long writing the response may take (slow client).
    pub write_timeout: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: std::time::Duration::from_secs(2),
            write_timeout: std::time::Duration::from_secs(2),
        }
    }
}

/// A running server handle.
pub struct WebServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    telemetry: lodify_resilience::Telemetry,
}

impl WebServer {
    /// Serves `platform` on `127.0.0.1:port` (0 = ephemeral) in a
    /// background thread with default timeouts. The platform is shared
    /// read-only.
    pub fn start(platform: Arc<Platform>, port: u16) -> Result<WebServer, PlatformError> {
        WebServer::start_with_config(platform, port, ServerConfig::default())
    }

    /// Serves `platform` with explicit timeout configuration.
    pub fn start_with_config(
        platform: Arc<Platform>,
        port: u16,
        config: ServerConfig,
    ) -> Result<WebServer, PlatformError> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| PlatformError::Invalid(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PlatformError::Invalid(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| PlatformError::Invalid(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let telemetry = lodify_resilience::Telemetry::new();
        let server_telemetry = telemetry.clone();
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        server_telemetry.incr("web.connections");
                        match handle_connection(&platform, stream, &config) {
                            Ok(()) => server_telemetry.incr("web.responses"),
                            Err(PlatformError::Timeout(_)) => server_telemetry.incr("web.timeouts"),
                            Err(_) => server_telemetry.incr("web.errors"),
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(WebServer {
            addr,
            stop,
            handle: Some(handle),
            telemetry,
        })
    }

    /// Request/timeout counters: `web.connections`, `web.responses`,
    /// `web.timeouts`, `web.errors`.
    pub fn telemetry(&self) -> &lodify_resilience::Telemetry {
        &self.telemetry
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the server and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WebServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Classifies an I/O error: deadline expiries become the typed
/// [`PlatformError::Timeout`], everything else stays generic.
fn io_error(context: &str, e: std::io::Error) -> PlatformError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            PlatformError::Timeout(format!("{context} after deadline: {e}"))
        }
        _ => PlatformError::Invalid(format!("{context}: {e}")),
    }
}

fn handle_connection(
    platform: &Platform,
    mut stream: TcpStream,
    config: &ServerConfig,
) -> Result<(), PlatformError> {
    stream
        .set_nonblocking(false)
        .map_err(|e| io_error("configuring socket", e))?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(|e| io_error("setting read timeout", e))?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(|e| io_error("setting write timeout", e))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| io_error("cloning stream", e))?,
    );
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| io_error("reading request line", e))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| io_error("reading headers", e))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    let response = match Request::parse(request_line.trim_end(), &headers) {
        Some(request) => handle_request(platform, &request),
        None => Response::bad_request("unsupported request"),
    };
    response
        .write_to(&mut stream)
        .map_err(|e| io_error("writing response", e))
}

/// Percent-decodes a URL component (`+` is a space).
pub fn url_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                if i + 2 < bytes.len() {
                    if let Ok(byte) = u8::from_str_radix(
                        std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or(""),
                        16,
                    ) {
                        out.push(byte);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component.
pub fn url_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_relational::WorkloadConfig;

    fn platform() -> Platform {
        Platform::bootstrap(WorkloadConfig::small(31)).unwrap()
    }

    fn get(platform: &Platform, target: &str, mobile: bool) -> Response {
        let headers = if mobile {
            vec![(
                "User-Agent".to_string(),
                "Mozilla/5.0 (iPhone) Mobile".to_string(),
            )]
        } else {
            vec![(
                "User-Agent".to_string(),
                "Mozilla/5.0 (X11; Linux)".to_string(),
            )]
        };
        let request = Request::parse(&format!("GET {target} HTTP/1.1"), &headers).unwrap();
        route(platform, &request)
    }

    #[test]
    fn request_parsing() {
        let r = Request::parse("GET /search?q=Tur&limit=5 HTTP/1.1", &[]).unwrap();
        assert_eq!(r.path, "/search");
        assert_eq!(r.query.get("q").map(String::as_str), Some("Tur"));
        assert_eq!(r.query.get("limit").map(String::as_str), Some("5"));
        assert!(!r.mobile);
        assert!(r.tenant.is_none());
        // Tenant: X-Tenant header wins over the query parameter.
        let r = Request::parse(
            "GET /?tenant=query HTTP/1.1",
            &[("X-Tenant".to_string(), "header".to_string())],
        )
        .unwrap();
        assert_eq!(r.tenant.as_deref(), Some("header"));
        let r = Request::parse("GET /?tenant=query HTTP/1.1", &[]).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("query"));
        assert!(Request::parse("POST / HTTP/1.1", &[]).is_none());
        // plus + percent decoding
        let r = Request::parse("GET /search?q=Mole+Antonelliana%21 HTTP/1.1", &[]).unwrap();
        assert_eq!(
            r.query.get("q").map(String::as_str),
            Some("Mole Antonelliana!")
        );
    }

    #[test]
    fn mobile_detection_switches_rendering() {
        let p = platform();
        let desktop = get(&p, "/", false);
        let mobile = get(&p, "/", true);
        assert!(desktop.body.contains("class=\"desktop\""));
        assert!(mobile.body.contains("class=\"mobile\""));
        assert!(mobile.body.contains("using your location"));
    }

    #[test]
    fn search_route_lists_candidates() {
        let p = platform();
        let resp = get(&p, "/search?q=Turi", false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Turin"), "{}", resp.body);
        assert!(resp.body.contains("/resource?iri="));
        // Missing q → 400.
        assert_eq!(get(&p, "/search", false).status, 400);
    }

    #[test]
    fn resource_route_lists_content_with_about_button() {
        let p = platform();
        let iri = url_encode("http://dbpedia.org/resource/Mole_Antonelliana");
        let resp = get(&p, &format!("/resource?iri={iri}"), false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("class=\"about\"") || resp.body.contains("class=\"content\""));
    }

    #[test]
    fn picture_route_separates_tag_kinds() {
        let p = platform();
        let pid = p.picture_ids()[0];
        let resp = get(&p, &format!("/picture/{pid}"), false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("user-tags"));
        assert!(resp.body.contains("context-tags"));
        assert_eq!(get(&p, "/picture/999999", false).status, 404);
        assert_eq!(get(&p, "/picture/abc", false).status, 400);
    }

    #[test]
    fn album_route_runs_q1() {
        let p = platform();
        let resp = get(
            &p,
            "/album?monument=Mole+Antonelliana&lang=it&radius=0.3",
            false,
        );
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("virtual album"));
    }

    #[test]
    fn album_route_serves_repeats_from_the_cache() {
        let p = platform();
        let target = "/album?monument=Mole+Antonelliana&lang=it&radius=0.3";
        let cold = get(&p, target, false);
        let warm = get(&p, target, false);
        assert_eq!(cold.body, warm.body, "cached view must render identically");
        let stats = p.album_cache_stats();
        assert_eq!(stats.misses, 1, "first request solves the album");
        assert_eq!(stats.hits, 1, "second request is a cache hit");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn metrics_route_renders_the_golden_exposition() {
        use crate::platform::Upload;
        use lodify_context::Gazetteer;

        let mut p = platform();
        let gaz = Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap();
        p.upload(Upload {
            user_id: 1,
            title: "Tramonto alla Mole".into(),
            tags: vec!["torino".into()],
            ts: 1_320_500_000,
            gps: Some(mole.point(gaz)),
            poi: None,
        })
        .unwrap();
        p.query("SELECT ?s WHERE { ?s a sioct:MicroblogPost . } LIMIT 3")
            .unwrap();
        let _ = get(
            &p,
            "/album?monument=Mole+Antonelliana&lang=it&radius=0.3",
            false,
        );

        let resp = get(&p, "/metrics", false);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, lodify_obs::prometheus::CONTENT_TYPE);
        // Golden structure: one TYPE line per family, histogram series
        // with cumulative buckets, +Inf, sum and count.
        for line in [
            "# TYPE lodify_upload_accepted_total counter",
            "# TYPE lodify_sparql_queries_total counter",
            "# TYPE lodify_store_triples gauge",
            "# TYPE lodify_upload_seconds histogram",
            "# TYPE lodify_sparql_seconds histogram",
            "# TYPE lodify_album_view_seconds histogram",
            "lodify_upload_accepted_total 1",
            "lodify_upload_seconds_bucket{le=\"+Inf\"} 1",
            "lodify_upload_seconds_count 1",
            "lodify_sparql_parse_seconds_count",
            "lodify_sparql_eval_seconds_count",
            "lodify_upload_relational_seconds_count 1",
            "lodify_upload_semanticize_seconds_count 1",
            "lodify_upload_annotate_seconds_count 1",
            "lodify_album_cache_misses_total 1",
        ] {
            assert!(
                resp.body.contains(line),
                "missing {line:?} in:\n{}",
                resp.body
            );
        }
    }

    #[test]
    fn ops_route_reports_a_tripped_breaker() {
        use lodify_lod::annotator::{Annotator, AnnotatorConfig};
        use lodify_lod::broker::BrokerResilienceConfig;
        use lodify_lod::resolvers::{DbpediaResolver, FaultInjectedResolver, GeonamesResolver};
        use lodify_lod::{SemanticBroker, SemanticFilter};
        use lodify_resilience::{FaultPlan, VirtualClock};

        let mut p = platform();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("resolver:dbpedia", 0, u64::MAX)
            .build(clock.clone());
        let broker = SemanticBroker::new(vec![
            Box::new(FaultInjectedResolver::new(DbpediaResolver, plan)),
            Box::new(GeonamesResolver),
        ])
        .with_resilience(clock, BrokerResilienceConfig::default());
        // Trip the dbpedia breaker before installing the annotator.
        let scratch = lodify_store::Store::new();
        for _ in 0..4 {
            broker.resolve(&scratch, &["torino".to_string()], "torino", Some("en"));
        }
        p.set_annotator(Annotator::new(
            broker,
            SemanticFilter::standard(),
            AnnotatorConfig::default(),
        ));

        let resp = get(&p, "/ops", false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("status: DEGRADED"), "{}", resp.body);
        assert!(resp.body.contains("breaker=OPEN"), "{}", resp.body);
        assert!(resp.body.contains("slow queries"), "{}", resp.body);
        assert!(resp.body.contains("recent requests"), "{}", resp.body);
    }

    #[test]
    fn admission_rejects_and_ops_reports_shedding() {
        use crate::admission::AdmissionConfig;

        let mut p = platform();
        p.enable_admission(AdmissionConfig {
            tenant_rate_per_sec: 0.0,
            tenant_burst: 1.0,
            ..AdmissionConfig::default()
        });

        let send = |p: &Platform, target: &str, tenant: &str| {
            let headers = vec![("X-Tenant".to_string(), tenant.to_string())];
            let request = Request::parse(&format!("GET {target} HTTP/1.1"), &headers).unwrap();
            handle_request(p, &request)
        };

        // One token per tenant, no refill: second request is 429.
        assert_eq!(send(&p, "/", "alice").status, 200);
        let rejected = send(&p, "/", "alice");
        assert_eq!(rejected.status, 429);
        assert!(rejected.body.contains("alice"), "{}", rejected.body);
        assert!(rejected.request_id.is_some(), "sheds are logged");
        // Other tenants have their own bucket.
        assert_eq!(send(&p, "/", "bob").status, 200);
        // Critical endpoints bypass the quota entirely.
        assert_eq!(send(&p, "/ops", "alice").status, 200);

        let ops = send(&p, "/ops", "carol");
        assert!(ops.body.contains("admission"), "{}", ops.body);
        assert!(ops.body.contains("shed_quota=1"), "{}", ops.body);

        // Overload shedding: hard depth 0 sheds every non-critical
        // class with 503 and degrades the verdict.
        p.enable_admission(AdmissionConfig {
            shed_depth: 0,
            hard_depth: 0,
            ..AdmissionConfig::default()
        });
        assert_eq!(send(&p, "/", "alice").status, 503);
        assert_eq!(send(&p, "/album?monument=Mole", "alice").status, 503);
        let ops = send(&p, "/ops", "alice");
        assert_eq!(ops.status, 200, "operators can always see why");
        assert!(ops.body.contains("status: DEGRADED"), "{}", ops.body);
        assert!(ops.body.contains("shedding=true"), "{}", ops.body);
    }

    #[test]
    fn ops_route_reports_plan_cache_counters() {
        let p = platform();
        let query = "SELECT ?s WHERE { ?s <http://ex/p> ?o . }";
        p.query(query).unwrap();
        p.query(query).unwrap();
        let resp = get(&p, "/ops", false);
        assert!(resp.body.contains("plan cache"), "{}", resp.body);
        assert!(
            resp.body.contains("hits=1 misses=1"),
            "second run hits: {}",
            resp.body
        );
        let metrics = get(&p, "/metrics", false);
        assert!(
            metrics.body.contains("lodify_sparql_plan_entries 1"),
            "{}",
            metrics.body
        );
    }

    #[test]
    fn ops_route_reports_replication_outbox_lag() {
        use crate::Upload;
        use lodify_durability::MemStorage;

        let mut p = platform();
        p.enable_emissions(
            crate::federation::Acct::parse("acct:oscar@node1.example").unwrap(),
            Box::new(MemStorage::new()),
        )
        .unwrap();
        p.upload(Upload {
            user_id: 1,
            title: "Tramonto alla Mole".into(),
            tags: vec!["torino".into()],
            ts: 1_320_500_000,
            gps: None,
            poi: None,
        })
        .unwrap();

        // The commit journaled one emission; nothing drained it yet.
        let resp = get(&p, "/ops", false);
        assert_eq!(resp.status, 200);
        assert!(
            resp.body.contains("replication lag=1 dlq=0"),
            "{}",
            resp.body
        );
        let metrics = get(&p, "/metrics", false);
        assert!(
            metrics.body.contains("lodify_replication_outbox_lag 1"),
            "{}",
            metrics.body
        );

        // Draining hands the committed UGC delta to a replication
        // agent and clears the lag.
        let emissions = p.drain_emissions();
        assert_eq!(emissions.len(), 1);
        assert!(!emissions[0].additions.is_empty());
        let resp = get(&p, "/ops", false);
        assert!(resp.body.contains("replication lag=0"), "{}", resp.body);
    }

    #[test]
    fn subscriptions_route_reports_live_albums_and_push_state() {
        use crate::Upload;

        let mut p = platform();
        let spec = crate::albums::AlbumSpec::near_monument("Mole Antonelliana", "it", 1.0);
        let album = p.live_register(&spec);
        p.live_subscribe("http://frame.local/push", album);
        p.upload(Upload {
            user_id: 1,
            title: "Tramonto alla Mole".into(),
            tags: vec!["torino".into()],
            ts: 1_320_500_000,
            gps: None,
            poi: None,
        })
        .unwrap();

        let resp = get(&p, "/subscriptions", false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("live albums (1):"), "{}", resp.body);
        assert!(
            resp.body
                .contains("album 0 \"Mole Antonelliana\"@it members="),
            "{}",
            resp.body
        );
        assert!(
            resp.body.contains("http://frame.local/push album=0"),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("breaker=closed"), "{}", resp.body);
        assert!(
            resp.body.contains("head=1 shipped=1 cursor=1"),
            "snapshot shipped on subscribe: {}",
            resp.body
        );

        // The snapshot on /ops now carries the live section too.
        let ops = get(&p, "/ops", false);
        assert!(ops.body.contains("live        albums=1"), "{}", ops.body);
        let metrics = get(&p, "/metrics", false);
        assert!(
            metrics.body.contains("lodify_live_albums 1"),
            "{}",
            metrics.body
        );
    }

    #[test]
    fn request_ids_propagate_into_the_access_log() {
        let p = platform();
        let request = Request::parse("GET /search?q=Turi HTTP/1.1", &[]).unwrap();
        let first = handle_request(&p, &request);
        let second = handle_request(&p, &request);
        let (a, b) = (first.request_id.unwrap(), second.request_id.unwrap());
        assert_ne!(a, b, "each request gets a fresh id");

        let recent = p.obs().access_log().recent(8);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].request_id, a);
        assert_eq!(recent[1].request_id, b);
        assert_eq!(recent[0].target, "/search?q=Turi");
        assert_eq!(recent[0].status, 200);
        // The handler latency feeds the web.request histogram too.
        let histogram = p.obs().metrics().histogram("web.request").unwrap();
        assert_eq!(histogram.count(), 2);
        // And the ids come back over the wire via X-Request-Id.
        let bad = Response::bad_request("x");
        assert_eq!(bad.request_id, None, "pure constructors carry no id");
    }

    #[test]
    fn unknown_route_404s() {
        let p = platform();
        assert_eq!(get(&p, "/nope", false).status, 404);
    }

    #[test]
    fn friendly_tags_read_like_phrases() {
        let tt = |s: &str| lodify_tripletags::TripleTag::parse(s).unwrap();
        assert_eq!(friendly_tag(&tt("address:city=Turin")), "in Turin");
        assert_eq!(
            friendly_tag(&tt("people:fn=Walter+Goix")),
            "with Walter Goix"
        );
        assert_eq!(friendly_tag(&tt("place:is=crowded")), "a crowded place");
        assert_eq!(
            friendly_tag(&tt("cell:cgi=460-0-9522-3661")),
            "cell 460-0-9522-3661"
        );
        // Unknown namespaces fall back to wire form.
        assert_eq!(friendly_tag(&tt("custom:x=1")), "custom:x=1");
    }

    #[test]
    fn url_encode_decode_round_trip() {
        for s in ["plain", "with space", "città+%&=?", "🙂"] {
            assert_eq!(url_decode(&url_encode(s)), s);
        }
    }

    #[test]
    fn html_escaping() {
        assert_eq!(
            escape_html("<b>&\"x\"</b>"),
            "&lt;b&gt;&amp;&quot;x&quot;&lt;/b&gt;"
        );
    }

    #[test]
    fn live_server_round_trip() {
        use std::io::{Read, Write};
        let p = Arc::new(platform());
        let server = WebServer::start(p, 0).unwrap();
        let addr = server.addr();

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /search?q=Turin HTTP/1.1\r\nHost: localhost\r\nUser-Agent: test\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("X-Request-Id: "), "{response}");
        assert!(response.contains("Turin"));
        server.stop();
    }

    #[test]
    fn silent_clients_hit_the_configured_read_timeout() {
        let p = Arc::new(platform());
        let server = WebServer::start_with_config(
            p,
            0,
            ServerConfig {
                read_timeout: std::time::Duration::from_millis(40),
                write_timeout: std::time::Duration::from_millis(40),
            },
        )
        .unwrap();
        // Connect and send nothing: the read deadline must fire and be
        // recorded as a typed timeout, not a generic error.
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        for _ in 0..200 {
            if server.telemetry().counter("web.timeouts") >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.telemetry().counter("web.timeouts"), 1);
        assert_eq!(server.telemetry().counter("web.errors"), 0);
        drop(stream);
        server.stop();
    }

    #[test]
    fn io_errors_classify_timeouts() {
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert!(matches!(
            io_error("read", timeout),
            PlatformError::Timeout(_)
        ));
        let would_block = std::io::Error::new(std::io::ErrorKind::WouldBlock, "w");
        assert!(matches!(
            io_error("read", would_block),
            PlatformError::Timeout(_)
        ));
        let other = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "b");
        assert!(matches!(
            io_error("write", other),
            PlatformError::Invalid(_)
        ));
    }
}
