//! Deferred upload queue.
//!
//! "To overcome problems of limited connectivity and battery
//! management, the client supports a deferred content uploading
//! procedure. Pictures, videos and related metadata are associated to
//! their creation timestamp." (§1.1)
//!
//! The queue holds uploads while the (simulated) device is offline and
//! flushes them in capture order when connectivity returns — the
//! capture timestamp inside [`Upload`] is what keeps context tagging
//! correct even for late uploads. Uploads that fail during a flush are
//! **re-enqueued** (still in capture-timestamp order) and retried on
//! the next flush, up to a per-item attempt cap; items past the cap
//! are surfaced in the [`FlushReport`] instead of silently dropped.

use crate::error::PlatformError;
use crate::ingest::IngestPool;
use crate::platform::{Platform, Upload, UploadReceipt};

/// One queued upload plus how often it has been tried.
#[derive(Debug, Clone)]
struct PendingUpload {
    upload: Upload,
    attempts: u32,
}

/// An upload the queue gave up on (attempt cap reached).
#[derive(Debug)]
pub struct AbandonedUpload {
    /// The upload itself — the caller still owns the content.
    pub upload: Upload,
    /// Upload attempts made, equal to the queue's cap.
    pub attempts: u32,
    /// The final error.
    pub error: PlatformError,
}

/// Outcome of one [`UploadQueue::flush`].
#[derive(Debug, Default)]
pub struct FlushReport {
    /// Receipts for uploads that succeeded, in capture order.
    pub receipts: Vec<UploadReceipt>,
    /// Uploads that failed but were re-enqueued for the next flush
    /// (capture timestamp and latest error).
    pub retried: Vec<(i64, PlatformError)>,
    /// Uploads that hit the attempt cap and left the queue.
    pub abandoned: Vec<AbandonedUpload>,
    /// Error from the batch's end-of-flush durability barrier, if the
    /// WAL flush failed (the uploads are applied in memory; durability
    /// is degraded until the next successful flush).
    pub flush_error: Option<PlatformError>,
}

impl FlushReport {
    /// Whether every queued upload went through and the durability
    /// barrier held.
    pub fn is_clean(&self) -> bool {
        self.retried.is_empty() && self.abandoned.is_empty() && self.flush_error.is_none()
    }
}

/// Client-side deferred upload queue. Flushes go through an
/// [`IngestPool`], so a backlog accumulated offline is annotated
/// concurrently while committing in capture order.
#[derive(Debug)]
pub struct UploadQueue {
    online: bool,
    pending: Vec<PendingUpload>,
    max_attempts: u32,
    pool: IngestPool,
}

impl Default for UploadQueue {
    fn default() -> Self {
        UploadQueue::new()
    }
}

impl UploadQueue {
    /// Default per-item attempt cap.
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

    /// A new queue, offline, with the default attempt cap.
    pub fn new() -> UploadQueue {
        UploadQueue::with_max_attempts(Self::DEFAULT_MAX_ATTEMPTS)
    }

    /// A queue that abandons an upload after `max_attempts` failures.
    pub fn with_max_attempts(max_attempts: u32) -> UploadQueue {
        assert!(max_attempts >= 1);
        UploadQueue {
            online: false,
            pending: Vec::new(),
            max_attempts,
            pool: IngestPool::default(),
        }
    }

    /// Replaces the ingest pool used by [`UploadQueue::flush`].
    pub fn set_pool(&mut self, pool: IngestPool) {
        self.pool = pool;
    }

    /// Sets connectivity. Going online does not flush by itself — the
    /// client calls [`UploadQueue::flush`].
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Whether the client currently has connectivity.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Captures content: uploads immediately when online, queues
    /// otherwise. Returns the receipt for immediate uploads. An
    /// immediate upload that fails is queued for the next flush rather
    /// than lost (the error is still returned).
    pub fn capture(
        &mut self,
        platform: &mut Platform,
        upload: Upload,
    ) -> Result<Option<UploadReceipt>, PlatformError> {
        if self.online {
            match platform.upload(upload.clone()) {
                Ok(receipt) => Ok(Some(receipt)),
                Err(e) => {
                    self.pending.push(PendingUpload {
                        upload,
                        attempts: 1,
                    });
                    Err(e)
                }
            }
        } else {
            self.pending.push(PendingUpload {
                upload,
                attempts: 0,
            });
            Ok(None)
        }
    }

    /// Number of queued uploads.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The per-item attempt cap.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Flushes the queue in capture-timestamp order through the
    /// ingest pool: items stage and commit sequentially in capture
    /// order (so results are identical to uploading one at a time)
    /// while the annotation stage fans out across workers. Items that
    /// fail individually don't block the rest: they are re-enqueued
    /// (keeping timestamp order for the next flush) until the attempt
    /// cap moves them into [`FlushReport::abandoned`].
    pub fn flush(&mut self, platform: &mut Platform) -> FlushReport {
        let mut report = FlushReport::default();
        if !self.online || self.pending.is_empty() {
            return report;
        }
        let mut queued = std::mem::take(&mut self.pending);
        queued.sort_by_key(|p| p.upload.ts);
        let uploads: Vec<Upload> = queued.iter().map(|p| p.upload.clone()).collect();
        let ingest = self.pool.ingest(platform, uploads);
        report.receipts = ingest.receipts;
        report.flush_error = ingest.flush_error;
        // Failure indices point into `uploads` = `queued`, already in
        // timestamp order, so `retried` stays in capture order too.
        for (i, e) in ingest.failures {
            let mut item = queued[i].clone();
            item.attempts += 1;
            if item.attempts >= self.max_attempts {
                report.abandoned.push(AbandonedUpload {
                    upload: item.upload,
                    attempts: item.attempts,
                    error: e,
                });
            } else {
                report.retried.push((item.upload.ts, e));
                self.pending.push(item);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_relational::WorkloadConfig;

    fn upload(ts: i64, title: &str) -> Upload {
        Upload {
            user_id: 1,
            title: title.to_string(),
            tags: vec![],
            ts,
            gps: None,
            poi: None,
        }
    }

    fn bad_upload(ts: i64, title: &str) -> Upload {
        Upload {
            user_id: 9999, // missing user → upload fails
            ..upload(ts, title)
        }
    }

    #[test]
    fn offline_captures_queue_then_flush_in_timestamp_order() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(1)).unwrap();
        let mut queue = UploadQueue::new();
        assert!(!queue.is_online());
        queue.capture(&mut platform, upload(300, "third")).unwrap();
        queue.capture(&mut platform, upload(100, "first")).unwrap();
        queue.capture(&mut platform, upload(200, "second")).unwrap();
        assert_eq!(queue.pending(), 3);

        // Flush while offline is a no-op.
        let report = queue.flush(&mut platform);
        assert!(report.receipts.is_empty() && report.is_clean());
        assert_eq!(queue.pending(), 3);

        queue.set_online(true);
        let report = queue.flush(&mut platform);
        assert_eq!(report.receipts.len(), 3);
        assert!(report.is_clean());
        assert_eq!(queue.pending(), 0);
        // Capture order preserved: pids ascend with timestamps.
        let titles: Vec<String> = report
            .receipts
            .iter()
            .map(|r| {
                let q = format!(
                    "SELECT ?t WHERE {{ <{}> rdfs:label ?t . }}",
                    r.resource.as_str()
                );
                platform.query(&q).unwrap().column("t")[0]
                    .lexical()
                    .to_string()
            })
            .collect();
        assert_eq!(titles, vec!["first", "second", "third"]);
    }

    #[test]
    fn online_captures_upload_immediately() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(2)).unwrap();
        let mut queue = UploadQueue::new();
        queue.set_online(true);
        let receipt = queue
            .capture(&mut platform, upload(1, "instant"))
            .unwrap()
            .expect("immediate receipt");
        assert!(receipt.pid > 0);
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn failed_items_are_requeued_not_dropped() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(3)).unwrap();
        let mut queue = UploadQueue::new();
        queue.capture(&mut platform, upload(1, "good")).unwrap();
        queue.capture(&mut platform, bad_upload(2, "bad")).unwrap();
        queue.set_online(true);

        let report = queue.flush(&mut platform);
        assert_eq!(report.receipts.len(), 1);
        assert_eq!(report.retried.len(), 1);
        assert!(matches!(report.retried[0].1, PlatformError::NotFound(_)));
        assert!(report.abandoned.is_empty());
        // The failed item is still queued for the next flush.
        assert_eq!(queue.pending(), 1);
    }

    #[test]
    fn attempt_cap_abandons_with_full_context() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(4)).unwrap();
        let mut queue = UploadQueue::with_max_attempts(2);
        queue
            .capture(&mut platform, bad_upload(7, "doomed"))
            .unwrap();
        queue.set_online(true);

        let report = queue.flush(&mut platform);
        assert_eq!(report.retried.len(), 1, "first failure re-enqueues");
        assert_eq!(queue.pending(), 1);

        let report = queue.flush(&mut platform);
        assert_eq!(report.abandoned.len(), 1, "cap reached");
        assert_eq!(report.abandoned[0].attempts, 2);
        assert_eq!(report.abandoned[0].upload.title, "doomed");
        assert!(matches!(
            report.abandoned[0].error,
            PlatformError::NotFound(_)
        ));
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn requeued_items_keep_timestamp_order_across_flushes() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(5)).unwrap();
        let mut queue = UploadQueue::new();
        queue
            .capture(&mut platform, bad_upload(200, "late-bad"))
            .unwrap();
        queue
            .capture(&mut platform, bad_upload(100, "early-bad"))
            .unwrap();
        queue.set_online(true);

        let report = queue.flush(&mut platform);
        assert_eq!(report.retried.len(), 2);
        // Retried list reflects capture order: 100 before 200.
        assert_eq!(report.retried[0].0, 100);
        assert_eq!(report.retried[1].0, 200);

        // Mix in a fresh item; next flush still goes by timestamp.
        queue.set_online(false);
        queue
            .capture(&mut platform, upload(150, "mid-good"))
            .unwrap();
        queue.set_online(true);
        let report = queue.flush(&mut platform);
        assert_eq!(report.receipts.len(), 1);
        assert_eq!(report.retried[0].0, 100);
        assert_eq!(report.retried[1].0, 200);
    }
}
