//! Deferred upload queue.
//!
//! "To overcome problems of limited connectivity and battery
//! management, the client supports a deferred content uploading
//! procedure. Pictures, videos and related metadata are associated to
//! their creation timestamp." (§1.1)
//!
//! The queue holds uploads while the (simulated) device is offline and
//! flushes them in capture order when connectivity returns — the
//! capture timestamp inside [`Upload`] is what keeps context tagging
//! correct even for late uploads.

use crate::error::PlatformError;
use crate::platform::{Platform, Upload, UploadReceipt};

/// Client-side deferred upload queue.
#[derive(Debug, Default)]
pub struct UploadQueue {
    online: bool,
    pending: Vec<Upload>,
}

impl UploadQueue {
    /// A new queue, offline.
    pub fn new() -> UploadQueue {
        UploadQueue {
            online: false,
            pending: Vec::new(),
        }
    }

    /// Sets connectivity. Going online does not flush by itself — the
    /// client calls [`UploadQueue::flush`].
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Whether the client currently has connectivity.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Captures content: uploads immediately when online, queues
    /// otherwise. Returns the receipt for immediate uploads.
    pub fn capture(
        &mut self,
        platform: &mut Platform,
        upload: Upload,
    ) -> Result<Option<UploadReceipt>, PlatformError> {
        if self.online {
            platform.upload(upload).map(Some)
        } else {
            self.pending.push(upload);
            Ok(None)
        }
    }

    /// Number of queued uploads.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Flushes the queue in capture-timestamp order. Items that fail
    /// individually are reported but don't block the rest.
    pub fn flush(
        &mut self,
        platform: &mut Platform,
    ) -> (Vec<UploadReceipt>, Vec<(Upload, PlatformError)>) {
        if !self.online {
            return (Vec::new(), Vec::new());
        }
        let mut queued = std::mem::take(&mut self.pending);
        queued.sort_by_key(|u| u.ts);
        let mut receipts = Vec::new();
        let mut failures = Vec::new();
        for upload in queued {
            match platform.upload(upload.clone()) {
                Ok(receipt) => receipts.push(receipt),
                Err(e) => failures.push((upload, e)),
            }
        }
        (receipts, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_relational::WorkloadConfig;

    fn upload(ts: i64, title: &str) -> Upload {
        Upload {
            user_id: 1,
            title: title.to_string(),
            tags: vec![],
            ts,
            gps: None,
            poi: None,
        }
    }

    #[test]
    fn offline_captures_queue_then_flush_in_timestamp_order() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(1)).unwrap();
        let mut queue = UploadQueue::new();
        assert!(!queue.is_online());
        queue.capture(&mut platform, upload(300, "third")).unwrap();
        queue.capture(&mut platform, upload(100, "first")).unwrap();
        queue.capture(&mut platform, upload(200, "second")).unwrap();
        assert_eq!(queue.pending(), 3);

        // Flush while offline is a no-op.
        let (receipts, failures) = queue.flush(&mut platform);
        assert!(receipts.is_empty() && failures.is_empty());
        assert_eq!(queue.pending(), 3);

        queue.set_online(true);
        let (receipts, failures) = queue.flush(&mut platform);
        assert_eq!(receipts.len(), 3);
        assert!(failures.is_empty());
        assert_eq!(queue.pending(), 0);
        // Capture order preserved: pids ascend with timestamps.
        let titles: Vec<String> = receipts
            .iter()
            .map(|r| {
                let q = format!(
                    "SELECT ?t WHERE {{ <{}> rdfs:label ?t . }}",
                    r.resource.as_str()
                );
                platform.query(&q).unwrap().column("t")[0].lexical().to_string()
            })
            .collect();
        assert_eq!(titles, vec!["first", "second", "third"]);
    }

    #[test]
    fn online_captures_upload_immediately() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(2)).unwrap();
        let mut queue = UploadQueue::new();
        queue.set_online(true);
        let receipt = queue
            .capture(&mut platform, upload(1, "instant"))
            .unwrap()
            .expect("immediate receipt");
        assert!(receipt.pid > 0);
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn failed_items_are_reported_not_fatal() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(3)).unwrap();
        let mut queue = UploadQueue::new();
        queue.capture(&mut platform, upload(1, "good")).unwrap();
        queue
            .capture(
                &mut platform,
                Upload {
                    user_id: 9999, // missing user → upload fails
                    ..upload(2, "bad")
                },
            )
            .unwrap();
        queue.set_online(true);
        let (receipts, failures) = queue.flush(&mut platform);
        assert_eq!(receipts.len(), 1);
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0].1, PlatformError::NotFound(_)));
    }
}
