//! Emission-level replication across home nodes — ROADMAP item 3.
//!
//! `core::federation` fans out *notifications*; nothing replicates, so
//! a peer that misses a push has diverged forever. This module ships
//! the state itself: every federation commit produces a self-contained
//! [`Emission`] — the content quads added and removed, plus provenance
//! (origin account, store epoch, per-node monotonic sequence number) —
//! encoded with the durability crate's CRC-framed codec and persisted
//! in a per-node **emission journal** beside the node's WAL.
//!
//! A [`Replicator`] drives the mesh:
//!
//! * each directed link filters emissions through a per-peer
//!   [`SharePolicy`] (by user, album, or predicate namespace); a
//!   filtered-out emission still ships as an *empty* sequence marker,
//!   so policy never punches holes in the sequence space;
//! * transport is simulated, judged per link by a
//!   `lodify-resilience` fault plan (target `repl:<from>-><to>`) with
//!   retry/backoff, a per-peer circuit breaker, and a dead-letter
//!   queue replayed by [`Replicator::redeliver`];
//! * receivers apply idempotently: a duplicate (`seq ≤ cursor`) or a
//!   stale epoch is a no-op; a sequence gap triggers a **catch-up
//!   pull** from the origin's emission journal; [`Replicator::pump`]
//!   finishes with an anti-entropy pass that repairs silently dropped
//!   deliveries — but only over links the fault plan currently allows;
//! * the journal is flushed on every append, so a crashed replica
//!   re-attached via [`Replicator::attach`] recovers its replication
//!   cursors exactly: nothing is re-applied (a retracted triple can
//!   never resurrect) and nothing is lost (gaps are pulled).
//!
//! Convergence argument: per origin node, emissions are applied in
//! strict sequence order at every replica (duplicates and stale epochs
//! rejected by the cursor, gaps filled from the origin journal), so
//! every replica applies the same ordered prefix of the same log; once
//! lag reaches zero all replicas have applied *exactly* the origin's
//! log, and identical ordered set operations on identical initial
//! (empty) shared subsets yield identical stores. The chaos suite
//! asserts this byte-for-byte against a single-node oracle.
//!
//! Only *content* (media, comments, retractions) is journaled and
//! replicated; FOAF profile documents travel via the dedicated
//! federation profile-sharing flow.

use std::collections::BTreeMap;

use lodify_durability::codec::{self, PayloadOutcome};
use lodify_durability::Storage;
use lodify_obs::{Metrics, Obs, TraceContext, Tracer};
use lodify_rdf::{Iri, Triple};
use lodify_resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, DeadLetterQueue, DetRng, FaultPlan, ReplayReport,
    RetryPolicy, Telemetry,
};

use crate::error::PlatformError;
use crate::federation::{Acct, Federation, NodeId, NodeOp};
use crate::metrics::ReplicationOps;

/// Journal file name inside a replica's storage (lives beside the
/// node's WAL files when they share a directory).
pub const EMISSIONS_FILE: &str = "emissions";

/// Attempt cap for a parked shipment (initial failure + replays).
pub const REPLICATION_MAX_ATTEMPTS: u32 = 8;

// ------------------------------------------------------------ emissions

/// One replicated statement: a triple plus the named graph it lands in
/// (`None` = the default graph).
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionQuad {
    /// The statement.
    pub triple: Triple,
    /// Target graph name (`None` = default graph).
    pub graph: Option<String>,
}

/// A self-contained, serializable replication unit: one commit's
/// content delta plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The account whose commit produced this emission.
    pub origin: Acct,
    /// Per-origin-node monotonic sequence number, starting at 1.
    pub seq: u64,
    /// Origin store epoch at commit time (stale-epoch guard).
    pub epoch: u64,
    /// Topical album tag, if the commit was scoped to one (drives
    /// [`SharePolicy::Albums`]).
    pub album: Option<String>,
    /// Statements added by the commit.
    pub additions: Vec<EmissionQuad>,
    /// Statements removed by the commit.
    pub removals: Vec<Triple>,
    /// Causal trace context minted at the origin commit. It travels
    /// inside the emission (journal and wire), so `replication.apply`
    /// and downstream push spans on a *remote* node stitch under the
    /// origin's trace.
    pub trace: Option<TraceContext>,
}

impl Emission {
    /// Encodes the emission body (everything but `seq`, which travels
    /// in the frame header) with the durability codec primitives.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        codec::put_str(&mut out, &self.origin.user);
        codec::put_str(&mut out, &self.origin.host);
        codec::put_varint(&mut out, self.epoch);
        match &self.album {
            Some(album) => {
                out.push(1);
                codec::put_str(&mut out, album);
            }
            None => out.push(0),
        }
        codec::put_varint(&mut out, self.additions.len() as u64);
        for quad in &self.additions {
            match &quad.graph {
                Some(name) => {
                    out.push(1);
                    codec::put_str(&mut out, name);
                }
                None => out.push(0),
            }
            codec::put_term(&mut out, &quad.triple.subject);
            codec::put_str(&mut out, quad.triple.predicate.as_str());
            codec::put_term(&mut out, &quad.triple.object);
        }
        codec::put_varint(&mut out, self.removals.len() as u64);
        for triple in &self.removals {
            codec::put_term(&mut out, &triple.subject);
            codec::put_str(&mut out, triple.predicate.as_str());
            codec::put_term(&mut out, &triple.object);
        }
        match &self.trace {
            Some(ctx) => {
                out.push(1);
                codec::put_varint(&mut out, ctx.trace_id);
                codec::put_varint(&mut out, ctx.parent_span_id);
            }
            None => out.push(0),
        }
        out
    }

    /// Decodes an emission body; `seq` comes from the frame. Validates
    /// the origin account and every IRI, so a corrupted-but-CRC-passing
    /// journal can never smuggle malformed identity into a store.
    pub fn decode(seq: u64, bytes: &[u8]) -> Result<Emission, PlatformError> {
        let cursor = &mut 0usize;
        let user = codec::get_str(bytes, cursor)?;
        let host = codec::get_str(bytes, cursor)?;
        let origin = Acct::parse(&format!("acct:{user}@{host}"))
            .ok_or_else(|| PlatformError::Invalid(format!("bad emission origin {user}@{host}")))?;
        let epoch = codec::get_varint(bytes, cursor)?;
        let album = match next_byte(bytes, cursor)? {
            0 => None,
            _ => Some(codec::get_str(bytes, cursor)?),
        };
        let bad_iri =
            |e: lodify_rdf::RdfError| PlatformError::Invalid(format!("bad emission IRI: {e}"));
        let n_add = codec::get_varint(bytes, cursor)? as usize;
        let mut additions = Vec::with_capacity(n_add.min(1024));
        for _ in 0..n_add {
            let graph = match next_byte(bytes, cursor)? {
                0 => None,
                _ => Some(codec::get_str(bytes, cursor)?),
            };
            let subject = codec::get_term(bytes, cursor)?;
            let predicate = Iri::new(codec::get_str(bytes, cursor)?).map_err(bad_iri)?;
            let object = codec::get_term(bytes, cursor)?;
            additions.push(EmissionQuad {
                triple: Triple::new_unchecked(subject, predicate, object),
                graph,
            });
        }
        let n_rm = codec::get_varint(bytes, cursor)? as usize;
        let mut removals = Vec::with_capacity(n_rm.min(1024));
        for _ in 0..n_rm {
            let subject = codec::get_term(bytes, cursor)?;
            let predicate = Iri::new(codec::get_str(bytes, cursor)?).map_err(bad_iri)?;
            let object = codec::get_term(bytes, cursor)?;
            removals.push(Triple::new_unchecked(subject, predicate, object));
        }
        // Journals written before trace propagation end here; newer
        // frames append the optional trace context.
        let trace = if *cursor == bytes.len() {
            None
        } else {
            match next_byte(bytes, cursor)? {
                0 => None,
                _ => Some(TraceContext {
                    trace_id: codec::get_varint(bytes, cursor)?,
                    parent_span_id: codec::get_varint(bytes, cursor)?,
                }),
            }
        };
        if *cursor != bytes.len() {
            return Err(PlatformError::Invalid(
                "trailing bytes after emission body".into(),
            ));
        }
        Ok(Emission {
            origin,
            seq,
            epoch,
            album,
            additions,
            removals,
            trace,
        })
    }

    /// Whether the emission carries no statements (a policy-filtered
    /// sequence marker).
    pub fn is_marker(&self) -> bool {
        self.additions.is_empty() && self.removals.is_empty()
    }
}

fn next_byte(bytes: &[u8], cursor: &mut usize) -> Result<u8, PlatformError> {
    let b = *bytes
        .get(*cursor)
        .ok_or_else(|| PlatformError::Invalid("emission body truncated".into()))?;
    *cursor += 1;
    Ok(b)
}

/// Frames an emission for the journal / wire.
fn frame_emission(emission: &Emission) -> Vec<u8> {
    let body = emission.encode();
    let mut out = Vec::with_capacity(body.len() + 12);
    codec::put_payload_frame(&mut out, emission.seq, &body);
    out
}

/// Scans a journal byte image. Returns the decoded emissions and the
/// clean prefix length; a truncated tail (crash mid-append) is
/// dropped, a corrupt frame is an error.
fn scan_emissions(bytes: &[u8]) -> Result<(Vec<Emission>, usize), PlatformError> {
    let mut emissions = Vec::new();
    let mut offset = 0usize;
    loop {
        match codec::read_payload_frame(bytes, offset) {
            PayloadOutcome::Frame { seq, body, next } => {
                emissions.push(Emission::decode(seq, &body)?);
                offset = next;
            }
            PayloadOutcome::End | PayloadOutcome::Truncated { .. } => {
                return Ok((emissions, offset))
            }
            PayloadOutcome::Corrupt { at, reason } => {
                return Err(PlatformError::Invalid(format!(
                    "corrupt emission journal at byte {at}: {reason}"
                )))
            }
        }
    }
}

// -------------------------------------------------------- share policy

/// What a node shares with one peer. Filtering never consumes a
/// sequence number: a withheld emission ships as an empty marker, so
/// receivers can still detect gaps and converge on the shared subset.
#[derive(Debug, Clone, PartialEq)]
pub enum SharePolicy {
    /// Share every emission in full.
    Everything,
    /// Share only emissions whose origin user is listed.
    Users(Vec<String>),
    /// Share only emissions tagged with one of these albums.
    Albums(Vec<String>),
    /// Share only statements whose predicate IRI starts with one of
    /// these namespace prefixes.
    PredicateNamespaces(Vec<String>),
}

impl SharePolicy {
    /// Projects an emission through the policy, preserving provenance
    /// and the sequence slot.
    pub fn project(&self, emission: &Emission) -> Emission {
        let empty = |e: &Emission| Emission {
            additions: Vec::new(),
            removals: Vec::new(),
            ..e.clone()
        };
        match self {
            SharePolicy::Everything => emission.clone(),
            SharePolicy::Users(users) => {
                if users.contains(&emission.origin.user) {
                    emission.clone()
                } else {
                    empty(emission)
                }
            }
            SharePolicy::Albums(albums) => {
                if emission
                    .album
                    .as_ref()
                    .is_some_and(|album| albums.contains(album))
                {
                    emission.clone()
                } else {
                    empty(emission)
                }
            }
            SharePolicy::PredicateNamespaces(prefixes) => {
                let keep = |p: &Iri| prefixes.iter().any(|prefix| p.as_str().starts_with(prefix));
                Emission {
                    additions: emission
                        .additions
                        .iter()
                        .filter(|q| keep(&q.triple.predicate))
                        .cloned()
                        .collect(),
                    removals: emission
                        .removals
                        .iter()
                        .filter(|t| keep(&t.predicate))
                        .cloned()
                        .collect(),
                    ..empty(emission)
                }
            }
        }
    }
}

// ------------------------------------------------------------- replica

/// Applied position of one remote origin at a replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cursor {
    /// Highest origin sequence number applied.
    pub seq: u64,
    /// Origin store epoch of that emission.
    pub epoch: u64,
}

/// Per-node replication state: the persisted emission journal (own
/// emissions and applied remote ones, in arrival order) plus the
/// cursors derived from it.
struct Replica {
    host: String,
    storage: Box<dyn Storage>,
    journal: Vec<Emission>,
    /// Journal indexes of own emissions, by `seq - 1`.
    own: Vec<usize>,
    next_seq: u64,
    cursors: BTreeMap<String, Cursor>,
}

impl Replica {
    fn open(host: String, mut storage: Box<dyn Storage>) -> Result<Replica, PlatformError> {
        let bytes = if storage.list().iter().any(|f| f == EMISSIONS_FILE) {
            storage.read(EMISSIONS_FILE)?
        } else {
            storage.create(EMISSIONS_FILE)?;
            Vec::new()
        };
        let (emissions, clean_len) = scan_emissions(&bytes)?;
        if clean_len < bytes.len() {
            // Chop the torn tail so future appends frame cleanly.
            storage.truncate(EMISSIONS_FILE, clean_len as u64)?;
            storage.flush(EMISSIONS_FILE)?;
        }
        let mut replica = Replica {
            host,
            storage,
            journal: Vec::with_capacity(emissions.len()),
            own: Vec::new(),
            next_seq: 1,
            cursors: BTreeMap::new(),
        };
        for emission in emissions {
            replica.index(emission);
        }
        Ok(replica)
    }

    /// Records an emission in the in-memory index (journal already
    /// holds its bytes).
    fn index(&mut self, emission: Emission) {
        if emission.origin.host == self.host {
            debug_assert_eq!(emission.seq as usize, self.own.len() + 1);
            self.own.push(self.journal.len());
            self.next_seq = self.next_seq.max(emission.seq + 1);
        } else {
            self.cursors.insert(
                emission.origin.host.clone(),
                Cursor {
                    seq: emission.seq,
                    epoch: emission.epoch,
                },
            );
        }
        self.journal.push(emission);
    }

    /// Appends an emission durably (framed, flushed) and indexes it.
    fn append(&mut self, emission: Emission) -> Result<(), PlatformError> {
        self.storage
            .append(EMISSIONS_FILE, &frame_emission(&emission))?;
        self.storage.flush(EMISSIONS_FILE)?;
        self.index(emission);
        Ok(())
    }

    /// One of this node's own emissions by sequence number.
    fn own_emission(&self, seq: u64) -> Option<&Emission> {
        let idx = *self.own.get((seq as usize).checked_sub(1)?)?;
        self.journal.get(idx)
    }

    fn cursor(&self, origin_host: &str) -> Cursor {
        self.cursors.get(origin_host).copied().unwrap_or_default()
    }

    fn head(&self) -> u64 {
        self.next_seq - 1
    }
}

/// What [`Replicator::attach`] found in the journal it opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachReport {
    /// Emissions recovered from the journal (own + applied remote).
    pub recovered: usize,
    /// Next own sequence number the node will emit.
    pub next_seq: u64,
    /// Remote origins with a recovered cursor.
    pub origins: usize,
}

// ---------------------------------------------------------- transport

/// Seeded transport misbehavior: each delivery that passes the fault
/// plan may still be silently dropped, duplicated, or reordered
/// (held back and released on the next [`Replicator::pump`]).
#[derive(Debug, Clone)]
pub struct TransportChaos {
    /// Probability a delivery is silently lost.
    pub drop_rate: f64,
    /// Probability a delivery arrives twice.
    pub dup_rate: f64,
    /// Probability a delivery is delayed past later ones.
    pub reorder_rate: f64,
    /// RNG seed (deterministic per seed).
    pub seed: u64,
}

struct ChaosState {
    config: TransportChaos,
    rng: DetRng,
}

enum ChaosCall {
    Deliver,
    Drop,
    Duplicate,
    Reorder,
}

impl ChaosState {
    fn decide(&mut self) -> ChaosCall {
        if self.rng.random_bool(self.config.drop_rate) {
            ChaosCall::Drop
        } else if self.rng.random_bool(self.config.dup_rate) {
            ChaosCall::Duplicate
        } else if self.rng.random_bool(self.config.reorder_rate) {
            ChaosCall::Reorder
        } else {
            ChaosCall::Deliver
        }
    }
}

/// A parked shipment: link endpoints plus the origin sequence number
/// (the emission itself is refetched from the origin journal on
/// replay, so the DLQ never holds stale payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shipment {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Origin sequence number.
    pub seq: u64,
}

struct Link {
    from: NodeId,
    to: NodeId,
    policy: SharePolicy,
    /// Highest origin seq this link has shipped (or handed to the DLQ).
    acked: u64,
    breaker: CircuitBreaker,
}

/// Judges one transport call over a link: per-peer breaker first, then
/// the fault plan (with retry/backoff in virtual time).
fn judge_transport(
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut DetRng,
    telemetry: &Telemetry,
    link: &mut Link,
    target: &str,
) -> Result<(), String> {
    let now = plan.map(|p| p.clock().now_ms()).unwrap_or(0);
    if !link.breaker.allow(now) {
        telemetry.incr("replication.breaker.rejections");
        return Err(format!("breaker open for {target}"));
    }
    let outcome = match plan {
        None => Ok(()),
        Some(plan) => {
            let clock = plan.clock().clone();
            retry
                .run(&clock, rng, |attempt| {
                    if attempt > 1 {
                        telemetry.incr("replication.retries");
                    }
                    plan.check(target)
                })
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    };
    let now = plan.map(|p| p.clock().now_ms()).unwrap_or(0);
    match &outcome {
        Ok(()) => link.breaker.on_success(now),
        Err(_) => link.breaker.on_failure(now),
    }
    outcome
}

// ----------------------------------------------------------- replicator

/// The replication mesh: per-node journals, policy-filtered directed
/// links, simulated faulty transport, and idempotent receivers.
pub struct Replicator {
    replicas: BTreeMap<NodeId, Replica>,
    links: Vec<Link>,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    rng: DetRng,
    dlq: DeadLetterQueue<Shipment>,
    chaos: Option<ChaosState>,
    /// Reordered deliveries held for the next pump: `(link, emission)`.
    delayed: Vec<(usize, Emission)>,
    telemetry: Telemetry,
    metrics: Option<Metrics>,
    tracer: Option<Tracer>,
    breaker_config: BreakerConfig,
}

impl Default for Replicator {
    fn default() -> Self {
        Self::new()
    }
}

impl Replicator {
    /// An empty mesh with perfect transport.
    pub fn new() -> Replicator {
        Replicator {
            replicas: BTreeMap::new(),
            links: Vec::new(),
            plan: None,
            retry: RetryPolicy::no_retry(),
            rng: DetRng::seed_from_u64(0).fork("replication-transport"),
            dlq: DeadLetterQueue::new(REPLICATION_MAX_ATTEMPTS),
            chaos: None,
            delayed: Vec::new(),
            telemetry: Telemetry::new(),
            metrics: None,
            tracer: None,
            breaker_config: BreakerConfig::default(),
        }
    }

    /// Installs fault-injected transport: every shipment over the link
    /// `from → to` is judged by `plan` under target
    /// `repl:<from_host>-><to_host>`, retried per `retry`.
    pub fn with_fault_plan(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.plan = Some(plan);
        self.retry = retry;
    }

    /// Installs (or clears) seeded drop/duplicate/reorder misbehavior
    /// on deliveries that pass the fault plan.
    pub fn set_transport_chaos(&mut self, chaos: Option<TransportChaos>) {
        self.chaos = chaos.map(|config| ChaosState {
            rng: DetRng::seed_from_u64(config.seed).fork("replication-chaos"),
            config,
        });
    }

    /// Overrides the per-peer circuit breaker configuration for links
    /// created after this call.
    pub fn set_breaker_config(&mut self, config: BreakerConfig) {
        self.breaker_config = config;
    }

    /// Attaches observability: `replication.ship` / `replication.apply`
    /// spans and mirrored counters + the `replication.lag` gauge.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.metrics = Some(obs.metrics().clone());
        self.tracer = Some(obs.tracer().clone());
    }

    /// Replication telemetry (`replication.*` counters and gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches (or re-attaches) a node's replica state, opening its
    /// emission journal on `storage` and recovering the replication
    /// cursors exactly. Re-attaching after [`Replicator::kill`] is the
    /// crash-recovery path.
    pub fn attach(
        &mut self,
        fed: &Federation,
        node: NodeId,
        storage: Box<dyn Storage>,
    ) -> Result<AttachReport, PlatformError> {
        let host = fed.node(node)?.host().to_string();
        let replica = Replica::open(host, storage)?;
        let report = AttachReport {
            recovered: replica.journal.len(),
            next_seq: replica.next_seq,
            origins: replica.cursors.len(),
        };
        self.replicas.insert(node, replica);
        Ok(report)
    }

    /// Simulates a replica process crash: all in-memory replication
    /// state for `node` is dropped (the persisted journal survives in
    /// its storage). Returns whether the node had a replica.
    pub fn kill(&mut self, node: NodeId) -> bool {
        self.replicas.remove(&node).is_some()
    }

    /// Adds a directed replication link `from → to` under `policy`.
    pub fn subscribe(
        &mut self,
        from: NodeId,
        to: NodeId,
        policy: SharePolicy,
    ) -> Result<(), PlatformError> {
        if from == to {
            return Err(PlatformError::Invalid("self-replication link".into()));
        }
        if self.links.iter().any(|l| l.from == from && l.to == to) {
            return Err(PlatformError::Invalid(format!(
                "duplicate link {from} -> {to}"
            )));
        }
        self.links.push(Link {
            from,
            to,
            policy,
            acked: 0,
            breaker: CircuitBreaker::new(self.breaker_config.clone()),
        });
        Ok(())
    }

    /// Packages the content ops accumulated on `author`'s node since
    /// the last commit into an [`Emission`] (journaled durably), then
    /// eagerly ships it over the node's outgoing links. Returns the
    /// emission's sequence number, or `None` when there was nothing to
    /// commit.
    pub fn commit(
        &mut self,
        fed: &mut Federation,
        author: &Acct,
        album: Option<&str>,
    ) -> Result<Option<u64>, PlatformError> {
        let (node_id, _) = fed.webfinger(&author.to_string())?;
        if !self.replicas.contains_key(&node_id) {
            return Err(PlatformError::Invalid(format!(
                "no replica attached for node {node_id}"
            )));
        }
        let node = fed.node_mut(node_id)?;
        let ops = node.drain_ops();
        if ops.is_empty() {
            return Ok(None);
        }
        let epoch = node.store().epoch();
        let mut additions = Vec::new();
        let mut removals = Vec::new();
        for op in ops {
            match op {
                NodeOp::Insert(triple) => additions.push(EmissionQuad {
                    triple,
                    graph: None,
                }),
                NodeOp::Remove(triple) => removals.push(triple),
            }
        }
        // The commit mints the root of the causal trace: every ship,
        // apply, and push span this emission causes — on any node —
        // attaches under it.
        let span = self.tracer.as_ref().map(|t| t.start("replication.commit"));
        let replica = self.replicas.get_mut(&node_id).expect("checked above");
        let emission = Emission {
            origin: author.clone(),
            seq: replica.next_seq,
            epoch,
            album: album.map(str::to_string),
            additions,
            removals,
            trace: span.as_ref().and_then(|s| s.context()),
        };
        let seq = emission.seq;
        replica.append(emission)?;
        self.telemetry.incr("replication.emissions");
        if let Some(metrics) = &self.metrics {
            metrics.incr("replication.emissions");
        }
        self.ship_from(fed, node_id)?;
        self.publish_gauges();
        if let Some(span) = span {
            span.finish();
        }
        Ok(Some(seq))
    }

    /// Ships everything pending: releases reorder-delayed deliveries,
    /// drains every link's backlog, then runs an anti-entropy pass that
    /// pulls any remaining gap (e.g. a silently dropped final emission)
    /// over links the fault plan currently allows.
    pub fn pump(&mut self, fed: &mut Federation) -> Result<(), PlatformError> {
        let delayed = std::mem::take(&mut self.delayed);
        for (idx, emission) in delayed {
            self.deliver(fed, idx, emission)?;
        }
        for idx in 0..self.links.len() {
            self.ship_link(fed, idx)?;
        }
        self.reconcile(fed)?;
        self.publish_gauges();
        Ok(())
    }

    fn ship_from(&mut self, fed: &mut Federation, from: NodeId) -> Result<(), PlatformError> {
        for idx in 0..self.links.len() {
            if self.links[idx].from == from {
                self.ship_link(fed, idx)?;
            }
        }
        Ok(())
    }

    /// Ships the link's backlog (acked → origin head). Failures park
    /// the shipment in the DLQ and move on; chaos may drop, duplicate,
    /// or delay individual deliveries.
    fn ship_link(&mut self, fed: &mut Federation, idx: usize) -> Result<(), PlatformError> {
        loop {
            let (from, to) = (self.links[idx].from, self.links[idx].to);
            let Some(origin) = self.replicas.get(&from) else {
                return Ok(()); // sender down; nothing to ship
            };
            let head = origin.head();
            let seq = self.links[idx].acked + 1;
            if seq > head {
                return Ok(());
            }
            let emission = origin
                .own_emission(seq)
                .ok_or_else(|| {
                    PlatformError::Invalid(format!("emission {seq} missing from node {from}"))
                })?
                .clone();
            let shipped = self.links[idx].policy.project(&emission);
            let span = self
                .tracer
                .as_ref()
                .map(|t| t.start_with_context("replication.ship", shipped.trace));
            let target = self.link_target(fed, idx)?;
            let verdict = if self.replicas.contains_key(&to) {
                judge_transport(
                    self.plan.as_ref(),
                    &self.retry,
                    &mut self.rng,
                    &self.telemetry,
                    &mut self.links[idx],
                    &target,
                )
            } else {
                Err(format!("replica {to} down"))
            };
            match verdict {
                Err(error) => {
                    self.park(Shipment { from, to, seq }, error);
                }
                Ok(()) => {
                    self.telemetry.incr("replication.shipped");
                    if let Some(metrics) = &self.metrics {
                        metrics.incr("replication.shipped");
                    }
                    match self.chaos.as_mut().map(|c| c.decide()) {
                        Some(ChaosCall::Drop) => {
                            self.telemetry.incr("replication.transport.dropped");
                        }
                        Some(ChaosCall::Duplicate) => {
                            self.telemetry.incr("replication.transport.duplicated");
                            self.deliver(fed, idx, shipped.clone())?;
                            self.deliver(fed, idx, shipped)?;
                        }
                        Some(ChaosCall::Reorder) => {
                            self.telemetry.incr("replication.transport.reordered");
                            self.delayed.push((idx, shipped));
                        }
                        Some(ChaosCall::Deliver) | None => {
                            self.deliver(fed, idx, shipped)?;
                        }
                    }
                }
            }
            // Parked or delivered, the slot is accounted for; the DLQ
            // or the receiver's gap detection owns it from here.
            self.links[idx].acked = seq;
            if let Some(span) = span {
                span.finish();
            }
        }
    }

    /// Applies one delivered emission at the link's receiver:
    /// duplicates and stale epochs are no-ops, a gap triggers a
    /// catch-up pull from the origin journal.
    fn deliver(
        &mut self,
        fed: &mut Federation,
        idx: usize,
        emission: Emission,
    ) -> Result<(), PlatformError> {
        let (from, to) = (self.links[idx].from, self.links[idx].to);
        let Some(receiver) = self.replicas.get(&to) else {
            // A delayed delivery can land after the replica died.
            self.park(
                Shipment {
                    from,
                    to,
                    seq: emission.seq,
                },
                format!("replica {to} down"),
            );
            return Ok(());
        };
        let cursor = receiver.cursor(&emission.origin.host);
        if emission.seq <= cursor.seq {
            self.telemetry.incr("replication.duplicates");
            return Ok(());
        }
        if emission.epoch <= cursor.epoch {
            self.telemetry.incr("replication.stale");
            return Ok(());
        }
        if emission.seq > cursor.seq + 1 {
            // Sequence gap: pull the missing range from the origin's
            // journal (we are mid-delivery, so the pipe is open).
            self.telemetry.incr("replication.catchups");
            if let Some(metrics) = &self.metrics {
                metrics.incr("replication.catchups");
            }
            let missing: Vec<Emission> = {
                let Some(origin) = self.replicas.get(&from) else {
                    return Ok(()); // origin down; a later pump repairs
                };
                (cursor.seq + 1..emission.seq)
                    .filter_map(|s| origin.own_emission(s))
                    .map(|e| self.links[idx].policy.project(e))
                    .collect()
            };
            for pulled in missing {
                self.apply_one(fed, to, pulled)?;
            }
        }
        self.apply_one(fed, to, emission)
    }

    /// Applies an in-order emission at `to`: mutates the store,
    /// journals the applied emission durably, and advances the cursor.
    fn apply_one(
        &mut self,
        fed: &mut Federation,
        to: NodeId,
        emission: Emission,
    ) -> Result<(), PlatformError> {
        let span = self
            .tracer
            .as_ref()
            .map(|t| t.start_with_context("replication.apply", emission.trace));
        // Downstream live-album pushes attach under this apply span
        // when one is live, else directly under the emission's trace.
        let ctx = span.as_ref().and_then(|s| s.context()).or(emission.trace);
        {
            let store = fed.node_mut(to)?.store_mut();
            for quad in &emission.additions {
                let g = match &quad.graph {
                    None => store.default_graph(),
                    Some(name) => store.graph(name),
                };
                store.insert(&quad.triple, g);
            }
            for triple in &emission.removals {
                store.remove(triple);
            }
        }
        // The replica's live albums see the same delta the store just
        // absorbed, so standing queries registered against a *replica*
        // stay maintained — and keep pushing diffs — without ever
        // re-running their SPARQL.
        let added: Vec<Triple> = emission
            .additions
            .iter()
            .map(|quad| quad.triple.clone())
            .collect();
        fed.live_maintain(to, &added, &emission.removals, ctx);
        let replica = self
            .replicas
            .get_mut(&to)
            .ok_or_else(|| PlatformError::NotFound(format!("replica {to}")))?;
        replica.append(emission)?;
        self.telemetry.incr("replication.applied");
        if let Some(metrics) = &self.metrics {
            metrics.incr("replication.applied");
        }
        if let Some(span) = span {
            span.finish();
        }
        Ok(())
    }

    /// Anti-entropy: for every link whose receiver is behind the
    /// origin head (a silently dropped delivery leaves no later
    /// emission to trip gap detection), pull the missing range — but
    /// only if the transport currently allows it.
    fn reconcile(&mut self, fed: &mut Federation) -> Result<(), PlatformError> {
        for idx in 0..self.links.len() {
            loop {
                let (from, to) = (self.links[idx].from, self.links[idx].to);
                let (Some(origin), Some(receiver)) =
                    (self.replicas.get(&from), self.replicas.get(&to))
                else {
                    break;
                };
                let head = origin.head();
                let cursor = receiver.cursor(&origin.host);
                if cursor.seq >= head {
                    break;
                }
                let target = self.link_target(fed, idx)?;
                if judge_transport(
                    self.plan.as_ref(),
                    &self.retry,
                    &mut self.rng,
                    &self.telemetry,
                    &mut self.links[idx],
                    &target,
                )
                .is_err()
                {
                    break; // partitioned; a later pump retries
                }
                let origin = self.replicas.get(&from).expect("checked above");
                let Some(next) = origin.own_emission(cursor.seq + 1) else {
                    break;
                };
                let pulled = self.links[idx].policy.project(next);
                self.telemetry.incr("replication.catchups");
                if let Some(metrics) = &self.metrics {
                    metrics.incr("replication.catchups");
                }
                self.apply_one(fed, to, pulled)?;
            }
        }
        Ok(())
    }

    /// Replays the shipment dead-letter queue; still-failing shipments
    /// are re-parked until [`REPLICATION_MAX_ATTEMPTS`] exhausts them.
    pub fn redeliver(&mut self, fed: &mut Federation) -> Result<ReplayReport, PlatformError> {
        let mut dlq = std::mem::replace(
            &mut self.dlq,
            DeadLetterQueue::new(REPLICATION_MAX_ATTEMPTS),
        );
        let mut failure: Option<PlatformError> = None;
        let report = dlq.replay(|shipment| {
            let idx = self
                .links
                .iter()
                .position(|l| l.from == shipment.from && l.to == shipment.to)
                .ok_or_else(|| "link removed".to_string())?;
            if !self.replicas.contains_key(&shipment.to) {
                return Err(format!("replica {} down", shipment.to));
            }
            let target = match self.link_target(fed, idx) {
                Ok(target) => target,
                Err(e) => {
                    failure = Some(e);
                    return Err("internal error".into());
                }
            };
            judge_transport(
                self.plan.as_ref(),
                &self.retry,
                &mut self.rng,
                &self.telemetry,
                &mut self.links[idx],
                &target,
            )?;
            let emission = {
                let origin = self
                    .replicas
                    .get(&shipment.from)
                    .ok_or_else(|| format!("origin {} down", shipment.from))?;
                let own = origin
                    .own_emission(shipment.seq)
                    .ok_or_else(|| format!("emission {} missing", shipment.seq))?;
                self.links[idx].policy.project(own)
            };
            if let Err(e) = self.deliver(fed, idx, emission) {
                failure = Some(e);
                return Err("internal error".into());
            }
            Ok(())
        });
        self.dlq = dlq;
        if let Some(e) = failure {
            return Err(e);
        }
        self.telemetry
            .add("replication.redelivered", report.replayed as u64);
        self.telemetry
            .set_gauge("replication.dlq.depth", self.dlq.depth() as u64);
        self.publish_gauges();
        Ok(report)
    }

    fn link_target(&self, fed: &Federation, idx: usize) -> Result<String, PlatformError> {
        let link = &self.links[idx];
        Ok(format!(
            "repl:{}->{}",
            fed.node(link.from)?.host(),
            fed.node(link.to)?.host()
        ))
    }

    fn park(&mut self, shipment: Shipment, error: String) {
        self.telemetry.incr("replication.parked");
        let now = self.plan.as_ref().map(|p| p.clock().now_ms()).unwrap_or(0);
        self.dlq.push(shipment, error, now);
        self.telemetry
            .set_gauge("replication.dlq.depth", self.dlq.depth() as u64);
    }

    /// Maximum replication lag over all links: origin head sequence
    /// minus the receiver's applied cursor.
    pub fn lag(&self) -> u64 {
        self.links
            .iter()
            .map(|link| {
                let Some(origin) = self.replicas.get(&link.from) else {
                    return 0;
                };
                let applied = self
                    .replicas
                    .get(&link.to)
                    .map(|r| r.cursor(&origin.host).seq)
                    .unwrap_or(0);
                origin.head().saturating_sub(applied)
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether every link is fully applied with nothing in flight or
    /// parked.
    pub fn converged(&self) -> bool {
        self.lag() == 0 && self.delayed.is_empty() && self.dlq.depth() == 0
    }

    /// A node's own emission log, in sequence order — what a
    /// single-node oracle replays to verify convergence, and what a
    /// peer pulls from during catch-up.
    pub fn emission_log(&self, node: NodeId) -> Result<Vec<Emission>, PlatformError> {
        let replica = self
            .replicas
            .get(&node)
            .ok_or_else(|| PlatformError::NotFound(format!("replica {node}")))?;
        Ok((1..replica.next_seq)
            .filter_map(|seq| replica.own_emission(seq))
            .cloned()
            .collect())
    }

    /// The emissions a node applied from its peers, in arrival order —
    /// its whole durable journal minus its own authorship. Chaos tests
    /// audit this to prove applied emissions kept their origin trace
    /// context across the transport.
    pub fn applied_log(&self, node: NodeId) -> Result<Vec<Emission>, PlatformError> {
        let replica = self
            .replicas
            .get(&node)
            .ok_or_else(|| PlatformError::NotFound(format!("replica {node}")))?;
        Ok(replica
            .journal
            .iter()
            .filter(|e| e.origin.host != replica.host)
            .cloned()
            .collect())
    }

    /// Parked shipments awaiting [`Replicator::redeliver`].
    pub fn undelivered(&self) -> usize {
        self.dlq.depth()
    }

    /// Shipments abandoned after [`REPLICATION_MAX_ATTEMPTS`].
    pub fn exhausted(&self) -> usize {
        self.dlq.exhausted().len()
    }

    /// Breaker state of the link `from → to`, if it exists.
    pub fn breaker_state(&self, from: NodeId, to: NodeId) -> Option<BreakerState> {
        self.links
            .iter()
            .find(|l| l.from == from && l.to == to)
            .map(|l| l.breaker.state())
    }

    /// Point-in-time counters for the `/ops` degradation verdict.
    pub fn ops(&self) -> ReplicationOps {
        ReplicationOps {
            lag: self.lag(),
            dlq_depth: self.dlq.depth(),
            parked: self.telemetry.counter("replication.parked"),
            redelivered: self.telemetry.counter("replication.redelivered"),
            emissions: self.telemetry.counter("replication.emissions"),
            applied: self.telemetry.counter("replication.applied"),
        }
    }

    fn publish_gauges(&self) {
        let lag = self.lag();
        self.telemetry.set_gauge("replication.lag", lag);
        if let Some(metrics) = &self.metrics {
            metrics.set_gauge("replication.lag", lag);
            metrics.set_gauge("replication.dlq.depth", self.dlq.depth() as u64);
        }
    }
}

// -------------------------------------------------------------- outbox

/// A platform-side emission outbox: `Platform::commit_staged` records
/// each commit's annotated quads here; a replication agent drains it
/// and ships. The journal persists beside the WAL (its own storage
/// object) so a restarted platform resumes its sequence numbers; the
/// drain position is consumer state, so a restart re-offers recovered
/// emissions and downstream idempotent apply absorbs the overlap.
pub struct EmissionOutbox {
    origin: Acct,
    storage: Box<dyn Storage>,
    emissions: Vec<Emission>,
    next_seq: u64,
    /// Sequence number up to which a consumer has drained.
    consumed: u64,
}

impl EmissionOutbox {
    /// Opens (or creates) an outbox journal on `storage`, recovering
    /// the emission sequence exactly.
    pub fn open(
        origin: Acct,
        mut storage: Box<dyn Storage>,
    ) -> Result<EmissionOutbox, PlatformError> {
        let bytes = if storage.list().iter().any(|f| f == EMISSIONS_FILE) {
            storage.read(EMISSIONS_FILE)?
        } else {
            storage.create(EMISSIONS_FILE)?;
            Vec::new()
        };
        let (emissions, clean_len) = scan_emissions(&bytes)?;
        if clean_len < bytes.len() {
            storage.truncate(EMISSIONS_FILE, clean_len as u64)?;
            storage.flush(EMISSIONS_FILE)?;
        }
        let next_seq = emissions.last().map(|e| e.seq + 1).unwrap_or(1);
        Ok(EmissionOutbox {
            origin,
            storage,
            emissions,
            next_seq,
            consumed: 0,
        })
    }

    /// Records one commit's delta as an emission (journaled durably),
    /// stamped with the commit's trace context so replicas applying it
    /// stitch their spans under the origin trace.
    pub fn record(
        &mut self,
        epoch: u64,
        album: Option<&str>,
        additions: Vec<EmissionQuad>,
        removals: Vec<Triple>,
        trace: Option<TraceContext>,
    ) -> Result<u64, PlatformError> {
        let emission = Emission {
            origin: self.origin.clone(),
            seq: self.next_seq,
            epoch,
            album: album.map(str::to_string),
            additions,
            removals,
            trace,
        };
        self.storage
            .append(EMISSIONS_FILE, &frame_emission(&emission))?;
        self.storage.flush(EMISSIONS_FILE)?;
        self.next_seq += 1;
        self.emissions.push(emission);
        Ok(self.next_seq - 1)
    }

    /// Emissions not yet handed to a consumer.
    pub fn lag(&self) -> u64 {
        (self.next_seq - 1).saturating_sub(self.consumed)
    }

    /// Hands every undrained emission to the consumer, advancing the
    /// drain position.
    pub fn drain(&mut self) -> Vec<Emission> {
        let pending: Vec<Emission> = self
            .emissions
            .iter()
            .filter(|e| e.seq > self.consumed)
            .cloned()
            .collect();
        self.consumed = self.next_seq - 1;
        pending
    }

    /// The account this outbox emits as.
    pub fn origin(&self) -> &Acct {
        &self.origin
    }

    /// Total emissions journaled (including drained ones).
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_durability::MemStorage;
    use lodify_rdf::Term;
    use lodify_resilience::VirtualClock;

    fn acct(uri: &str) -> Acct {
        Acct::parse(uri).expect("valid acct")
    }

    fn sample_emission() -> Emission {
        let subject = Term::Iri(Iri::new_unchecked("http://node1.example/media/1"));
        Emission {
            origin: acct("acct:oscar@node1.example"),
            seq: 7,
            epoch: 42,
            album: Some("turin-trip".into()),
            additions: vec![
                EmissionQuad {
                    triple: Triple::new_unchecked(
                        subject.clone(),
                        Iri::new_unchecked("http://purl.org/dc/terms/title"),
                        Term::Literal(lodify_rdf::Literal::simple("Mole")),
                    ),
                    graph: Some("urn:graph:ugc".into()),
                },
                EmissionQuad {
                    triple: Triple::new_unchecked(
                        subject.clone(),
                        Iri::new_unchecked("http://xmlns.com/foaf/0.1/maker"),
                        Term::Iri(Iri::new_unchecked("http://node1.example/user/oscar")),
                    ),
                    graph: None,
                },
            ],
            removals: vec![Triple::new_unchecked(
                subject,
                Iri::new_unchecked("http://purl.org/dc/terms/subject"),
                Term::Iri(Iri::new_unchecked("http://dbpedia.org/resource/Turin")),
            )],
            trace: Some(TraceContext {
                trace_id: 0x00aa_0000_0000_0001,
                parent_span_id: 3,
            }),
        }
    }

    #[test]
    fn emission_codec_round_trips() {
        let emission = sample_emission();
        let decoded = Emission::decode(emission.seq, &emission.encode()).unwrap();
        assert_eq!(decoded, emission);

        // Empty (marker) emissions round-trip too.
        let marker = Emission {
            additions: Vec::new(),
            removals: Vec::new(),
            album: None,
            ..emission.clone()
        };
        let decoded = Emission::decode(marker.seq, &marker.encode()).unwrap();
        assert_eq!(decoded, marker);
        assert!(decoded.is_marker());

        // Trailing garbage is rejected, not silently ignored.
        let mut bytes = emission.encode();
        bytes.push(0);
        assert!(Emission::decode(emission.seq, &bytes).is_err());

        // A legacy frame (written before trace propagation, so without
        // the trailing trace field) still decodes, with no trace.
        let untraced = Emission {
            trace: None,
            ..emission
        };
        let mut legacy = untraced.encode();
        legacy.pop(); // strip the trace option byte
        assert_eq!(Emission::decode(untraced.seq, &legacy).unwrap(), untraced);

        // A CRC-passing body with a malformed origin is rejected by
        // the Acct re-validation.
        let mut forged = Vec::new();
        codec::put_str(&mut forged, "os car");
        codec::put_str(&mut forged, "node1.example");
        assert!(Emission::decode(1, &forged).is_err());
    }

    #[test]
    fn journal_scan_recovers_and_drops_torn_tail() {
        let emission = sample_emission();
        let mut bytes = frame_emission(&emission);
        let clean = bytes.len();
        bytes.extend_from_slice(&bytes.clone()[..9]); // torn second frame
        let (recovered, offset) = scan_emissions(&bytes).unwrap();
        assert_eq!(recovered, vec![emission]);
        assert_eq!(offset, clean);
    }

    #[test]
    fn share_policies_project_into_empty_markers() {
        let emission = sample_emission();
        assert_eq!(SharePolicy::Everything.project(&emission), emission);

        let kept = SharePolicy::Users(vec!["oscar".into()]).project(&emission);
        assert_eq!(kept, emission);
        let withheld = SharePolicy::Users(vec!["walter".into()]).project(&emission);
        assert!(withheld.is_marker());
        assert_eq!(withheld.seq, emission.seq);
        assert_eq!(withheld.origin, emission.origin);

        assert!(!SharePolicy::Albums(vec!["turin-trip".into()])
            .project(&emission)
            .is_marker());
        assert!(SharePolicy::Albums(vec!["other".into()])
            .project(&emission)
            .is_marker());

        let dcterms = SharePolicy::PredicateNamespaces(vec!["http://purl.org/dc/terms/".into()])
            .project(&emission);
        assert_eq!(dcterms.additions.len(), 1);
        assert_eq!(dcterms.removals.len(), 1);
    }

    fn two_node_mesh() -> (Federation, Replicator, Acct, MemStorage, MemStorage) {
        let mut fed = Federation::new();
        let n1 = fed.add_node("node1.example").unwrap();
        let n2 = fed.add_node("node2.example").unwrap();
        let oscar = fed.register_user(n1, "oscar", "Oscar").unwrap();
        let d1 = MemStorage::new();
        let d2 = MemStorage::new();
        let mut repl = Replicator::new();
        repl.attach(&fed, n1, Box::new(d1.clone())).unwrap();
        repl.attach(&fed, n2, Box::new(d2.clone())).unwrap();
        repl.subscribe(n1, n2, SharePolicy::Everything).unwrap();
        (fed, repl, oscar, d1, d2)
    }

    #[test]
    fn commit_replicates_and_empty_commits_are_none() {
        let (mut fed, mut repl, oscar, _, _) = two_node_mesh();
        let (media, _) = fed.publish(&oscar, "Mole at night", 1000).unwrap();
        let seq = repl.commit(&mut fed, &oscar, None).unwrap();
        assert_eq!(seq, Some(1));
        assert!(repl.converged());
        let replicated =
            fed.node(1)
                .unwrap()
                .store()
                .match_terms(Some(&Term::Iri(media.clone())), None, None);
        assert_eq!(replicated.len(), 4, "all media triples replicated");

        // Nothing staged → no emission, sequence unchanged.
        assert_eq!(repl.commit(&mut fed, &oscar, None).unwrap(), None);

        // A retraction replicates as removals: the media disappears
        // from the replica too.
        fed.retract(&oscar, &media).unwrap();
        assert_eq!(repl.commit(&mut fed, &oscar, None).unwrap(), Some(2));
        assert!(repl.converged());
        let replicated =
            fed.node(1)
                .unwrap()
                .store()
                .match_terms(Some(&Term::Iri(media)), None, None);
        assert!(replicated.is_empty(), "retraction propagated");
        assert_eq!(repl.telemetry().counter("replication.applied"), 2);
    }

    #[test]
    fn duplicates_and_stale_epochs_are_no_ops() {
        let (mut fed, mut repl, oscar, _, _) = two_node_mesh();
        fed.publish(&oscar, "first", 1000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();
        let before = fed.node(1).unwrap().store().len();

        // Redeliver the same emission verbatim: cursor rejects it.
        let emission = repl.replicas[&0].own_emission(1).unwrap().clone();
        repl.deliver(&mut fed, 0, emission.clone()).unwrap();
        assert_eq!(repl.telemetry().counter("replication.duplicates"), 1);

        // A later seq carrying an older epoch is stale, not applied.
        let stale = Emission {
            seq: 2,
            epoch: emission.epoch.saturating_sub(1),
            ..emission
        };
        repl.deliver(&mut fed, 0, stale).unwrap();
        assert_eq!(repl.telemetry().counter("replication.stale"), 1);
        assert_eq!(fed.node(1).unwrap().store().len(), before);
    }

    #[test]
    fn outage_parks_then_gap_catchup_and_redelivery_converge() {
        let (mut fed, mut repl, oscar, _, _) = two_node_mesh();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("repl:node1.example->node2.example", 0, 5_000)
            .build(clock.clone());
        repl.with_fault_plan(plan, RetryPolicy::no_retry());

        fed.publish(&oscar, "parked", 1000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();
        assert_eq!(repl.undelivered(), 1, "seq 1 parked during the outage");
        assert_eq!(repl.lag(), 1);

        // Outage over; the breaker opened during the outage, so let its
        // cooldown elapse too.
        clock.set(10_000);
        fed.publish(&oscar, "after the partition", 2000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();

        // Seq 2 arrived with cursor at 0 → gap → catch-up pulled seq 1.
        assert!(repl.telemetry().counter("replication.catchups") >= 1);
        assert_eq!(repl.lag(), 0);

        // The parked copy of seq 1 replays as a duplicate no-op.
        let report = repl.redeliver(&mut fed).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(repl.converged());
        assert_eq!(repl.telemetry().counter("replication.duplicates"), 1);
        assert_eq!(repl.telemetry().gauge("replication.dlq.depth"), Some(0));
    }

    #[test]
    fn killed_replica_recovers_cursor_from_its_journal() {
        let (mut fed, mut repl, oscar, _, d2) = two_node_mesh();
        fed.publish(&oscar, "one", 1000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();
        fed.publish(&oscar, "two", 2000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();
        assert!(repl.converged());

        // Crash the replica process: volatile state gone, journal kept.
        assert!(repl.kill(1));
        d2.crash();
        fed.publish(&oscar, "while dead", 3000).unwrap();
        repl.commit(&mut fed, &oscar, None).unwrap();
        assert_eq!(repl.undelivered(), 1, "shipment to the dead replica parked");

        // Recover: the journal yields the exact cursor, so pumping
        // applies only the missed emission.
        let report = repl.attach(&fed, 1, Box::new(d2)).unwrap();
        assert_eq!(report.recovered, 2, "both applied emissions recovered");
        let applied_before = repl.telemetry().counter("replication.applied");
        repl.pump(&mut fed).unwrap();
        repl.redeliver(&mut fed).unwrap();
        assert!(repl.converged());
        assert_eq!(
            repl.telemetry().counter("replication.applied") - applied_before,
            1,
            "exactly the missed emission applied — no re-application"
        );
    }

    #[test]
    fn outbox_resumes_sequence_numbers_across_restarts() {
        let disk = MemStorage::new();
        let origin = acct("acct:oscar@node1.example");
        let mut outbox = EmissionOutbox::open(origin.clone(), Box::new(disk.clone())).unwrap();
        let quad = |s: &str| EmissionQuad {
            triple: Triple::new_unchecked(
                Term::Iri(Iri::new_unchecked(s)),
                Iri::new_unchecked("http://purl.org/dc/terms/title"),
                Term::Literal(lodify_rdf::Literal::simple("x")),
            ),
            graph: Some("urn:graph:ugc".into()),
        };
        assert_eq!(
            outbox
                .record(
                    10,
                    None,
                    vec![quad("http://node1.example/media/1")],
                    vec![],
                    None
                )
                .unwrap(),
            1
        );
        assert_eq!(
            outbox
                .record(
                    11,
                    Some("trip"),
                    vec![quad("http://node1.example/media/2")],
                    vec![],
                    Some(TraceContext {
                        trace_id: 9,
                        parent_span_id: 1,
                    })
                )
                .unwrap(),
            2
        );
        assert_eq!(outbox.lag(), 2);
        assert_eq!(outbox.drain().len(), 2);
        assert_eq!(outbox.lag(), 0);

        // Restart: sequence resumes at 3; the journal re-offers all
        // emissions (idempotent apply downstream absorbs the overlap).
        let mut reopened = EmissionOutbox::open(origin, Box::new(disk)).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.lag(), 2);
        assert_eq!(
            reopened
                .record(
                    12,
                    None,
                    vec![quad("http://node1.example/media/3")],
                    vec![],
                    None
                )
                .unwrap(),
            3
        );
        // The stamped trace context survives the journal round trip.
        assert_eq!(
            reopened.drain()[1].trace,
            Some(TraceContext {
                trace_id: 9,
                parent_span_id: 1,
            })
        );
    }

    #[test]
    fn replicated_emissions_maintain_replica_live_albums() {
        use crate::albums::AlbumSpec;
        use lodify_rdf::{ns, Literal};

        let (mut fed, mut repl, oscar, _, _) = two_node_mesh();

        // Replica-local reference data: the Mole anchors a Q1 album
        // registered against *node2*, the receiving side of the link.
        let gaz = lodify_context::Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
        let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
        {
            let store = fed.node_mut(1).unwrap().store_mut();
            let g = store.default_graph();
            store.insert(
                &Triple::spo(
                    monument,
                    ns::iri::rdfs_label().as_str(),
                    Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
                ),
                g,
            );
            store.insert(
                &Triple::spo(
                    monument,
                    ns::iri::geo_geometry().as_str(),
                    Term::Literal(mole.to_literal()),
                ),
                g,
            );
        }
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 1.0);
        let (album, sub) = fed.live_subscribe(0, 1, &spec).unwrap();
        assert!(fed.live_links(1, album).is_empty());

        // An emission carrying a geolocated picture lands on the
        // replica: `apply_one` feeds the live engine the exact delta
        // it absorbed, so the standing album updates without ever
        // re-running its SPARQL on the replica.
        let pic = "http://node1.example/media/77";
        let geometry = Triple::spo(
            pic,
            ns::iri::geo_geometry().as_str(),
            Term::Literal(mole.offset_km(0.05, 0.0).to_literal()),
        );
        let additions = vec![
            Triple::spo(
                pic,
                ns::iri::rdf_type().as_str(),
                Term::Iri(ns::iri::microblog_post()),
            ),
            geometry.clone(),
            Triple::spo(
                pic,
                ns::iri::image_data().as_str(),
                Term::literal("http://node1.example/raw/77.jpg"),
            ),
        ]
        .into_iter()
        .map(|triple| EmissionQuad {
            triple,
            graph: None,
        })
        .collect();
        let emission = Emission {
            origin: oscar.clone(),
            seq: 1,
            epoch: 1,
            album: None,
            additions,
            removals: Vec::new(),
            trace: None,
        };
        repl.deliver(&mut fed, 0, emission).unwrap();
        let expected = spec.execute(fed.node(1).unwrap().store()).unwrap();
        assert_eq!(expected, ["http://node1.example/raw/77.jpg"]);
        assert_eq!(fed.live_links(1, album), expected);
        assert_eq!(fed.live_subscriber(1, sub).unwrap().links(), expected);

        // A later emission retracting the geometry retracts the
        // member on the replica's live album too.
        let retraction = Emission {
            origin: oscar,
            seq: 2,
            epoch: 2,
            album: None,
            additions: Vec::new(),
            removals: vec![geometry],
            trace: None,
        };
        repl.deliver(&mut fed, 0, retraction).unwrap();
        assert!(fed.live_links(1, album).is_empty());
        assert!(fed.live_subscriber(1, sub).unwrap().links().is_empty());
        assert!(fed.live_hub(1).unwrap().converged());
    }
}
