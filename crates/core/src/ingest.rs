//! Concurrent annotation pipeline: batched ingest over the
//! prepare / annotate / commit split.
//!
//! One upload spends most of its wall-clock inside semantic
//! annotation — broker fan-out, filtering, POI analysis — which only
//! *reads* the store. The [`IngestPool`] exploits that: for a batch of
//! uploads it runs the sequential **prepare** stage
//! ([`Platform::stage_upload`]) in capture-timestamp order, fans the
//! read-only **annotation** stage out across scoped worker threads
//! (the [`lodify_sparql::pool`] partitioning, so chunk order
//! reproduces the sequential order exactly), and then drains the
//! short **commit** stage ([`Platform::commit_staged`]) through a
//! single committer, again in capture-timestamp order, with WAL
//! appends amortized under a group-commit policy that is restored —
//! and flushed — when the batch ends.
//!
//! # Determinism
//!
//! Batched ingest produces receipts and store state byte-identical to
//! feeding the same uploads one by one through
//! [`Platform::upload`]:
//!
//! * prepare and commit run sequentially in capture-timestamp order,
//!   so pid allocation, relational rows, tag-index entries and the
//!   per-item store-write order (POI triples, picture triples,
//!   annotation triples) are exactly the serial path's;
//! * annotation reads a pinned MVCC **snapshot** of the pre-batch
//!   store ([`Platform::store_snapshot`]). The only graph a commit
//!   grows is the UGC graph, and [`lodify_lod::SemanticFilter`]
//!   discards every UGC-graph candidate before any other rule runs,
//!   so the *chosen* annotations cannot observe whether earlier batch
//!   items have committed yet. (Diagnostic counters such as
//!   `candidates_considered` may differ; they never reach receipts or
//!   the store.)
//!
//! The identity is asserted by tests in `crates/core/tests/ingest.rs`
//! and measured by bench E18.
//!
//! # Snapshot reads
//!
//! Since the MVCC refactor the annotation workers hold no borrow of
//! the live store: they pin an immutable
//! [`StoreSnapshot`](lodify_store::StoreSnapshot) (O(shards) to take)
//! and read it across the slow broker / semantic-filter calls. Any
//! caller can do the same — a pin taken before a batch keeps
//! answering at its epoch while the batch commits:
//!
//! ```
//! use lodify_core::{IngestPool, Platform, Upload};
//! use lodify_relational::WorkloadConfig;
//!
//! let mut platform = Platform::bootstrap(WorkloadConfig::small(42))?;
//! let before = platform.store_snapshot();
//!
//! let pool = IngestPool::new(2);
//! let report = pool.ingest(
//!     &mut platform,
//!     vec![Upload {
//!         user_id: 1,
//!         title: "Mole Antonelliana at dusk".into(),
//!         tags: vec!["torino".into()],
//!         ts: 1_320_000_000,
//!         gps: None,
//!         poi: None,
//!     }],
//! );
//! assert!(report.is_clean());
//!
//! // The pinned version is immutable while the platform moved on.
//! assert!(platform.store_snapshot().epoch() > before.epoch());
//! assert!(before.len() < platform.store().len());
//! # Ok::<(), lodify_core::PlatformError>(())
//! ```
//!
//! # Live albums
//!
//! Standing queries ([`crate::live`]) need no special handling here:
//! every [`Platform::commit_staged`] drains its committed delta into
//! the live engine before returning, so a batch maintains registered
//! albums commit-by-commit — the same per-delta patches, diffs and
//! push frames the serial upload path produces, in the same order.

use std::time::Duration;

use lodify_durability::GroupCommitPolicy;
use lodify_sparql::pool::run_partitioned;

use crate::error::PlatformError;
use crate::platform::{Platform, StagedLegacy, StagedUpload, Upload, UploadReceipt};

/// Outcome of one [`IngestPool::ingest`] batch.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Receipts for accepted uploads, in capture-timestamp order.
    pub receipts: Vec<UploadReceipt>,
    /// Failures keyed by the upload's index in the *input* batch
    /// (not the timestamp-sorted order), sorted by that index.
    pub failures: Vec<(usize, PlatformError)>,
    /// Error from the end-of-batch durability barrier, if the WAL
    /// flush that restores the prior group-commit policy failed. The
    /// in-memory state is still consistent; durability is degraded
    /// until the next successful flush.
    pub flush_error: Option<PlatformError>,
    /// Wall-clock spent in the sequential prepare stage.
    pub stage: Duration,
    /// Total busy time across annotation workers.
    pub annotate_busy: Duration,
    /// The slowest annotation partition — the parallel critical path.
    pub annotate_critical: Duration,
    /// Wall-clock spent in the sequential commit stage.
    pub commit: Duration,
}

impl IngestReport {
    /// Whether every upload in the batch was accepted and the
    /// durability barrier held.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.flush_error.is_none()
    }

    /// Partition-limited modeled speedup over sequential ingest, the
    /// E16 methodology: sequential cost is prepare + *total* annotation
    /// busy + commit; parallel cost replaces total busy with the
    /// slowest partition. Independent of how many cores the host
    /// actually has, so CI smoke runs measure the same thing as a
    /// 16-core box.
    pub fn modeled_speedup(&self) -> f64 {
        let sequential = self.stage + self.annotate_busy + self.commit;
        let parallel = self.stage + self.annotate_critical + self.commit;
        if parallel.is_zero() {
            1.0
        } else {
            sequential.as_secs_f64() / parallel.as_secs_f64()
        }
    }
}

/// Outcome of one [`IngestPool::annotate_legacy_batch`] run, with the
/// same counters as [`crate::batch::BatchReport`] (which it feeds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LegacyBatchOutcome {
    /// Pictures annotated and committed.
    pub processed: usize,
    /// Pictures for which at least one term auto-annotated.
    pub with_annotations: usize,
    /// Total term annotations fired.
    pub annotations_fired: usize,
    /// Pictures that failed to stage or commit.
    pub failed: usize,
}

/// A worker pool that ingests batches of uploads through the
/// prepare / annotate / commit pipeline, fanning the read-only
/// annotation stage out across scoped OS threads.
///
/// Configuration is plain data — the pool spawns threads only for the
/// duration of a batch ([`std::thread::scope`]), so it holds no
/// handles and is cheap to construct per call site.
#[derive(Debug, Clone)]
pub struct IngestPool {
    workers: usize,
    spawn_threads: bool,
    commit_policy: GroupCommitPolicy,
}

impl Default for IngestPool {
    /// A pool sized to the host's available parallelism, spawning
    /// threads, with the default group-commit batching.
    fn default() -> IngestPool {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        IngestPool::new(workers)
    }
}

impl IngestPool {
    /// A pool with `workers` annotation workers (clamped to at least
    /// one), spawning threads, with the default group-commit batching.
    pub fn new(workers: usize) -> IngestPool {
        IngestPool {
            workers: workers.max(1),
            spawn_threads: true,
            commit_policy: GroupCommitPolicy::default(),
        }
    }

    /// Disables (or re-enables) thread spawning: partitions run inline
    /// one after another with identical accounting. Benches use this
    /// to measure the partition-limited critical path on hosts with
    /// fewer cores than workers.
    pub fn with_spawn_threads(mut self, spawn_threads: bool) -> IngestPool {
        self.spawn_threads = spawn_threads;
        self
    }

    /// Overrides the group-commit policy installed for the commit
    /// stage (the prior policy is restored — and flushed — when the
    /// batch ends).
    pub fn with_commit_policy(mut self, policy: GroupCommitPolicy) -> IngestPool {
        self.commit_policy = policy;
        self
    }

    /// The configured number of annotation workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Ingests a batch of uploads. Receipts come back in
    /// capture-timestamp order; failures keep their index into the
    /// input `uploads` so callers (the deferred queue) can re-enqueue
    /// exactly the items that failed.
    ///
    /// Traced as an `ingest` root span with `ingest.prepare` (staging
    /// plus the annotation fan-out) and `ingest.commit` children;
    /// every item still counts toward the `upload.accepted` /
    /// `upload.errors` counters, and `ingest.pool.workers` /
    /// `ingest.pool.depth` gauges record the batch shape.
    pub fn ingest(&self, platform: &mut Platform, uploads: Vec<Upload>) -> IngestReport {
        let mut report = IngestReport::default();
        if uploads.is_empty() {
            return report;
        }
        let metrics = platform.obs().metrics().clone();
        metrics.set_gauge("ingest.pool.workers", self.workers as u64);
        metrics.set_gauge("ingest.pool.depth", uploads.len() as u64);
        let root = platform.obs().tracer().start("ingest");

        // Prepare: sequential, in capture-timestamp order (stable on
        // input index for equal timestamps), exactly like flushing the
        // deferred queue item by item.
        let prepare = root.child("ingest.prepare");
        let started = metrics.now_micros();
        let mut order: Vec<usize> = (0..uploads.len()).collect();
        order.sort_by_key(|&i| uploads[i].ts);
        let mut uploads: Vec<Option<Upload>> = uploads.into_iter().map(Some).collect();
        let mut staged: Vec<(usize, StagedUpload)> = Vec::with_capacity(order.len());
        for i in order {
            let upload = uploads[i].take().expect("each index staged once");
            match platform.stage_upload(upload) {
                Ok(s) => staged.push((i, s)),
                Err(e) => report.failures.push((i, e)),
            }
        }
        report.stage = Duration::from_micros(metrics.now_micros().saturating_sub(started));

        // Annotate: read-only against a pinned MVCC snapshot of the
        // pre-batch store, fanned out across contiguous partitions.
        // The pin (O(shards)) means the workers hold no borrow of the
        // live store across the slow broker/filter calls — concurrent
        // commits elsewhere (other platforms sharing a
        // `SharedDurableStore`) proceed untouched, and the snapshot
        // guarantees every worker reads the same epoch. Merging in
        // chunk order keeps the results aligned with `staged`.
        let annotator = platform.annotator();
        let snapshot = platform.store_snapshot();
        let outcomes = run_partitioned(&staged, self.workers, self.spawn_threads, |chunk| {
            chunk
                .iter()
                .map(|(_, s)| annotator.annotate(&snapshot, &s.content_input()))
                .collect()
        });
        let mut results = Vec::with_capacity(staged.len());
        for outcome in outcomes {
            report.annotate_busy += outcome.busy;
            report.annotate_critical = report.annotate_critical.max(outcome.busy);
            results.extend(outcome.out);
        }
        prepare.finish();

        // Commit: sequential, single committer, WAL appends amortized
        // under the batch group-commit policy. The restore at the end
        // flushes, so the batch is exactly as durable as the same
        // uploads issued one by one.
        let commit_span = root.child("ingest.commit");
        let started = metrics.now_micros();
        let prior = platform.swap_group_commit(self.commit_policy);
        for ((i, staged), result) in staged.into_iter().zip(results) {
            // Committing under the batch's `ingest.commit` span makes
            // each upload's emission (and the pushes it triggers
            // downstream) traceable back to this batch.
            match platform.commit_staged(staged, result, Some(&commit_span)) {
                Ok(receipt) => report.receipts.push(receipt),
                Err(e) => report.failures.push((i, e)),
            }
        }
        if let Err(e) = platform.restore_group_commit(prior) {
            report.flush_error = Some(e);
        }
        report.commit = Duration::from_micros(metrics.now_micros().saturating_sub(started));
        commit_span.finish();
        root.finish();

        report.failures.sort_by_key(|(i, _)| *i);
        let accepted = report.receipts.len() as u64;
        let errors = report.failures.len() as u64;
        if accepted > 0 {
            metrics.add("upload.accepted", accepted);
        }
        if errors > 0 {
            metrics.add("upload.errors", errors);
        }
        report
    }

    /// Runs legacy batch annotation ([`Platform::annotate_legacy`])
    /// for `pids` with the annotation stage fanned out, committing in
    /// input order under the batch group-commit policy. Feeds
    /// [`crate::batch::BatchAnnotator`].
    ///
    /// Returns the durability-barrier error, if the end-of-batch WAL
    /// flush failed; per-picture failures are survived and counted.
    pub fn annotate_legacy_batch(
        &self,
        platform: &mut Platform,
        pids: &[i64],
    ) -> Result<LegacyBatchOutcome, PlatformError> {
        let mut outcome = LegacyBatchOutcome::default();
        if pids.is_empty() {
            return Ok(outcome);
        }
        let root = platform.obs().tracer().start("ingest");

        let prepare = root.child("ingest.prepare");
        let mut staged: Vec<StagedLegacy> = Vec::with_capacity(pids.len());
        for &pid in pids {
            match platform.stage_legacy(pid) {
                Ok(s) => staged.push(s),
                Err(_) => outcome.failed += 1,
            }
        }
        let annotator = platform.annotator();
        let snapshot = platform.store_snapshot();
        let outcomes = run_partitioned(&staged, self.workers, self.spawn_threads, |chunk| {
            chunk
                .iter()
                .map(|s| annotator.annotate(&snapshot, &s.content_input()))
                .collect()
        });
        let results: Vec<_> = outcomes.into_iter().flat_map(|o| o.out).collect();
        prepare.finish();

        let commit_span = root.child("ingest.commit");
        let prior = platform.swap_group_commit(self.commit_policy);
        for (staged, result) in staged.into_iter().zip(results) {
            match platform.commit_legacy(staged.pid(), result) {
                Ok(fired) => {
                    outcome.processed += 1;
                    outcome.annotations_fired += fired;
                    if fired > 0 {
                        outcome.with_annotations += 1;
                    }
                }
                Err(_) => outcome.failed += 1,
            }
        }
        let restored = platform.restore_group_commit(prior);
        commit_span.finish();
        root.finish();
        restored?;
        Ok(outcome)
    }
}
