//! Batch annotation of legacy content.
//!
//! "There's a huge amount of content already present in our platform
//! that remains to be semantically annotated. Solving this issue
//! requires to create and introduce new automatic batch processing
//! mechanisms." (§6) — this is that mechanism: resumable chunked
//! processing over all not-yet-annotated pictures, with a report.
//!
//! Each chunk runs through the [`IngestPool`]: staging and commits
//! stay sequential (so the result is identical to annotating one
//! picture at a time) while the read-only annotation stage fans out
//! across worker threads.

use crate::error::PlatformError;
use crate::ingest::IngestPool;
use crate::platform::Platform;

/// Summary of a batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Pictures processed in this run.
    pub processed: usize,
    /// Pictures for which at least one term auto-annotated.
    pub with_annotations: usize,
    /// Total term annotations fired.
    pub annotations_fired: usize,
    /// Pictures skipped because they were already annotated.
    pub skipped: usize,
    /// Pictures that failed (should be zero; surfaced for robustness).
    pub failed: usize,
}

/// Chunked batch annotator. Holds a cursor plus the ingest pool that
/// fans each chunk's annotation stage out, so it can be driven
/// incrementally (one chunk per scheduler tick) or to completion.
#[derive(Debug, Default)]
pub struct BatchAnnotator {
    cursor: usize,
    pool: IngestPool,
}

impl BatchAnnotator {
    /// A fresh batch job with a default-sized [`IngestPool`].
    pub fn new() -> BatchAnnotator {
        BatchAnnotator::default()
    }

    /// A fresh batch job annotating through `pool`.
    pub fn with_pool(pool: IngestPool) -> BatchAnnotator {
        BatchAnnotator { cursor: 0, pool }
    }

    /// Processes up to `chunk` pending pictures. Returns the report for
    /// this chunk; [`BatchAnnotator::is_done`] flips when the cursor
    /// passes the end.
    pub fn run_chunk(
        &mut self,
        platform: &mut Platform,
        chunk: usize,
    ) -> Result<BatchReport, PlatformError> {
        let ids = platform.picture_ids();
        let mut report = BatchReport::default();
        let end = (self.cursor + chunk).min(ids.len());
        let pending: Vec<i64> = ids[self.cursor..end]
            .iter()
            .copied()
            .filter(|pid| {
                let done = platform.annotations().contains_key(pid);
                if done {
                    report.skipped += 1;
                }
                !done
            })
            .collect();
        let outcome = self.pool.annotate_legacy_batch(platform, &pending)?;
        report.processed = outcome.processed;
        report.with_annotations = outcome.with_annotations;
        report.annotations_fired = outcome.annotations_fired;
        report.failed = outcome.failed;
        self.cursor = end;
        Ok(report)
    }

    /// Whether the cursor has passed all pictures known when the last
    /// chunk ran.
    pub fn is_done(&self, platform: &Platform) -> bool {
        self.cursor >= platform.picture_ids().len()
    }

    /// Runs to completion, merging chunk reports.
    pub fn run_all(
        &mut self,
        platform: &mut Platform,
        chunk: usize,
    ) -> Result<BatchReport, PlatformError> {
        let mut total = BatchReport::default();
        while !self.is_done(platform) {
            let r = self.run_chunk(platform, chunk.max(1))?;
            total.processed += r.processed;
            total.with_annotations += r.with_annotations;
            total.annotations_fired += r.annotations_fired;
            total.skipped += r.skipped;
            total.failed += r.failed;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_relational::WorkloadConfig;

    #[test]
    fn chunked_run_covers_everything_once() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(21)).unwrap();
        let total_pictures = platform.picture_ids().len();
        let mut batch = BatchAnnotator::new();

        let first = batch.run_chunk(&mut platform, 25).unwrap();
        assert_eq!(first.processed + first.skipped, 25);
        assert!(!batch.is_done(&platform));

        let rest = batch.run_all(&mut platform, 25).unwrap();
        assert!(batch.is_done(&platform));
        assert_eq!(
            first.processed + rest.processed + first.skipped + rest.skipped,
            total_pictures
        );
        assert_eq!(platform.annotations().len(), total_pictures);
        assert_eq!(first.failed + rest.failed, 0);
    }

    #[test]
    fn rerun_skips_already_annotated() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(22)).unwrap();
        BatchAnnotator::new().run_all(&mut platform, 50).unwrap();
        let report = BatchAnnotator::new().run_all(&mut platform, 50).unwrap();
        assert_eq!(report.processed, 0);
        assert_eq!(report.skipped, platform.picture_ids().len());
    }

    #[test]
    fn batch_survives_resolver_outages() {
        // A platform whose broker includes an always-on flaky resolver
        // must still finish the batch; failures are survived per
        // picture, not fatal.
        use lodify_lod::annotator::{Annotator, AnnotatorConfig};
        use lodify_lod::resolvers::{DbpediaResolver, FlakyResolver, GeonamesResolver};
        use lodify_lod::{SemanticBroker, SemanticFilter};

        let mut platform = Platform::bootstrap(WorkloadConfig::small(24)).unwrap();
        platform.set_annotator(Annotator::new(
            SemanticBroker::new(vec![
                Box::new(FlakyResolver::new(DbpediaResolver, 2)), // fails every 2nd call
                Box::new(GeonamesResolver),
            ]),
            SemanticFilter::standard(),
            AnnotatorConfig::default(),
        ));
        let report = BatchAnnotator::new().run_all(&mut platform, 30).unwrap();
        assert_eq!(report.failed, 0, "outages never fail the batch");
        assert_eq!(report.processed, platform.picture_ids().len());
        // Failures were recorded on the annotation results.
        let total_failures: usize = platform
            .annotations()
            .values()
            .map(|a| a.resolver_failures)
            .sum();
        assert!(total_failures > 0, "the flaky resolver did fail sometimes");
    }

    #[test]
    fn batch_produces_useful_annotation_rates() {
        let mut platform = Platform::bootstrap(WorkloadConfig::small(23)).unwrap();
        let report = BatchAnnotator::new().run_all(&mut platform, 100).unwrap();
        // The workload is ~55% POI titles + city tags; a healthy
        // fraction must auto-annotate.
        assert!(
            report.with_annotations * 2 >= report.processed,
            "only {}/{} pictures annotated",
            report.with_annotations,
            report.processed
        );
    }
}
