//! Platform error type.

use std::fmt;

/// Errors from platform operations.
#[derive(Debug)]
pub enum PlatformError {
    /// Relational layer error.
    Relational(lodify_relational::RelError),
    /// Mapping/dump error.
    Mapping(lodify_d2r::D2rError),
    /// SPARQL error.
    Sparql(lodify_sparql::SparqlError),
    /// Store error.
    Store(lodify_store::StoreError),
    /// Persistence engine error (WAL, snapshot, recovery).
    Durability(lodify_durability::DurabilityError),
    /// Referenced entity missing (user, picture, album, node…).
    NotFound(String),
    /// Invalid argument (rating out of range, empty title…).
    Invalid(String),
    /// An I/O deadline elapsed (slow client, stalled socket).
    Timeout(String),
    /// A dependency is down or a fault plan injected a failure.
    Unavailable(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Relational(e) => write!(f, "relational: {e}"),
            PlatformError::Mapping(e) => write!(f, "mapping: {e}"),
            PlatformError::Sparql(e) => write!(f, "sparql: {e}"),
            PlatformError::Store(e) => write!(f, "store: {e}"),
            PlatformError::Durability(e) => write!(f, "durability: {e}"),
            PlatformError::NotFound(what) => write!(f, "not found: {what}"),
            PlatformError::Invalid(what) => write!(f, "invalid request: {what}"),
            PlatformError::Timeout(what) => write!(f, "timed out: {what}"),
            PlatformError::Unavailable(what) => write!(f, "unavailable: {what}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<lodify_relational::RelError> for PlatformError {
    fn from(e: lodify_relational::RelError) -> Self {
        PlatformError::Relational(e)
    }
}

impl From<lodify_d2r::D2rError> for PlatformError {
    fn from(e: lodify_d2r::D2rError) -> Self {
        PlatformError::Mapping(e)
    }
}

impl From<lodify_sparql::SparqlError> for PlatformError {
    fn from(e: lodify_sparql::SparqlError) -> Self {
        PlatformError::Sparql(e)
    }
}

impl From<lodify_store::StoreError> for PlatformError {
    fn from(e: lodify_store::StoreError) -> Self {
        PlatformError::Store(e)
    }
}

impl From<lodify_durability::DurabilityError> for PlatformError {
    fn from(e: lodify_durability::DurabilityError) -> Self {
        PlatformError::Durability(e)
    }
}
