//! The LODified personal-content-sharing platform — the paper's
//! primary contribution, assembled from the workspace substrates.
//!
//! * [`platform`] — the platform itself: bootstrap from a generated
//!   Coppermine database, LOD fusion, the §1.1 upload flow (context
//!   tags + triple tags), the §2.1 semanticization (D2R dump → triple
//!   store) and the §2.2 automatic semantic annotation of every new
//!   content item;
//! * [`deferred`] — the client's deferred-upload queue ("to overcome
//!   problems of limited connectivity and battery management", §1.1);
//! * [`albums`] — semantic virtual albums (§2.3): the Q1/Q2/Q3 query
//!   builder plus the relational baseline used to cross-check results;
//! * [`search`] — the mobile search flow (§4): incremental
//!   AJAX-debounced suggestions and resource → content listing;
//! * [`mashup`] — the "About" mashup (§4.1): city abstract, nearby
//!   restaurants, tourism attractions and related UGC;
//! * [`batch`] — batch re-annotation of legacy content (§6);
//! * [`ingest`] — the concurrent annotation pipeline: batched ingest
//!   over the prepare/annotate/commit split, fanning the read-only
//!   annotation stage across worker threads while staying
//!   byte-identical to sequential ingest;
//! * [`metrics`] — precision/recall/F1 scoring of annotations against
//!   workload ground truth (experiments E3/E4/E8), plus the
//!   operational [`metrics::OpsSnapshot`] over breakers, retries and
//!   dead-letter queues;
//! * [`web`] — the §3/§4 web & mobile interface: routing, HTML
//!   rendering (incl. the §1.1 friendly-format tag display) and a
//!   minimal std-only HTTP server;
//! * [`federation`] — the future-work architecture of §6: home-network
//!   nodes, WebFinger identities, FOAF profile exchange,
//!   PubSubHubbub/SparqlPuSH notification and ActivityStreams
//!   timelines, simulated in-process;
//! * [`replication`] — emission-level state replication between home
//!   nodes: CRC-framed per-node emission journals, policy-filtered
//!   links, idempotent apply with sequence-gap catch-up, and
//!   chaos-verified convergence (ROADMAP item 3);
//! * [`live`] — live albums (ROADMAP item 4): a standing-query engine
//!   that maintains materialized albums differentially from committed
//!   deltas instead of invalidating them, and a SparqlPuSH hub that
//!   ships the resulting diffs to subscribers with at-least-once
//!   delivery and idempotent apply;
//! * [`admission`] — per-tenant token-bucket quotas and queue-depth
//!   load shedding (ROADMAP item 5): cheap-to-reject admission ahead of
//!   parse/plan/eval, feeding the `/ops` degradation verdict;
//! * [`traffic`] — deterministic multi-tenant open-loop traffic
//!   generation (DetRng arrivals on a virtual clock) driving the real
//!   admission controller for E23 and the overload chaos test.

#![warn(missing_docs)]

pub mod admission;
pub mod albums;
pub mod batch;
pub mod deferred;
pub mod error;
pub mod federation;
pub mod ingest;
pub mod live;
pub mod mashup;
pub mod metrics;
pub mod platform;
pub mod replication;
pub mod search;
pub mod traffic;
pub mod web;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, ShedClass};
pub use albums::AlbumSpec;
pub use error::PlatformError;
pub use ingest::{IngestPool, IngestReport};
pub use live::{LiveService, StandingQueryEngine};
pub use mashup::{MashupConfig, MashupResult, MashupService};
pub use platform::{Platform, Upload};
pub use replication::{Emission, EmissionOutbox, Replicator, SharePolicy};
pub use search::SearchService;
