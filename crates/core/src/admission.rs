//! Per-tenant admission control and queue-depth load shedding.
//!
//! At web scale the query tier must refuse work it cannot serve in
//! time, and refuse it *cheaply* — before parsing, planning, or
//! touching the store. This module implements the two classic
//! mechanisms, deterministic under the obs [`Clock`](lodify_obs::Clock) seam so chaos
//! tests and the open-loop traffic generator drive them on a
//! [`VirtualClock`](lodify_resilience::VirtualClock):
//!
//! * **Token-bucket quotas per tenant** — each tenant refills at
//!   [`AdmissionConfig::tenant_rate_per_sec`] up to a burst of
//!   [`AdmissionConfig::tenant_burst`]; an empty bucket rejects with
//!   [`AdmissionDecision::RejectQuota`] (HTTP 429), so one hot tenant
//!   cannot starve the rest.
//! * **Queue-depth load shedding** — in-flight requests are counted by
//!   RAII [`Permit`]s; past [`AdmissionConfig::shed_depth`] the
//!   expensive classes ([`ShedClass::Expensive`]: album solves, About
//!   mashups) are shed first, and past
//!   [`AdmissionConfig::hard_depth`] everything but
//!   [`ShedClass::Critical`] operational endpoints is rejected with
//!   [`AdmissionDecision::RejectOverload`] (HTTP 503). `/ops`,
//!   `/metrics` and `/trace` are never shed: an operator must be able
//!   to see *why* the platform is shedding.
//!
//! Shedding feeds the `/ops` degradation verdict: the platform counts
//! as degraded while the in-flight depth sits at or past the shed
//! threshold or an overload shed happened within the last
//! [`AdmissionConfig::recent_shed_window_ms`] — and recovers once the
//! storm drains, which the overload chaos test asserts end-to-end.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use lodify_obs::SharedClock;

/// Tuning for [`AdmissionController`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate per tenant, tokens per second.
    pub tenant_rate_per_sec: f64,
    /// Token-bucket capacity per tenant (burst size).
    pub tenant_burst: f64,
    /// In-flight depth at which [`ShedClass::Expensive`] requests are
    /// shed.
    pub shed_depth: usize,
    /// In-flight depth at which every non-critical request is shed.
    pub hard_depth: usize,
    /// How long after the last overload shed the platform still
    /// reports itself degraded (milliseconds).
    pub recent_shed_window_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_rate_per_sec: 50.0,
            tenant_burst: 100.0,
            shed_depth: 32,
            hard_depth: 128,
            recent_shed_window_ms: 5_000,
        }
    }
}

/// How cheap a request class is to reject, which is the order load
/// shedding drops work: expensive query work first, plain pages next,
/// operational introspection never.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedClass {
    /// Operational endpoints (`/ops`, `/metrics`, `/trace/…`): never
    /// shed — they are how an operator diagnoses the overload.
    Critical,
    /// Ordinary pages and lookups.
    Normal,
    /// Query-heavy work (album solves, About-page mashups, search):
    /// the first class to shed under load.
    Expensive,
}

impl ShedClass {
    /// Classifies a request path.
    pub fn classify(path: &str) -> ShedClass {
        if path == "/ops" || path == "/metrics" || path.starts_with("/trace/") {
            ShedClass::Critical
        } else if path.starts_with("/album")
            || path.starts_with("/about/")
            || path.starts_with("/search")
            || path.starts_with("/resource")
        {
            ShedClass::Expensive
        } else {
            ShedClass::Normal
        }
    }
}

/// RAII in-flight marker: holding a permit keeps the queue-depth gauge
/// up; dropping it (request finished) releases the slot.
#[derive(Debug)]
pub struct Permit {
    depth: Arc<AtomicUsize>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The verdict for one request.
#[derive(Debug)]
pub enum AdmissionDecision {
    /// Serve it; drop the [`Permit`] when done.
    Admit(Permit),
    /// The tenant's token bucket is empty — HTTP 429.
    RejectQuota,
    /// The node is overloaded and this class is being shed — HTTP 503.
    RejectOverload,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill_us: u64,
}

/// Counter snapshot for `/ops` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionOps {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by per-tenant quota (429).
    pub shed_quota: u64,
    /// Requests shed by overload protection (503).
    pub shed_overload: u64,
    /// Requests currently in flight.
    pub queue_depth: usize,
    /// Distinct tenants seen.
    pub tenants: usize,
    /// Whether the node currently counts as shedding: depth at or past
    /// the shed threshold, or an overload shed within the recent
    /// window. Degrades the `/ops` verdict, and recovers on its own.
    pub shedding: bool,
}

/// Cloneable, thread-safe admission controller on the obs clock seam.
/// Clones share all state.
#[derive(Clone)]
pub struct AdmissionController {
    clock: SharedClock,
    config: AdmissionConfig,
    buckets: Arc<Mutex<HashMap<String, Bucket>>>,
    depth: Arc<AtomicUsize>,
    admitted: Arc<AtomicU64>,
    shed_quota: Arc<AtomicU64>,
    shed_overload: Arc<AtomicU64>,
    /// Microsecond timestamp of the last overload shed, plus one — 0
    /// means "never shed" (distinguishable from a shed at t=0).
    last_overload_us: Arc<AtomicU64>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("ops", &self.ops())
            .finish()
    }
}

impl AdmissionController {
    /// A controller reading time from `clock` (the platform passes its
    /// obs clock, so virtual-time tests control refill and recovery).
    pub fn new(clock: SharedClock, config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            clock,
            config,
            buckets: Arc::new(Mutex::new(HashMap::new())),
            depth: Arc::new(AtomicUsize::new(0)),
            admitted: Arc::new(AtomicU64::new(0)),
            shed_quota: Arc::new(AtomicU64::new(0)),
            shed_overload: Arc::new(AtomicU64::new(0)),
            last_overload_us: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides one request. `tenant` is the caller's identity
    /// (`X-Tenant` header or `tenant` query parameter; anonymous
    /// traffic shares one bucket). Checks are ordered cheapest-reject
    /// first: depth shedding costs two atomic loads, the quota check
    /// takes the bucket lock.
    pub fn admit(&self, tenant: Option<&str>, class: ShedClass) -> AdmissionDecision {
        if class == ShedClass::Critical {
            return self.admitted(false);
        }
        let now_us = self.clock.now_micros();
        let depth = self.depth.load(Ordering::SeqCst);
        let shed = depth >= self.config.hard_depth
            || (depth >= self.config.shed_depth && class == ShedClass::Expensive);
        if shed {
            self.shed_overload.fetch_add(1, Ordering::SeqCst);
            self.last_overload_us
                .store(now_us.saturating_add(1), Ordering::SeqCst);
            return AdmissionDecision::RejectOverload;
        }
        let tenant = tenant.unwrap_or("anon");
        let mut buckets = lock(&self.buckets);
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.config.tenant_burst,
            last_refill_us: now_us,
        });
        let elapsed_us = now_us.saturating_sub(bucket.last_refill_us);
        bucket.tokens = (bucket.tokens
            + elapsed_us as f64 / 1_000_000.0 * self.config.tenant_rate_per_sec)
            .min(self.config.tenant_burst);
        bucket.last_refill_us = now_us;
        if bucket.tokens < 1.0 {
            drop(buckets);
            self.shed_quota.fetch_add(1, Ordering::SeqCst);
            return AdmissionDecision::RejectQuota;
        }
        bucket.tokens -= 1.0;
        drop(buckets);
        self.admitted(true)
    }

    fn admitted(&self, _counted: bool) -> AdmissionDecision {
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.admitted.fetch_add(1, Ordering::SeqCst);
        AdmissionDecision::Admit(Permit {
            depth: Arc::clone(&self.depth),
        })
    }

    /// Current in-flight request count.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Counter snapshot plus the recoverable shedding verdict.
    pub fn ops(&self) -> AdmissionOps {
        let depth = self.depth.load(Ordering::SeqCst);
        let last = self.last_overload_us.load(Ordering::SeqCst);
        let recent_shed = last > 0
            && self
                .clock
                .now_micros()
                .saturating_sub(last.saturating_sub(1))
                <= self.config.recent_shed_window_ms.saturating_mul(1_000);
        AdmissionOps {
            admitted: self.admitted.load(Ordering::SeqCst),
            shed_quota: self.shed_quota.load(Ordering::SeqCst),
            shed_overload: self.shed_overload.load(Ordering::SeqCst),
            queue_depth: depth,
            tenants: lock(&self.buckets).len(),
            shedding: depth >= self.config.shed_depth || recent_shed,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_resilience::VirtualClock;
    use std::sync::Arc as StdArc;

    fn controller(config: AdmissionConfig) -> (AdmissionController, VirtualClock) {
        let clock = VirtualClock::starting_at(1_000);
        (
            AdmissionController::new(StdArc::new(clock.clone()), config),
            clock,
        )
    }

    #[test]
    fn quota_rejects_and_refills_on_virtual_time() {
        let (adm, clock) = controller(AdmissionConfig {
            tenant_rate_per_sec: 10.0,
            tenant_burst: 2.0,
            ..AdmissionConfig::default()
        });
        let a = adm.admit(Some("t1"), ShedClass::Normal);
        let b = adm.admit(Some("t1"), ShedClass::Normal);
        assert!(matches!(a, AdmissionDecision::Admit(_)));
        assert!(matches!(b, AdmissionDecision::Admit(_)));
        assert!(matches!(
            adm.admit(Some("t1"), ShedClass::Normal),
            AdmissionDecision::RejectQuota
        ));
        // Another tenant has its own bucket.
        assert!(matches!(
            adm.admit(Some("t2"), ShedClass::Normal),
            AdmissionDecision::Admit(_)
        ));
        // 100 ms refills one token at 10/s.
        clock.advance(100);
        assert!(matches!(
            adm.admit(Some("t1"), ShedClass::Normal),
            AdmissionDecision::Admit(_)
        ));
        assert_eq!(adm.ops().shed_quota, 1);
        assert_eq!(adm.ops().tenants, 2);
    }

    #[test]
    fn depth_sheds_expensive_first_then_everything() {
        let (adm, _clock) = controller(AdmissionConfig {
            tenant_rate_per_sec: 1e9,
            tenant_burst: 1e9,
            shed_depth: 2,
            hard_depth: 4,
            ..AdmissionConfig::default()
        });
        let mut permits = Vec::new();
        for _ in 0..2 {
            match adm.admit(None, ShedClass::Normal) {
                AdmissionDecision::Admit(p) => permits.push(p),
                other => panic!("expected admit, got {other:?}"),
            }
        }
        // Depth 2 = shed threshold: expensive shed, normal still served.
        assert!(matches!(
            adm.admit(None, ShedClass::Expensive),
            AdmissionDecision::RejectOverload
        ));
        for _ in 0..2 {
            match adm.admit(None, ShedClass::Normal) {
                AdmissionDecision::Admit(p) => permits.push(p),
                other => panic!("expected admit, got {other:?}"),
            }
        }
        // Depth 4 = hard threshold: normal shed too, critical never.
        assert!(matches!(
            adm.admit(None, ShedClass::Normal),
            AdmissionDecision::RejectOverload
        ));
        let critical = match adm.admit(None, ShedClass::Critical) {
            AdmissionDecision::Admit(p) => p,
            other => panic!("critical is never shed, got {other:?}"),
        };
        // Draining the permits reopens admission.
        drop(permits);
        assert_eq!(adm.queue_depth(), 1, "critical permit still held");
        drop(critical);
        assert_eq!(adm.queue_depth(), 0);
    }

    #[test]
    fn shedding_verdict_recovers_after_the_window() {
        let (adm, clock) = controller(AdmissionConfig {
            shed_depth: 1,
            hard_depth: 1,
            recent_shed_window_ms: 1_000,
            ..AdmissionConfig::default()
        });
        let permit = match adm.admit(None, ShedClass::Normal) {
            AdmissionDecision::Admit(p) => p,
            other => panic!("expected admit, got {other:?}"),
        };
        assert!(matches!(
            adm.admit(None, ShedClass::Normal),
            AdmissionDecision::RejectOverload
        ));
        assert!(adm.ops().shedding, "at depth and freshly shed");
        drop(permit);
        assert!(adm.ops().shedding, "recent shed keeps the verdict");
        clock.advance(1_001);
        assert!(!adm.ops().shedding, "window elapsed: recovered");
    }

    #[test]
    fn classify_orders_paths_by_shed_cost() {
        assert_eq!(ShedClass::classify("/ops"), ShedClass::Critical);
        assert_eq!(ShedClass::classify("/metrics"), ShedClass::Critical);
        assert_eq!(ShedClass::classify("/trace/abc"), ShedClass::Critical);
        assert_eq!(ShedClass::classify("/album"), ShedClass::Expensive);
        assert_eq!(ShedClass::classify("/about/1"), ShedClass::Expensive);
        assert_eq!(ShedClass::classify("/search"), ShedClass::Expensive);
        assert_eq!(ShedClass::classify("/"), ShedClass::Normal);
        assert_eq!(ShedClass::classify("/picture/1"), ShedClass::Normal);
    }
}
