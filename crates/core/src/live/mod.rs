//! Live albums: differential standing-query maintenance plus
//! SparqlPuSH diff push (§2.3 + §6).
//!
//! ROADMAP item 4 calls the [`crate::albums::AlbumCache`]
//! alone a recompute storm: any upload touching a relevant predicate
//! invalidates whole materialized albums and re-runs their SPARQL —
//! O(albums) work per commit. This module replaces invalidation with
//! **maintenance**:
//!
//! * [`engine::StandingQueryEngine`] registers [`AlbumSpec`] queries
//!   and turns each committed delta batch into [`engine::AlbumDiff`]s
//!   by delta-joining against retained per-resource support counts —
//!   O(delta) work, flat in the number of registered albums (bench
//!   E20).
//! * [`push::PushHub`] ships those diffs to subscribers with
//!   at-least-once delivery and idempotent apply — the SparqlPuSH leg
//!   the paper's §6 leaves as future work.
//! * [`LiveService`] glues both to the platform: it patches the
//!   album cache in place (so views after a commit are *hits*), feeds
//!   the hub, and exposes `/ops` counters.

pub mod engine;
pub mod push;

pub use engine::{AlbumDiff, EngineStats, LiveAlbumId, Rank, StandingQueryEngine};
pub use push::{PushHub, PushShipment, SubscriberAlbum, SubscriberId, PUSH_MAX_ATTEMPTS};

use lodify_obs::{Metrics, Obs, TraceContext, Tracer};
use lodify_rdf::Triple;
use lodify_resilience::ReplayReport;
use lodify_store::Store;

use crate::albums::{AlbumCache, AlbumSpec};
use crate::metrics::LiveOps;

/// Engine + hub, wired for the platform: registered standing queries
/// are maintained on every commit, their cache entries patched in
/// place, and resulting diffs pushed to subscribers.
pub struct LiveService {
    engine: StandingQueryEngine,
    hub: PushHub,
    metrics: Option<Metrics>,
    tracer: Option<Tracer>,
}

impl Default for LiveService {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveService {
    /// A service with no registered albums; [`Self::on_commit`] is a
    /// near-no-op until the first [`Self::register`].
    pub fn new() -> LiveService {
        LiveService {
            engine: StandingQueryEngine::new(),
            hub: PushHub::new(),
            metrics: None,
            tracer: None,
        }
    }

    /// Attaches observability: `live.patch` / `live.push` spans plus
    /// mirrored counters.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.metrics = Some(obs.metrics().clone());
        self.tracer = Some(obs.tracer().clone());
        self.hub.set_observability(obs);
    }

    /// The standing-query engine.
    pub fn engine(&self) -> &StandingQueryEngine {
        &self.engine
    }

    /// The push hub.
    pub fn hub(&self) -> &PushHub {
        &self.hub
    }

    /// Mutable access to the push hub (fault plans, chaos controls).
    pub fn hub_mut(&mut self) -> &mut PushHub {
        &mut self.hub
    }

    /// Registers a standing query, builds its state from `store` and
    /// seeds the album cache so the first view is already a hit.
    pub fn register(
        &mut self,
        store: &Store,
        spec: &AlbumSpec,
        cache: Option<&AlbumCache>,
    ) -> LiveAlbumId {
        let id = self.engine.register(store, spec);
        if let Some(cache) = cache {
            cache.patch(store, spec, self.engine.links(id).to_vec());
        }
        id
    }

    /// Subscribes `callback` to a registered album's diff stream and
    /// ships the seeding snapshot frame immediately, so a healthy
    /// subscriber starts converged rather than one pump behind.
    pub fn subscribe(&mut self, callback: &str, album: LiveAlbumId) -> SubscriberId {
        let id = self.hub.subscribe(callback, album, &self.engine);
        self.hub.pump();
        id
    }

    /// Maintains every registered album across one committed delta
    /// batch: delta-join, cache patch, diff push. Returns the number
    /// of albums whose answer changed. `trace` is the causal context
    /// of the commit being maintained; the `live.patch` span and every
    /// produced diff stitch under it.
    pub fn on_commit(
        &mut self,
        store: &Store,
        cache: Option<&AlbumCache>,
        additions: &[Triple],
        removals: &[Triple],
        trace: Option<TraceContext>,
    ) -> usize {
        if self.engine.is_empty() {
            return 0;
        }
        let span = self
            .tracer
            .as_ref()
            .map(|t| t.start_with_context("live.patch", trace));
        let ctx = span.as_ref().and_then(|s| s.context()).or(trace);
        let mut diffs = self.engine.apply(store, additions, removals);
        drop(span);
        if let Some(metrics) = &self.metrics {
            metrics.add("live.deltas", (additions.len() + removals.len()) as u64);
            metrics.add("live.diffs", diffs.len() as u64);
        }
        for diff in &mut diffs {
            diff.trace = ctx;
            if let Some(cache) = cache {
                cache.patch(
                    store,
                    self.engine.spec(diff.album),
                    self.engine.links(diff.album).to_vec(),
                );
            }
            self.hub.offer(diff);
        }
        if !diffs.is_empty() && !self.hub.is_empty() {
            self.hub.pump();
        }
        diffs.len()
    }

    /// Crash recovery: rebuilds the standing-query state from the
    /// (recovered) store and re-seeds the cache entries.
    pub fn rebuild(&mut self, store: &Store, cache: Option<&AlbumCache>) {
        self.engine.rebuild(store);
        if let Some(cache) = cache {
            for id in 0..self.engine.len() {
                cache.patch(store, self.engine.spec(id), self.engine.links(id).to_vec());
            }
        }
    }

    /// Ships pending diff backlogs (e.g. after a partition heals).
    pub fn pump(&mut self) {
        self.hub.pump();
    }

    /// Replays the push dead-letter queue.
    pub fn redeliver(&mut self) -> ReplayReport {
        self.hub.redeliver()
    }

    /// Live maintenance + push counters for `/ops`.
    pub fn ops(&self) -> LiveOps {
        let stats = self.engine.stats();
        LiveOps {
            albums: self.engine.len(),
            deltas: stats.deltas,
            patched_albums: stats.patched_albums,
            refreshes: stats.refreshes,
            diffs: stats.diffs,
            push: self.hub.ops(),
        }
    }
}
