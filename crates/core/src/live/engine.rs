//! Differential maintenance of standing album queries.
//!
//! [`StandingQueryEngine`] keeps a set of registered [`AlbumSpec`]s
//! *live*: each committed batch of quad deltas is delta-joined against
//! the engine's retained per-resource binding state instead of
//! re-running the album's SPARQL query, and the engine emits
//! [`AlbumDiff`]s describing exactly what changed.
//!
//! # How a delta becomes a diff
//!
//! 1. **Affected-set derivation.** Every delta triple is routed by
//!    predicate: geometry/type/link/rating/maker deltas map to the
//!    `(album, resource)` pairs they can influence — found through the
//!    anchor grid (a spatial index over monument anchors, so the probe
//!    cost is flat in the number of registered albums) and the
//!    `tracked` reverse index of retained resources. Label, anchor
//!    geometry and `foaf:name` deltas can move an album's *anchors* or
//!    friend set, so they schedule a full refresh of that album alone.
//! 2. **Support re-evaluation.** Each affected pair is re-evaluated
//!    once against the post-commit store into a `ResourceState` of
//!    per-binding support counts (geometry pairs in radius × social
//!    derivation paths × rating bindings). A deleted triple therefore
//!    retracts exactly the solutions it justified: membership only
//!    drops when a factor's count reaches zero. Re-evaluating against
//!    the post-state makes the step idempotent and insensitive to the
//!    ordering of deltas inside a commit batch.
//! 3. **Diffing.** Touched albums recompute their canonical member
//!    order — a pure function of `(rating, link)` thanks to the
//!    `ORDER BY DESC(?points) ?link` tail [`AlbumSpec::to_sparql`]
//!    emits — and the old/new orderings are diffed into upserts,
//!    removals and visible-position moves.
//!
//! The invariant tested to the byte: after any interleaving of
//! uploads, removals and re-annotations, [`StandingQueryEngine::links`]
//! equals [`AlbumSpec::execute`] over the same store.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use lodify_obs::TraceContext;
use lodify_rdf::{ns, Iri, Literal, Point, Term, Triple};
use lodify_store::{Store, TermId};

use crate::albums::AlbumSpec;

/// Handle of a registered standing query.
pub type LiveAlbumId = usize;

/// Anchor-grid cell size in degrees (~5.5 km of latitude): coarse
/// enough that a probe touches a 3×3 ring for paper-scale radii, fine
/// enough that distinct monuments land in distinct cells.
const CELL_DEG: f64 = 0.05;
const KM_PER_DEG: f64 = 111.195;

/// Sort value of one `?points` binding, mirroring the SPARQL engine's
/// `SortKey` semantics: numeric literals compare by `f64::total_cmp`,
/// anything else by lexical form, and every number sorts before any
/// string.
#[derive(Debug, Clone, PartialEq)]
pub enum Rank {
    /// A rating with a numeric interpretation.
    Num(f64),
    /// A non-numeric rating literal (lexical form).
    Str(String),
}

impl Rank {
    /// The sort value of a rating term.
    pub fn of(term: &Term) -> Rank {
        if let Term::Literal(lit) = term {
            if let Some(n) = lit.as_f64() {
                return Rank::Num(n);
            }
        }
        Rank::Str(term.lexical().to_string())
    }

    /// Ascending comparison (the SPARQL `SortKey` order).
    pub fn cmp_asc(&self, other: &Rank) -> Ordering {
        match (self, other) {
            (Rank::Num(a), Rank::Num(b)) => a.total_cmp(b),
            (Rank::Str(a), Rank::Str(b)) => a.cmp(b),
            (Rank::Num(_), Rank::Str(_)) => Ordering::Less,
            (Rank::Str(_), Rank::Num(_)) => Ordering::Greater,
        }
    }
}

/// Canonical member order: best rating first (`DESC(?points)`), link
/// ascending as the tie-breaker; both ranks `None` (unrated albums)
/// leaves the link as the only key.
pub fn member_order(a: &(String, Option<Rank>), b: &(String, Option<Rank>)) -> Ordering {
    match (&a.1, &b.1) {
        (Some(ra), Some(rb)) => rb.cmp_asc(ra).then_with(|| a.0.cmp(&b.0)),
        _ => a.0.cmp(&b.0),
    }
}

/// What changed in one album as a consequence of one committed delta
/// batch. `upserts` carry the member's new rank (absolute, so applying
/// a diff stream is idempotent), `removals` drop members, and `moved`
/// reports position changes inside the visible (post-`LIMIT`) window
/// for observability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlbumDiff {
    /// The registered album this diff belongs to.
    pub album: LiveAlbumId,
    /// Members added or re-ranked: `(link, new rank)`.
    pub upserts: Vec<(String, Option<Rank>)>,
    /// Members that lost their last supporting solution.
    pub removals: Vec<String>,
    /// Visible position changes: `(link, old index, new index)`.
    pub moved: Vec<(String, usize, usize)>,
    /// Causal context of the commit that produced this diff. Travels
    /// with the diff into the push hub so `live.push` spans on the
    /// delivering node stitch under the originating commit's trace.
    pub trace: Option<TraceContext>,
}

impl AlbumDiff {
    /// True when the delta batch left the album unchanged.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removals.is_empty()
    }

    /// Number of membership operations carried.
    pub fn ops(&self) -> usize {
        self.upserts.len() + self.removals.len()
    }
}

/// Per-binding support counts for one `(album, resource)` pair: how
/// many derivations of each BGP factor currently justify the
/// resource's membership. Membership requires every factor non-zero,
/// so removing one of two supporting geometry triples (say) keeps the
/// member — exactly the retract-what-you-justified semantics.
#[derive(Debug, Clone, Default, PartialEq)]
struct ResourceState {
    /// `?resource a sioct:MicroblogPost` matches.
    typed: u32,
    /// `(geometry literal, anchor)` pairs within the album radius.
    geo_support: u32,
    /// `comm:image-data` links with their triple multiplicity.
    links: BTreeMap<String, u32>,
    /// `maker → knows → friend(name)` derivation paths (social albums).
    social_paths: u32,
    /// `rev:rating` bindings, as sort values (rated albums).
    ratings: Vec<Rank>,
}

impl ResourceState {
    fn supported(&self, social: bool, rated: bool) -> bool {
        self.typed > 0
            && self.geo_support > 0
            && !self.links.is_empty()
            && (!social || self.social_paths > 0)
            && (!rated || !self.ratings.is_empty())
    }

    /// The rating that wins `DESC(?points)` for this resource.
    fn best_rank(&self) -> Option<Rank> {
        self.ratings.iter().max_by(|a, b| a.cmp_asc(b)).cloned()
    }
}

/// One registered standing query plus its retained state.
struct LiveAlbum {
    spec: AlbumSpec,
    /// The monument label literal the query anchors on.
    label: Literal,
    /// Monument subjects currently carrying that label.
    anchor_subjects: BTreeSet<TermId>,
    /// Their geometry points — the album's spatial anchors.
    anchors: Vec<Point>,
    /// Retained binding set: supported resources only.
    resources: HashMap<TermId, ResourceState>,
    /// Full membership: link → best rank.
    members: BTreeMap<String, Option<Rank>>,
    /// Canonical visible answer (post-`LIMIT`), byte-equal to
    /// [`AlbumSpec::execute`].
    visible: Vec<String>,
}

impl LiveAlbum {
    fn recompute_members(&self) -> BTreeMap<String, Option<Rank>> {
        let rated = self.spec.order_by_rating;
        let mut members: BTreeMap<String, Option<Rank>> = BTreeMap::new();
        for state in self.resources.values() {
            let rank = if rated { state.best_rank() } else { None };
            for link in state.links.keys() {
                match members.get_mut(link) {
                    None => {
                        members.insert(link.clone(), rank.clone());
                    }
                    Some(best) => {
                        let better = match (&rank, &*best) {
                            (Some(r), Some(b)) => r.cmp_asc(b) == Ordering::Greater,
                            _ => false,
                        };
                        if better {
                            *best = rank.clone();
                        }
                    }
                }
            }
        }
        members
    }

    fn visible_of(&self, members: &BTreeMap<String, Option<Rank>>) -> Vec<String> {
        let mut ordered: Vec<(String, Option<Rank>)> = members
            .iter()
            .map(|(l, r)| (l.clone(), r.clone()))
            .collect();
        ordered.sort_by(member_order);
        let mut links: Vec<String> = ordered.into_iter().map(|(l, _)| l).collect();
        if let Some(limit) = self.spec.limit {
            links.truncate(limit);
        }
        links
    }
}

/// The predicate vocabulary, resolved once per construction (Iris) and
/// once per delta batch (store ids).
struct PredIris {
    label: Iri,
    geometry: Iri,
    ty: Iri,
    image: Iri,
    maker: Iri,
    name: Iri,
    knows: Iri,
    rating: Iri,
}

impl PredIris {
    fn new() -> PredIris {
        PredIris {
            label: ns::iri::rdfs_label(),
            geometry: ns::iri::geo_geometry(),
            ty: ns::iri::rdf_type(),
            image: ns::iri::image_data(),
            maker: ns::iri::foaf_maker(),
            name: ns::iri::foaf_name(),
            knows: ns::iri::foaf_knows(),
            rating: ns::iri::rev_rating(),
        }
    }
}

#[derive(Clone, Copy)]
struct PredIds {
    geometry: Option<TermId>,
    ty: Option<TermId>,
    image: Option<TermId>,
    maker: Option<TermId>,
    name: Option<TermId>,
    knows: Option<TermId>,
    rating: Option<TermId>,
    post: Option<TermId>,
}

impl PredIds {
    fn resolve(store: &Store, iris: &PredIris) -> PredIds {
        let id = |iri: &Iri| store.id_of(&Term::Iri(iri.clone()));
        PredIds {
            geometry: id(&iris.geometry),
            ty: id(&iris.ty),
            image: id(&iris.image),
            maker: id(&iris.maker),
            name: id(&iris.name),
            knows: id(&iris.knows),
            rating: id(&iris.rating),
            post: store.id_of(&Term::Iri(ns::iri::microblog_post())),
        }
    }
}

/// Maintenance counters, surfaced through
/// [`LiveOps`](crate::metrics::LiveOps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Delta triples routed through the engine.
    pub deltas: u64,
    /// Albums patched via pair re-evaluation.
    pub patched_albums: u64,
    /// Full album refreshes (anchor or friend-set changes, recovery).
    pub refreshes: u64,
    /// `(album, resource)` support re-evaluations.
    pub resource_evals: u64,
    /// Non-empty diffs emitted.
    pub diffs: u64,
}

/// Incremental evaluator for registered album queries. See the module
/// docs for the delta → diff pipeline.
pub struct StandingQueryEngine {
    albums: Vec<LiveAlbum>,
    preds: PredIris,
    /// Anchor grid: cell → (album, anchor point). Probes are flat in
    /// the number of registered albums.
    grid: HashMap<(i32, i32), Vec<(LiveAlbumId, Point)>>,
    max_radius_km: f64,
    /// Resources with retained state, per album — the removal side of
    /// the delta-join.
    tracked: HashMap<TermId, BTreeSet<LiveAlbumId>>,
    /// Anchor subject → albums anchored on it.
    anchor_index: HashMap<TermId, BTreeSet<LiveAlbumId>>,
    /// Monument label literal → albums anchored on it.
    label_index: HashMap<Literal, Vec<LiveAlbumId>>,
    /// `friend_of` name → social albums filtering on it.
    friend_index: HashMap<String, Vec<LiveAlbumId>>,
    stats: EngineStats,
}

impl Default for StandingQueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StandingQueryEngine {
    /// An engine with no registered albums; [`Self::apply`] is a
    /// near-no-op until the first [`Self::register`].
    pub fn new() -> StandingQueryEngine {
        StandingQueryEngine {
            albums: Vec::new(),
            preds: PredIris::new(),
            grid: HashMap::new(),
            max_radius_km: 0.0,
            tracked: HashMap::new(),
            anchor_index: HashMap::new(),
            label_index: HashMap::new(),
            friend_index: HashMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// Registers a standing query and builds its initial state from
    /// `store`. Returns the album's handle.
    pub fn register(&mut self, store: &Store, spec: &AlbumSpec) -> LiveAlbumId {
        let id = self.albums.len();
        let label = Literal::lang(&spec.monument_label, &spec.label_lang)
            .unwrap_or_else(|_| Literal::simple(&spec.monument_label));
        self.albums.push(LiveAlbum {
            spec: spec.clone(),
            label: label.clone(),
            anchor_subjects: BTreeSet::new(),
            anchors: Vec::new(),
            resources: HashMap::new(),
            members: BTreeMap::new(),
            visible: Vec::new(),
        });
        self.label_index.entry(label).or_default().push(id);
        if let Some(name) = &spec.friend_of {
            self.friend_index.entry(name.clone()).or_default().push(id);
        }
        self.max_radius_km = self.max_radius_km.max(spec.radius_km);
        self.refresh(store, id);
        self.settle(id);
        id
    }

    /// Number of registered albums.
    pub fn len(&self) -> usize {
        self.albums.len()
    }

    /// True when no albums are registered.
    pub fn is_empty(&self) -> bool {
        self.albums.is_empty()
    }

    /// The maintained answer — canonical order, post-`LIMIT` — kept
    /// byte-equal to [`AlbumSpec::execute`] over the same store.
    pub fn links(&self, id: LiveAlbumId) -> &[String] {
        &self.albums[id].visible
    }

    /// Full membership with ranks, in canonical order — the snapshot a
    /// new subscriber is seeded with.
    pub fn members(&self, id: LiveAlbumId) -> Vec<(String, Option<Rank>)> {
        let album = &self.albums[id];
        let mut out: Vec<(String, Option<Rank>)> = album
            .members
            .iter()
            .map(|(l, r)| (l.clone(), r.clone()))
            .collect();
        out.sort_by(member_order);
        out
    }

    /// The registered spec.
    pub fn spec(&self, id: LiveAlbumId) -> &AlbumSpec {
        &self.albums[id].spec
    }

    /// Maintenance counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Rebuilds every album's retained state from `store` — the
    /// crash-recovery path: after a WAL replay restores the store, one
    /// `rebuild` call restores the standing-query state.
    pub fn rebuild(&mut self, store: &Store) {
        for id in 0..self.albums.len() {
            self.refresh(store, id);
            self.settle(id);
        }
    }

    /// Evaluates one committed delta batch and patches every affected
    /// album, returning the non-empty diffs.
    pub fn apply(
        &mut self,
        store: &Store,
        additions: &[Triple],
        removals: &[Triple],
    ) -> Vec<AlbumDiff> {
        if self.albums.is_empty() || (additions.is_empty() && removals.is_empty()) {
            return Vec::new();
        }
        self.stats.deltas += (additions.len() + removals.len()) as u64;
        let ids = PredIds::resolve(store, &self.preds);

        // Phase 1 — route deltas to affected albums/pairs.
        let mut refresh: BTreeSet<LiveAlbumId> = BTreeSet::new();
        let mut pairs: BTreeSet<(LiveAlbumId, TermId)> = BTreeSet::new();
        for t in additions.iter().chain(removals.iter()) {
            self.route_delta(store, &ids, t, &mut refresh, &mut pairs);
        }

        // Phase 2 — full refreshes, then idempotent pair re-evaluation
        // against the post-commit store.
        for &aid in &refresh {
            self.refresh(store, aid);
        }
        let mut evals = Vec::new();
        for &(aid, sid) in &pairs {
            if refresh.contains(&aid) {
                continue;
            }
            let album = &self.albums[aid];
            evals.push((
                aid,
                sid,
                eval_resource(store, &ids, &album.spec, &album.anchors, sid),
            ));
        }
        self.stats.resource_evals += evals.len() as u64;
        let mut touched: BTreeSet<LiveAlbumId> = refresh.clone();
        for (aid, sid, state) in evals {
            touched.insert(aid);
            self.set_state(aid, sid, state);
        }
        self.stats.patched_albums += touched.len().saturating_sub(refresh.len()) as u64;

        // Phase 3 — recompute canonical answers and diff.
        let mut diffs = Vec::new();
        for aid in touched {
            let album = &self.albums[aid];
            let new_members = album.recompute_members();
            let new_visible = album.visible_of(&new_members);
            let diff = diff_members(
                aid,
                &album.members,
                &new_members,
                &album.visible,
                &new_visible,
            );
            let album = &mut self.albums[aid];
            album.members = new_members;
            album.visible = new_visible;
            if !diff.is_empty() {
                self.stats.diffs += 1;
                diffs.push(diff);
            }
        }
        diffs
    }

    /// Routes one delta triple to the albums and `(album, resource)`
    /// pairs it can influence.
    fn route_delta(
        &self,
        store: &Store,
        ids: &PredIds,
        t: &Triple,
        refresh: &mut BTreeSet<LiveAlbumId>,
        pairs: &mut BTreeSet<(LiveAlbumId, TermId)>,
    ) {
        let p = &t.predicate;
        let sid = store.id_of(&t.subject);
        if *p == self.preds.label {
            // A monument gained or lost the anchoring label.
            if let Term::Literal(l) = &t.object {
                if let Some(albums) = self.label_index.get(l) {
                    refresh.extend(albums.iter().copied());
                }
            }
            if let Some(sid) = sid {
                if let Some(albums) = self.anchor_index.get(&sid) {
                    refresh.extend(albums.iter().copied());
                }
            }
        } else if *p == self.preds.geometry {
            let Some(sid) = sid else { return };
            // An anchor moved: the whole album re-anchors.
            if let Some(albums) = self.anchor_index.get(&sid) {
                refresh.extend(albums.iter().copied());
            }
            // A resource moved: pair with albums near either the old
            // or the new location (the delta literal carries the
            // point) plus every album currently retaining it.
            if let Term::Literal(l) = &t.object {
                if let Ok(point) = Point::from_literal(l) {
                    for aid in self.probe(point) {
                        pairs.insert((aid, sid));
                    }
                }
            }
            self.pair_tracked(sid, |_| true, pairs);
        } else if *p == self.preds.ty || *p == self.preds.image {
            let Some(sid) = sid else { return };
            self.pair_near(store, ids, sid, |_| true, pairs);
        } else if *p == self.preds.rating {
            let Some(sid) = sid else { return };
            self.pair_near(store, ids, sid, |spec| spec.order_by_rating, pairs);
        } else if *p == self.preds.maker {
            let Some(sid) = sid else { return };
            self.pair_near(store, ids, sid, |spec| spec.friend_of.is_some(), pairs);
        } else if *p == self.preds.name {
            // A person gained/lost a name some album filters on: the
            // friend set changes, so those albums refresh.
            if let Term::Literal(l) = &t.object {
                if let Some(albums) = self.friend_index.get(l.value()) {
                    refresh.extend(albums.iter().copied());
                }
            }
        } else if *p == self.preds.knows {
            // A maker's friendship changed: every resource by that
            // maker may enter or leave social albums.
            let Some(maker) = sid else { return };
            let Some(maker_pred) = ids.maker else { return };
            let resources: Vec<TermId> = store
                .match_ids(None, Some(maker_pred), Some(maker))
                .map(|(s, _, _)| s)
                .collect();
            for rid in resources {
                self.pair_near(store, ids, rid, |spec| spec.friend_of.is_some(), pairs);
            }
        }
    }

    /// Pairs `sid` with every album retaining it that passes `keep`.
    fn pair_tracked<F: Fn(&AlbumSpec) -> bool>(
        &self,
        sid: TermId,
        keep: F,
        pairs: &mut BTreeSet<(LiveAlbumId, TermId)>,
    ) {
        if let Some(albums) = self.tracked.get(&sid) {
            for &aid in albums {
                if keep(&self.albums[aid].spec) {
                    pairs.insert((aid, sid));
                }
            }
        }
    }

    /// Pairs `sid` with tracked albums plus albums whose anchors lie
    /// within reach of the resource's (post-state) geometry.
    fn pair_near<F: Fn(&AlbumSpec) -> bool + Copy>(
        &self,
        store: &Store,
        ids: &PredIds,
        sid: TermId,
        keep: F,
        pairs: &mut BTreeSet<(LiveAlbumId, TermId)>,
    ) {
        self.pair_tracked(sid, keep, pairs);
        let Some(geom) = ids.geometry else { return };
        for (_, _, o) in store.match_ids(Some(sid), Some(geom), None) {
            let Some(Term::Literal(l)) = store.term_of(o) else {
                continue;
            };
            let Ok(point) = Point::from_literal(l) else {
                continue;
            };
            for aid in self.probe(point) {
                if keep(&self.albums[aid].spec) {
                    pairs.insert((aid, sid));
                }
            }
        }
    }

    /// Albums with an anchor within their radius of `point`.
    fn probe(&self, point: Point) -> BTreeSet<LiveAlbumId> {
        let mut out = BTreeSet::new();
        if self.grid.is_empty() {
            return out;
        }
        let steps_lat = (self.max_radius_km / KM_PER_DEG / CELL_DEG).ceil() as i32 + 1;
        let coslat = point.lat.to_radians().cos().max(0.01);
        let steps_lon = (self.max_radius_km / (KM_PER_DEG * coslat) / CELL_DEG).ceil() as i32 + 1;
        let (cx, cy) = cell_of(point);
        for dx in -steps_lon..=steps_lon {
            for dy in -steps_lat..=steps_lat {
                let Some(entries) = self.grid.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &(aid, anchor) in entries {
                    if point.intersects(anchor, self.albums[aid].spec.radius_km) {
                        out.insert(aid);
                    }
                }
            }
        }
        out
    }

    /// Rebuilds one album from the store: re-resolves its anchors,
    /// re-enumerates candidates (geo index ∪ current members) and
    /// re-evaluates each. Used at registration, after anchor/friend
    /// deltas, and for crash recovery.
    fn refresh(&mut self, store: &Store, aid: LiveAlbumId) {
        self.stats.refreshes += 1;
        let ids = PredIds::resolve(store, &self.preds);
        let (spec, label, old_anchors, old_subjects, old_resources) = {
            let album = &self.albums[aid];
            (
                album.spec.clone(),
                album.label.clone(),
                album.anchors.clone(),
                album.anchor_subjects.clone(),
                album.resources.keys().copied().collect::<Vec<_>>(),
            )
        };

        // Re-resolve anchors.
        let mut anchor_subjects = BTreeSet::new();
        let mut anchors = Vec::new();
        for t in store.match_terms(None, Some(&self.preds.label), Some(&Term::Literal(label))) {
            let Some(mid) = store.id_of(&t.subject) else {
                continue;
            };
            anchor_subjects.insert(mid);
            for g in store.match_terms(Some(&t.subject), Some(&self.preds.geometry), None) {
                if let Term::Literal(l) = &g.object {
                    if let Ok(point) = Point::from_literal(l) {
                        anchors.push(point);
                    }
                }
            }
        }

        // Candidates: everything near an anchor plus current members.
        let mut candidates: BTreeSet<TermId> = old_resources.iter().copied().collect();
        for &anchor in &anchors {
            for (sid, _) in store.geo().within_km(anchor, spec.radius_km) {
                candidates.insert(sid);
            }
        }
        let mut states = Vec::new();
        for sid in candidates {
            let state = eval_resource(store, &ids, &spec, &anchors, sid);
            self.stats.resource_evals += 1;
            if state.supported(spec.friend_of.is_some(), spec.order_by_rating) {
                states.push((sid, state));
            }
        }

        // Swap in the new anchors and indexes.
        for &anchor in &old_anchors {
            if let Some(cell) = self.grid.get_mut(&cell_of(anchor)) {
                cell.retain(|&(id, _)| id != aid);
            }
        }
        for &anchor in &anchors {
            self.grid
                .entry(cell_of(anchor))
                .or_default()
                .push((aid, anchor));
        }
        for mid in &old_subjects {
            if let Some(set) = self.anchor_index.get_mut(mid) {
                set.remove(&aid);
                if set.is_empty() {
                    self.anchor_index.remove(mid);
                }
            }
        }
        for &mid in &anchor_subjects {
            self.anchor_index.entry(mid).or_default().insert(aid);
        }
        for sid in &old_resources {
            if let Some(set) = self.tracked.get_mut(sid) {
                set.remove(&aid);
                if set.is_empty() {
                    self.tracked.remove(sid);
                }
            }
        }
        let album = &mut self.albums[aid];
        album.anchor_subjects = anchor_subjects;
        album.anchors = anchors;
        album.resources.clear();
        for (sid, state) in states {
            album.resources.insert(sid, state);
            self.tracked.entry(sid).or_default().insert(aid);
        }
    }

    /// Recomputes an album's canonical answer from its retained state
    /// without diffing — used by [`Self::register`] and
    /// [`Self::rebuild`], where there is no prior answer to diff
    /// against. [`Self::apply`] instead diffs in its final phase.
    fn settle(&mut self, aid: LiveAlbumId) {
        let album = &mut self.albums[aid];
        let members = album.recompute_members();
        let visible = album.visible_of(&members);
        album.members = members;
        album.visible = visible;
    }

    /// Installs a re-evaluated state, keeping the `tracked` reverse
    /// index consistent.
    fn set_state(&mut self, aid: LiveAlbumId, sid: TermId, state: ResourceState) {
        let album = &mut self.albums[aid];
        if state.supported(album.spec.friend_of.is_some(), album.spec.order_by_rating) {
            album.resources.insert(sid, state);
            self.tracked.entry(sid).or_default().insert(aid);
        } else {
            album.resources.remove(&sid);
            if let Some(set) = self.tracked.get_mut(&sid) {
                set.remove(&aid);
                if set.is_empty() {
                    self.tracked.remove(&sid);
                }
            }
        }
    }
}

fn cell_of(p: Point) -> (i32, i32) {
    (
        (p.lon / CELL_DEG).floor() as i32,
        (p.lat / CELL_DEG).floor() as i32,
    )
}

/// Re-evaluates one resource's support against the post-commit store.
fn eval_resource(
    store: &Store,
    ids: &PredIds,
    spec: &AlbumSpec,
    anchors: &[Point],
    sid: TermId,
) -> ResourceState {
    let mut state = ResourceState::default();
    let (Some(ty), Some(post)) = (ids.ty, ids.post) else {
        return state;
    };
    state.typed = store.match_ids(Some(sid), Some(ty), Some(post)).count() as u32;
    if state.typed == 0 {
        return state;
    }
    if let Some(image) = ids.image {
        for (_, _, o) in store.match_ids(Some(sid), Some(image), None) {
            if let Some(term) = store.term_of(o) {
                *state.links.entry(term.lexical().to_string()).or_insert(0) += 1;
            }
        }
    }
    if let Some(geom) = ids.geometry {
        for (_, _, o) in store.match_ids(Some(sid), Some(geom), None) {
            let Some(Term::Literal(l)) = store.term_of(o) else {
                continue;
            };
            let Ok(point) = Point::from_literal(l) else {
                continue;
            };
            for &anchor in anchors {
                if point.intersects(anchor, spec.radius_km) {
                    state.geo_support += 1;
                }
            }
        }
    }
    if let Some(user) = &spec.friend_of {
        if let (Some(maker), Some(name), Some(knows)) = (ids.maker, ids.name, ids.knows) {
            let friends: Vec<TermId> = store
                .id_of(&Term::literal(user.as_str()))
                .map(|name_id| {
                    store
                        .match_ids(None, Some(name), Some(name_id))
                        .map(|(s, _, _)| s)
                        .collect()
                })
                .unwrap_or_default();
            for (_, _, m) in store.match_ids(Some(sid), Some(maker), None) {
                for &friend in &friends {
                    state.social_paths +=
                        store.match_ids(Some(m), Some(knows), Some(friend)).count() as u32;
                }
            }
        }
    }
    if spec.order_by_rating {
        if let Some(rating) = ids.rating {
            for (_, _, o) in store.match_ids(Some(sid), Some(rating), None) {
                if let Some(term) = store.term_of(o) {
                    state.ratings.push(Rank::of(term));
                }
            }
        }
    }
    state
}

/// Diffs two membership maps plus their visible orderings.
fn diff_members(
    album: LiveAlbumId,
    old: &BTreeMap<String, Option<Rank>>,
    new: &BTreeMap<String, Option<Rank>>,
    old_visible: &[String],
    new_visible: &[String],
) -> AlbumDiff {
    let mut diff = AlbumDiff {
        album,
        ..AlbumDiff::default()
    };
    for (link, rank) in new {
        if old.get(link) != Some(rank) {
            diff.upserts.push((link.clone(), rank.clone()));
        }
    }
    for link in old.keys() {
        if !new.contains_key(link) {
            diff.removals.push(link.clone());
        }
    }
    if !diff.is_empty() {
        let old_pos: HashMap<&String, usize> = old_visible
            .iter()
            .enumerate()
            .map(|(i, l)| (l, i))
            .collect();
        for (i, link) in new_visible.iter().enumerate() {
            if let Some(&j) = old_pos.get(link) {
                if i != j {
                    diff.moved.push((link.clone(), j, i));
                }
            }
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_store::GraphId;

    fn mole() -> Point {
        let gaz = lodify_context::Gazetteer::global();
        gaz.poi("Mole_Antonelliana").unwrap().point(gaz)
    }

    /// A minimal store answering Q1/Q2/Q3 near the Mole: one monument,
    /// one picture with type/geometry/link/rating, one maker who knows
    /// a named friend.
    fn tiny_store() -> (Store, GraphId) {
        let mut store = Store::new();
        let g = store.default_graph();
        let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole().to_literal()),
            ),
            g,
        );
        for t in picture_triples(1, 0.05, Some(4)) {
            store.insert(&t, g);
        }
        (store, g)
    }

    /// The triples one picture contributes: type, geometry offset east
    /// of the Mole, link, maker, and an optional rating.
    fn picture_triples(n: i64, offset_km: f64, rating: Option<i64>) -> Vec<Triple> {
        let pic = format!("http://t/pictures/{n}");
        let maker = format!("http://t/users/{n}");
        let mut out = vec![
            Triple::spo(
                &pic,
                ns::iri::rdf_type().as_str(),
                Term::Iri(ns::iri::microblog_post()),
            ),
            Triple::spo(
                &pic,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole().offset_km(offset_km, 0.0).to_literal()),
            ),
            Triple::spo(
                &pic,
                ns::iri::image_data().as_str(),
                Term::literal(format!("http://t/media/{n}.jpg")),
            ),
            Triple::spo(
                &pic,
                ns::iri::foaf_maker().as_str(),
                Term::iri(&maker).unwrap(),
            ),
        ];
        if let Some(r) = rating {
            out.push(Triple::spo(
                &pic,
                ns::iri::rev_rating().as_str(),
                Term::Literal(Literal::integer(r)),
            ));
        }
        out
    }

    /// Applies `additions`/`removals` to both the store and the
    /// engine, then asserts the maintained answer is byte-equal to a
    /// fresh [`AlbumSpec::execute`] for every registered album.
    fn commit(
        store: &mut Store,
        g: GraphId,
        engine: &mut StandingQueryEngine,
        additions: &[Triple],
        removals: &[Triple],
    ) -> Vec<AlbumDiff> {
        for t in removals {
            store.remove(t);
        }
        for t in additions {
            store.insert(t, g);
        }
        let diffs = engine.apply(store, additions, removals);
        for id in 0..engine.len() {
            assert_eq!(
                engine.links(id),
                engine.spec(id).execute(store).unwrap(),
                "album {id} diverged from a fresh recompute"
            );
        }
        diffs
    }

    #[test]
    fn registration_matches_a_fresh_execute() {
        let (store, _) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        let id = engine.register(&store, &spec);
        assert_eq!(engine.links(id), spec.execute(&store).unwrap());
        assert_eq!(engine.links(id), ["http://t/media/1.jpg"]);
    }

    #[test]
    fn upload_delta_patches_without_a_refresh() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        let refreshes_before = engine.stats().refreshes;
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            &picture_triples(2, 0.1, None),
            &[],
        );
        assert_eq!(diffs.len(), 1);
        assert_eq!(
            diffs[0].upserts,
            [("http://t/media/2.jpg".to_string(), None)]
        );
        assert!(diffs[0].removals.is_empty());
        assert_eq!(
            engine.links(id),
            ["http://t/media/1.jpg", "http://t/media/2.jpg"]
        );
        assert_eq!(
            engine.stats().refreshes,
            refreshes_before,
            "a picture delta must patch, not refresh"
        );
    }

    #[test]
    fn far_away_uploads_do_not_touch_the_album() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        let evals_before = engine.stats().resource_evals;
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            &picture_triples(2, 50.0, None),
            &[],
        );
        assert!(diffs.is_empty());
        assert_eq!(
            engine.stats().resource_evals,
            evals_before,
            "a far-away picture must not even be re-evaluated"
        );
    }

    #[test]
    fn support_counts_retract_exactly_the_justified_solutions() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        // A second in-radius geometry for the same picture: membership
        // now has two supporting geometry solutions.
        let second_geo = Triple::spo(
            "http://t/pictures/1",
            ns::iri::geo_geometry().as_str(),
            Term::Literal(mole().offset_km(0.0, 0.08).to_literal()),
        );
        commit(
            &mut store,
            g,
            &mut engine,
            std::slice::from_ref(&second_geo),
            &[],
        );
        assert_eq!(engine.links(id).len(), 1);

        // Deleting one of the two keeps the member ...
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            &[],
            std::slice::from_ref(&second_geo),
        );
        assert!(diffs.is_empty(), "one support left: no diff");
        assert_eq!(engine.links(id).len(), 1);

        // ... deleting the last one retracts it.
        let first_geo = Triple::spo(
            "http://t/pictures/1",
            ns::iri::geo_geometry().as_str(),
            Term::Literal(mole().offset_km(0.05, 0.0).to_literal()),
        );
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            &[],
            std::slice::from_ref(&first_geo),
        );
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].removals, ["http://t/media/1.jpg"]);
        assert!(engine.links(id).is_empty());
    }

    #[test]
    fn rating_deltas_reorder_rated_albums() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).rated(),
        );
        commit(
            &mut store,
            g,
            &mut engine,
            &picture_triples(2, 0.1, Some(2)),
            &[],
        );
        assert_eq!(
            engine.links(id),
            ["http://t/media/1.jpg", "http://t/media/2.jpg"]
        );

        // Re-rating picture 2 above picture 1 flips the order; the
        // diff reports the re-rank as an upsert plus visible moves.
        let old = Triple::spo(
            "http://t/pictures/2",
            ns::iri::rev_rating().as_str(),
            Term::Literal(Literal::integer(2)),
        );
        let new = Triple::spo(
            "http://t/pictures/2",
            ns::iri::rev_rating().as_str(),
            Term::Literal(Literal::integer(5)),
        );
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            std::slice::from_ref(&new),
            std::slice::from_ref(&old),
        );
        assert_eq!(
            engine.links(id),
            ["http://t/media/2.jpg", "http://t/media/1.jpg"]
        );
        assert_eq!(diffs.len(), 1);
        assert_eq!(
            diffs[0].upserts,
            [("http://t/media/2.jpg".to_string(), Some(Rank::Num(5.0)))]
        );
        assert_eq!(diffs[0].moved.len(), 2, "both visible members moved");
    }

    #[test]
    fn knows_deltas_move_content_in_and_out_of_social_albums() {
        let (mut store, g) = tiny_store();
        // Give the maker's friend a name to filter on.
        let name = Triple::spo(
            "http://t/users/9",
            ns::iri::foaf_name().as_str(),
            Term::literal("alice"),
        );
        store.insert(&name, g);
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).friends_of("alice"),
        );
        assert!(engine.links(id).is_empty(), "maker knows nobody yet");

        let knows = Triple::spo(
            "http://t/users/1",
            ns::iri::foaf_knows().as_str(),
            Term::iri("http://t/users/9").unwrap(),
        );
        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            std::slice::from_ref(&knows),
            &[],
        );
        assert_eq!(diffs.len(), 1);
        assert_eq!(engine.links(id), ["http://t/media/1.jpg"]);

        let diffs = commit(
            &mut store,
            g,
            &mut engine,
            &[],
            std::slice::from_ref(&knows),
        );
        assert_eq!(diffs[0].removals, ["http://t/media/1.jpg"]);
        assert!(engine.links(id).is_empty());
    }

    #[test]
    fn anchor_label_deltas_refresh_the_album() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        assert_eq!(engine.links(id).len(), 1);
        // The monument loses its label: the album loses its anchor and
        // with it every member.
        let label = Triple::spo(
            "http://dbpedia.org/resource/Mole_Antonelliana",
            ns::iri::rdfs_label().as_str(),
            Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
        );
        let refreshes_before = engine.stats().refreshes;
        commit(
            &mut store,
            g,
            &mut engine,
            &[],
            std::slice::from_ref(&label),
        );
        assert!(engine.links(id).is_empty());
        assert_eq!(engine.stats().refreshes, refreshes_before + 1);
    }

    #[test]
    fn limit_is_maintained_on_the_visible_window() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3)
                .rated()
                .limit(2),
        );
        for n in 2..=4 {
            commit(
                &mut store,
                g,
                &mut engine,
                &picture_triples(n, 0.02 * n as f64, Some(n)),
                &[],
            );
        }
        // Ratings: pic1=4, pic2=2, pic3=3, pic4=4 — the 4/4 tie breaks
        // on the link, so pic1 stays first.
        assert_eq!(
            engine.links(id),
            ["http://t/media/1.jpg", "http://t/media/4.jpg"]
        );
        // Full membership still tracks everything under the cap.
        assert_eq!(engine.members(id).len(), 4);
    }

    #[test]
    fn rebuild_recovers_state_from_the_store() {
        let (mut store, g) = tiny_store();
        let mut engine = StandingQueryEngine::new();
        let id = engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        // Mutate the store behind the engine's back (a crash-recovery
        // replay restores the store without engine deltas) ...
        for t in picture_triples(2, 0.1, None) {
            store.insert(&t, g);
        }
        assert_eq!(engine.links(id).len(), 1, "engine is stale");
        // ... then one rebuild restores the invariant.
        engine.rebuild(&store);
        assert_eq!(engine.links(id), engine.spec(id).execute(&store).unwrap());
        assert_eq!(engine.links(id).len(), 2);
    }
}
