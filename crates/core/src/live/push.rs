//! SparqlPuSH diff push: at-least-once delivery of album diffs.
//!
//! The paper's §6 names PubSubHubbub/SparqlPuSH push as the missing
//! distribution leg of LODified sharing. [`PushHub`] supplies it for
//! live albums: every subscriber owns a durable-ordered **outbox** of
//! [`AlbumDiff`] frames (monotonic sequence numbers), shipped through
//! the same resilience machinery the federation and replication layers
//! use — a per-subscriber circuit breaker, a [`FaultPlan`] judged at
//! target `push:<callback>` under a [`RetryPolicy`], and a dead-letter
//! queue replayed by [`PushHub::redeliver`].
//!
//! Delivery is **at-least-once** and subscriber apply is
//! **idempotent**: frames carry absolute `(link, rank)` upserts, the
//! subscriber keeps a cursor of the highest applied sequence
//! (duplicates are no-ops), and a gap triggers a catch-up replay from
//! the outbox journal — so drops, duplicates and mid-stream subscriber
//! crashes all converge to the same state. A crashed subscriber that
//! recovers replays the full outbox from sequence 1; because frames
//! are absolute upserts/removals, the replay reconstructs the album
//! exactly (chaos tests assert byte-identity with a fresh recompute).

use std::collections::BTreeMap;

use lodify_obs::{Metrics, Obs, Tracer};
use lodify_resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, DeadLetterQueue, DetRng, FaultPlan, ReplayReport,
    RetryPolicy, Telemetry,
};

use super::engine::{member_order, AlbumDiff, LiveAlbumId, Rank, StandingQueryEngine};
use crate::metrics::LivePushOps;

/// Attempts before a parked push shipment is abandoned.
pub const PUSH_MAX_ATTEMPTS: u32 = 8;

/// Handle of one subscription.
pub type SubscriberId = usize;

/// A parked delivery: which subscriber, which outbox frame. The
/// payload is refetched from the outbox on replay, so the DLQ stays
/// small.
#[derive(Debug, Clone)]
pub struct PushShipment {
    /// The subscription the frame belongs to.
    pub subscriber: SubscriberId,
    /// Outbox sequence number of the frame.
    pub seq: u64,
}

/// The subscriber-side materialization: an idempotent fold over the
/// diff stream.
#[derive(Debug, Clone, Default)]
pub struct SubscriberAlbum {
    members: BTreeMap<String, Option<Rank>>,
    cursor: u64,
    limit: Option<usize>,
}

impl SubscriberAlbum {
    /// Highest applied outbox sequence.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The subscriber's view of the album, in the same canonical order
    /// (and under the same `LIMIT`) as the publisher's answer.
    pub fn links(&self) -> Vec<String> {
        let mut ordered: Vec<(String, Option<Rank>)> = self
            .members
            .iter()
            .map(|(l, r)| (l.clone(), r.clone()))
            .collect();
        ordered.sort_by(member_order);
        let mut links: Vec<String> = ordered.into_iter().map(|(l, _)| l).collect();
        if let Some(limit) = self.limit {
            links.truncate(limit);
        }
        links
    }

    /// Applies one frame; duplicates (`seq <= cursor`) are no-ops.
    fn apply(&mut self, seq: u64, diff: &AlbumDiff) -> bool {
        if seq <= self.cursor {
            return false;
        }
        for (link, rank) in &diff.upserts {
            self.members.insert(link.clone(), rank.clone());
        }
        for link in &diff.removals {
            self.members.remove(link);
        }
        self.cursor = seq;
        true
    }
}

struct PushSub {
    /// Callback identity; deliveries are judged at `push:<callback>`.
    callback: String,
    album: LiveAlbumId,
    /// Result cap the subscriber renders with (survives crashes).
    limit: Option<usize>,
    /// Ordered diff journal; frame `i` has sequence `i + 1`.
    outbox: Vec<AlbumDiff>,
    /// Highest sequence handed to delivery (success or parked).
    shipped: u64,
    breaker: CircuitBreaker,
    /// `None` while the subscriber is crashed.
    state: Option<SubscriberAlbum>,
}

impl PushSub {
    fn head(&self) -> u64 {
        self.outbox.len() as u64
    }
}

/// Per-subscriber diff outboxes with fault-injected, at-least-once
/// shipping. See the module docs.
pub struct PushHub {
    subs: Vec<PushSub>,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    rng: DetRng,
    dlq: DeadLetterQueue<PushShipment>,
    telemetry: Telemetry,
    metrics: Option<Metrics>,
    tracer: Option<Tracer>,
    breaker_config: BreakerConfig,
}

impl Default for PushHub {
    fn default() -> Self {
        Self::new()
    }
}

impl PushHub {
    /// A hub with no subscribers and perfect transport.
    pub fn new() -> PushHub {
        PushHub {
            subs: Vec::new(),
            plan: None,
            retry: RetryPolicy::no_retry(),
            rng: DetRng::seed_from_u64(0).fork("live-push-transport"),
            dlq: DeadLetterQueue::new(PUSH_MAX_ATTEMPTS),
            telemetry: Telemetry::default(),
            metrics: None,
            tracer: None,
            breaker_config: BreakerConfig::default(),
        }
    }

    /// Installs fault-injected transport: every delivery to a
    /// subscriber is judged by `plan` under target `push:<callback>`,
    /// retried per `retry`.
    pub fn with_fault_plan(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.plan = Some(plan);
        self.retry = retry;
    }

    /// Attaches observability: `live.push` spans plus mirrored
    /// counters and the `live.push.lag` gauge.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.metrics = Some(obs.metrics().clone());
        self.tracer = Some(obs.tracer().clone());
    }

    /// Push telemetry (`live.push.*` counters and gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Subscribes `callback` to `album`, seeding its outbox with a
    /// snapshot frame so a fresh subscriber converges to the current
    /// membership. Returns the subscription handle.
    pub fn subscribe(
        &mut self,
        callback: &str,
        album: LiveAlbumId,
        engine: &StandingQueryEngine,
    ) -> SubscriberId {
        let spec = engine.spec(album);
        let snapshot = AlbumDiff {
            album,
            upserts: engine.members(album),
            removals: Vec::new(),
            moved: Vec::new(),
            trace: None,
        };
        let id = self.subs.len();
        self.subs.push(PushSub {
            callback: callback.to_string(),
            album,
            limit: spec.limit,
            outbox: vec![snapshot],
            shipped: 0,
            breaker: CircuitBreaker::new(self.breaker_config.clone()),
            state: Some(SubscriberAlbum {
                members: BTreeMap::new(),
                cursor: 0,
                limit: spec.limit,
            }),
        });
        id
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nobody subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Appends `diff` to the outbox of every subscriber of its album.
    /// Call [`Self::pump`] afterwards to ship.
    pub fn offer(&mut self, diff: &AlbumDiff) {
        for sub in &mut self.subs {
            if sub.album == diff.album {
                sub.outbox.push(diff.clone());
                self.telemetry.incr("live.push.offered");
            }
        }
    }

    /// Ships every subscriber's backlog. Failed deliveries park in the
    /// DLQ and shipping moves on — the subscriber-side cursor plus
    /// catch-up replay keep out-of-order arrivals correct.
    pub fn pump(&mut self) {
        for idx in 0..self.subs.len() {
            loop {
                let sub = &self.subs[idx];
                let seq = sub.shipped + 1;
                if seq > sub.head() {
                    break;
                }
                let trace = sub.outbox[(seq - 1) as usize].trace;
                let span = self
                    .tracer
                    .as_ref()
                    .map(|t| t.start_with_context("live.push", trace));
                let verdict = judge_push(
                    self.plan.as_ref(),
                    &self.retry,
                    &mut self.rng,
                    &self.telemetry,
                    &mut self.subs[idx],
                );
                match verdict {
                    Ok(()) => self.deliver(idx, seq),
                    Err(error) => self.park(
                        PushShipment {
                            subscriber: idx,
                            seq,
                        },
                        error,
                    ),
                }
                self.subs[idx].shipped = seq;
                drop(span);
            }
        }
        self.publish_gauges();
    }

    /// Replays the push dead-letter queue; still-failing shipments are
    /// re-parked until [`PUSH_MAX_ATTEMPTS`] exhausts them.
    pub fn redeliver(&mut self) -> ReplayReport {
        let mut dlq = std::mem::replace(&mut self.dlq, DeadLetterQueue::new(PUSH_MAX_ATTEMPTS));
        let report = dlq.replay(|shipment| {
            let head = self
                .subs
                .get(shipment.subscriber)
                .ok_or_else(|| "subscription removed".to_string())?
                .head();
            if shipment.seq > head {
                return Err(format!("frame {} missing", shipment.seq));
            }
            judge_push(
                self.plan.as_ref(),
                &self.retry,
                &mut self.rng,
                &self.telemetry,
                &mut self.subs[shipment.subscriber],
            )?;
            self.deliver(shipment.subscriber, shipment.seq);
            Ok(())
        });
        self.dlq = dlq;
        self.telemetry
            .add("live.push.redelivered", report.replayed as u64);
        self.publish_gauges();
        report
    }

    /// Applies frame `seq` on the subscriber, catching up any earlier
    /// frames first (a parked frame must not leave a hole when a later
    /// one lands).
    fn deliver(&mut self, idx: SubscriberId, seq: u64) {
        let sub = &mut self.subs[idx];
        let Some(state) = sub.state.as_mut() else {
            return; // crashed mid-stream: judged deliverable, nobody home
        };
        let mut applied = false;
        for q in (state.cursor + 1)..=seq {
            if q < seq {
                self.telemetry.incr("live.push.catchups");
            }
            applied |= state.apply(q, &sub.outbox[(q - 1) as usize]);
        }
        if applied {
            self.telemetry.incr("live.push.delivered");
            if let Some(metrics) = &self.metrics {
                metrics.incr("live.push.delivered");
            }
        } else {
            self.telemetry.incr("live.push.duplicates");
        }
    }

    fn park(&mut self, shipment: PushShipment, error: String) {
        self.telemetry.incr("live.push.parked");
        let now = self.plan.as_ref().map(|p| p.clock().now_ms()).unwrap_or(0);
        self.dlq.push(shipment, error, now);
    }

    /// Simulates a subscriber crash: its materialized state (cursor
    /// included) is lost; the outbox journal survives hub-side.
    pub fn kill(&mut self, id: SubscriberId) {
        self.subs[id].state = None;
        self.telemetry.incr("live.push.crashes");
    }

    /// Recovers a crashed subscriber with empty state. Shipping
    /// restarts from sequence 1; replaying the absolute diff stream
    /// reconstructs the album exactly.
    pub fn recover(&mut self, id: SubscriberId) {
        let sub = &mut self.subs[id];
        if sub.state.is_some() {
            return;
        }
        sub.state = Some(SubscriberAlbum {
            members: BTreeMap::new(),
            cursor: 0,
            limit: sub.limit,
        });
        sub.shipped = 0;
    }

    /// The subscriber's materialized album, if it is up.
    pub fn subscriber(&self, id: SubscriberId) -> Option<&SubscriberAlbum> {
        self.subs[id].state.as_ref()
    }

    /// `(callback, album, head, shipped, cursor, breaker)` rows for
    /// the `/subscriptions` route.
    pub fn rows(&self) -> Vec<(String, LiveAlbumId, u64, u64, Option<u64>, BreakerState)> {
        self.subs
            .iter()
            .map(|s| {
                (
                    s.callback.clone(),
                    s.album,
                    s.head(),
                    s.shipped,
                    s.state.as_ref().map(SubscriberAlbum::cursor),
                    s.breaker.state(),
                )
            })
            .collect()
    }

    /// Maximum outbox backlog over live subscribers (head − cursor).
    pub fn lag(&self) -> u64 {
        self.subs
            .iter()
            .map(|s| match &s.state {
                Some(state) => s.head().saturating_sub(state.cursor),
                None => s.head(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether every live subscriber has applied every frame with
    /// nothing parked.
    pub fn converged(&self) -> bool {
        self.lag() == 0 && self.dlq.depth() == 0
    }

    /// Parked deliveries awaiting [`Self::redeliver`].
    pub fn undelivered(&self) -> usize {
        self.dlq.depth()
    }

    /// Deliveries abandoned after [`PUSH_MAX_ATTEMPTS`].
    pub fn exhausted(&self) -> usize {
        self.dlq.exhausted().len()
    }

    /// Counter snapshot for `/ops`.
    pub fn ops(&self) -> LivePushOps {
        LivePushOps {
            subscribers: self.subs.len(),
            delivered: self.telemetry.counter("live.push.delivered"),
            parked: self.telemetry.counter("live.push.parked"),
            redelivered: self.telemetry.counter("live.push.redelivered"),
            lag: self.lag(),
            dlq_depth: self.dlq.depth(),
        }
    }

    fn publish_gauges(&self) {
        let lag = self.lag();
        self.telemetry.set_gauge("live.push.lag", lag);
        self.telemetry
            .set_gauge("live.push.dlq.depth", self.dlq.depth() as u64);
        if let Some(metrics) = &self.metrics {
            metrics.set_gauge("live.push.lag", lag);
            metrics.set_gauge("live.push.dlq.depth", self.dlq.depth() as u64);
        }
    }
}

/// Judges one push delivery: per-subscriber breaker first, then the
/// fault plan under target `push:<callback>` (with retry/backoff in
/// virtual time) — the same shape as replication's transport judge.
fn judge_push(
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut DetRng,
    telemetry: &Telemetry,
    sub: &mut PushSub,
) -> Result<(), String> {
    let target = format!("push:{}", sub.callback);
    let now = plan.map(|p| p.clock().now_ms()).unwrap_or(0);
    if !sub.breaker.allow(now) {
        telemetry.incr("live.push.breaker.rejections");
        return Err(format!("breaker open for {target}"));
    }
    let outcome = match plan {
        None => Ok(()),
        Some(plan) => {
            let clock = plan.clock().clone();
            retry
                .run(&clock, rng, |attempt| {
                    if attempt > 1 {
                        telemetry.incr("live.push.retries");
                    }
                    plan.check(&target)
                })
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    };
    let now = plan.map(|p| p.clock().now_ms()).unwrap_or(0);
    match &outcome {
        Ok(()) => sub.breaker.on_success(now),
        Err(_) => sub.breaker.on_failure(now),
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::{ns, Literal, Point, Term, Triple};
    use lodify_resilience::VirtualClock;
    use lodify_store::Store;

    use crate::albums::AlbumSpec;

    /// One registered album over a minimal store: the Mole plus one
    /// in-radius picture.
    fn engine_with_album() -> (Store, StandingQueryEngine) {
        let gaz = lodify_context::Gazetteer::global();
        let mole: Point = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
        let mut store = Store::new();
        let g = store.default_graph();
        let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole.to_literal()),
            ),
            g,
        );
        let pic = "http://t/pictures/1";
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::rdf_type().as_str(),
                Term::Iri(ns::iri::microblog_post()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole.offset_km(0.05, 0.0).to_literal()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::image_data().as_str(),
                Term::literal("http://t/media/1.jpg"),
            ),
            g,
        );
        let mut engine = StandingQueryEngine::new();
        engine.register(
            &store,
            &AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3),
        );
        (store, engine)
    }

    fn upsert(link: &str) -> AlbumDiff {
        AlbumDiff {
            album: 0,
            upserts: vec![(link.to_string(), None)],
            removals: Vec::new(),
            moved: Vec::new(),
            trace: None,
        }
    }

    #[test]
    fn snapshot_frame_converges_a_new_subscriber() {
        let (_, engine) = engine_with_album();
        let mut hub = PushHub::new();
        let sub = hub.subscribe("http://client/cb", 0, &engine);
        hub.pump();
        assert!(hub.converged());
        assert_eq!(hub.subscriber(sub).unwrap().links(), engine.links(0));
        assert_eq!(hub.telemetry().counter("live.push.delivered"), 1);
    }

    #[test]
    fn offered_diffs_ship_once_and_pumps_are_idempotent() {
        let (_, engine) = engine_with_album();
        let mut hub = PushHub::new();
        let sub = hub.subscribe("http://client/cb", 0, &engine);
        hub.pump();
        hub.offer(&upsert("http://t/media/2.jpg"));
        hub.pump();
        hub.pump();
        let state = hub.subscriber(sub).unwrap();
        assert_eq!(state.cursor(), 2);
        assert_eq!(
            state.links(),
            ["http://t/media/1.jpg", "http://t/media/2.jpg"]
        );
        assert_eq!(hub.telemetry().counter("live.push.delivered"), 2);
        assert_eq!(hub.telemetry().counter("live.push.duplicates"), 0);
    }

    #[test]
    fn outage_parks_frames_and_redelivery_converges() {
        let (_, engine) = engine_with_album();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("push:http://client/cb", 0, 5_000)
            .build(clock.clone());
        let mut hub = PushHub::new();
        hub.with_fault_plan(plan, RetryPolicy::no_retry());
        let sub = hub.subscribe("http://client/cb", 0, &engine);
        hub.pump();
        assert_eq!(hub.undelivered(), 1, "snapshot frame parked");
        assert!(!hub.converged());

        // Heal the partition (and let the breaker cool down).
        clock.advance(10_000);
        let report = hub.redeliver();
        assert_eq!(report.replayed, 1);
        assert!(hub.converged());
        assert_eq!(hub.subscriber(sub).unwrap().links(), engine.links(0));
    }

    #[test]
    fn breaker_opens_after_repeated_failures() {
        let (_, engine) = engine_with_album();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("push:http://client/cb", 0, u64::MAX)
            .build(clock);
        let mut hub = PushHub::new();
        hub.with_fault_plan(plan, RetryPolicy::no_retry());
        hub.subscribe("http://client/cb", 0, &engine);
        // Three failures trip the breaker; the fourth frame is then
        // rejected without touching the transport at all.
        hub.offer(&upsert("http://t/media/2.jpg"));
        hub.offer(&upsert("http://t/media/3.jpg"));
        hub.offer(&upsert("http://t/media/4.jpg"));
        hub.pump();
        assert_eq!(hub.rows()[0].5, BreakerState::Open);
        assert!(hub.telemetry().counter("live.push.breaker.rejections") > 0);
    }

    #[test]
    fn parked_frame_is_caught_up_by_a_later_delivery() {
        let (_, engine) = engine_with_album();
        let clock = VirtualClock::new();
        // Frame 1 ships cleanly; frame 2 hits a short outage window.
        let plan = FaultPlan::builder()
            .outage("push:http://client/cb", 1_000, 2_000)
            .build(clock.clone());
        let mut hub = PushHub::new();
        hub.with_fault_plan(plan, RetryPolicy::no_retry());
        let sub = hub.subscribe("http://client/cb", 0, &engine);
        hub.pump();
        clock.advance(1_500);
        hub.offer(&upsert("http://t/media/2.jpg"));
        hub.pump();
        assert_eq!(hub.undelivered(), 1, "frame 2 parked in the outage");

        // Frame 3 lands after the outage: delivering it catches up the
        // hole left by frame 2 from the outbox journal.
        clock.advance(1_500);
        hub.offer(&upsert("http://t/media/3.jpg"));
        hub.pump();
        let state = hub.subscriber(sub).unwrap();
        assert_eq!(state.cursor(), 3);
        assert_eq!(state.links().len(), 3);
        assert_eq!(hub.telemetry().counter("live.push.catchups"), 1);

        // Replaying the parked frame 2 is now a duplicate no-op.
        let report = hub.redeliver();
        assert_eq!(report.replayed, 1);
        assert_eq!(hub.telemetry().counter("live.push.duplicates"), 1);
        assert_eq!(hub.subscriber(sub).unwrap().cursor(), 3);
        assert!(hub.converged());
    }

    #[test]
    fn crash_and_recover_replays_the_full_outbox_to_identity() {
        let (_, engine) = engine_with_album();
        let mut hub = PushHub::new();
        let sub = hub.subscribe("http://client/cb", 0, &engine);
        hub.pump();
        hub.offer(&upsert("http://t/media/2.jpg"));
        hub.pump();

        hub.kill(sub);
        assert!(hub.subscriber(sub).is_none());
        // Frames offered while the subscriber is down are journaled
        // (and "shipped" to nobody).
        hub.offer(&upsert("http://t/media/3.jpg"));
        hub.pump();

        hub.recover(sub);
        hub.pump();
        let state = hub.subscriber(sub).unwrap();
        assert_eq!(state.cursor(), 3);
        assert_eq!(
            state.links(),
            [
                "http://t/media/1.jpg",
                "http://t/media/2.jpg",
                "http://t/media/3.jpg"
            ]
        );
        assert!(hub.converged());
    }

    #[test]
    fn ops_reports_lag_and_dlq_depth() {
        let (_, engine) = engine_with_album();
        let mut hub = PushHub::new();
        hub.subscribe("http://client/cb", 0, &engine);
        let ops = hub.ops();
        assert_eq!(ops.subscribers, 1);
        assert_eq!(ops.lag, 1, "snapshot frame not yet shipped");
        hub.pump();
        assert_eq!(hub.ops().lag, 0);
        assert_eq!(hub.ops().delivered, 1);
    }
}
