//! Deterministic multi-tenant open-loop traffic generation.
//!
//! An **open-loop** workload issues requests on its own schedule —
//! arrivals do not wait for responses, which is how real users behave
//! and why overload is dangerous: past saturation the in-flight queue
//! grows without bound and tail latency *diverges* instead of
//! plateauing (the coordinated-omission trap closed-loop benches fall
//! into). This module generates such a workload deterministically —
//! Poisson arrivals from a [`DetRng`], virtual time on a
//! [`VirtualClock`] — and pushes it through a k-server queue model
//! while driving a *real* [`AdmissionController`] on the same clock,
//! so E23 and the overload chaos test measure the actual shedding
//! implementation, not a model of it.
//!
//! The simulation is exact discrete-event queueing: each admitted
//! request starts at `max(arrival, earliest free server)` and its
//! latency is `finish − arrival`. Permits are dropped as virtual time
//! passes each request's finish, so the controller sees the honest
//! in-flight depth at every arrival.

use lodify_resilience::{DetRng, VirtualClock};

use crate::admission::{AdmissionController, AdmissionDecision, ShedClass};

/// One request class in the generated mix.
#[derive(Debug, Clone, Copy)]
pub struct TrafficKind {
    /// Request path (classified by [`ShedClass::classify`]).
    pub path: &'static str,
    /// Relative weight in the mix.
    pub weight: u32,
    /// Deterministic service time, microseconds.
    pub service_us: u64,
}

/// Workload shape.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// RNG seed (same seed ⇒ byte-identical schedule and report).
    pub seed: u64,
    /// Number of tenants. Tenant 0 is *hot*: it sends half of all
    /// traffic, the rest spread uniformly — the skew that makes
    /// per-tenant quotas observable.
    pub tenants: usize,
    /// Aggregate arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Workload duration in virtual milliseconds.
    pub duration_ms: u64,
    /// Serving capacity: number of parallel workers.
    pub workers: usize,
    /// The request mix.
    pub kinds: Vec<TrafficKind>,
}

impl TrafficConfig {
    /// The E23 mix: expensive album solves dominating, some plain
    /// pages, a trickle of operator traffic.
    pub fn standard(seed: u64, rate_per_sec: f64, duration_ms: u64) -> TrafficConfig {
        TrafficConfig {
            seed,
            tenants: 4,
            rate_per_sec,
            duration_ms,
            workers: 4,
            kinds: vec![
                TrafficKind {
                    path: "/album",
                    weight: 6,
                    service_us: 4_000,
                },
                TrafficKind {
                    path: "/picture/1",
                    weight: 3,
                    service_us: 1_000,
                },
                TrafficKind {
                    path: "/ops",
                    weight: 1,
                    service_us: 500,
                },
            ],
        }
    }

    /// The offered load relative to capacity: mean service demand per
    /// second divided by worker-seconds available (1.0 = saturation).
    pub fn utilization(&self) -> f64 {
        let total_weight: u32 = self.kinds.iter().map(|k| k.weight).sum();
        if total_weight == 0 || self.workers == 0 {
            return 0.0;
        }
        let mean_service_us: f64 = self
            .kinds
            .iter()
            .map(|k| k.service_us as f64 * k.weight as f64 / total_weight as f64)
            .sum();
        self.rate_per_sec * mean_service_us / 1_000_000.0 / self.workers as f64
    }
}

/// What one simulated storm did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Requests generated.
    pub offered: usize,
    /// Requests admitted and served.
    pub served: usize,
    /// Requests rejected by tenant quota (429).
    pub shed_quota: usize,
    /// Requests shed by overload protection (503).
    pub shed_overload: usize,
    /// Median served latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile served latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile served latency, microseconds.
    pub p99_us: u64,
    /// Worst served latency, microseconds.
    pub max_us: u64,
    /// Deepest in-flight queue observed.
    pub max_depth: usize,
}

impl SimReport {
    fn from_latencies(mut latencies: Vec<u64>) -> SimReport {
        latencies.sort_unstable();
        let pct = |p: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
            latencies[idx]
        };
        SimReport {
            served: latencies.len(),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies.last().copied().unwrap_or(0),
            ..SimReport::default()
        }
    }
}

/// Runs one open-loop storm. `admission: None` serves everything (the
/// unprotected baseline whose tail diverges past saturation);
/// `Some(controller)` drives the real shedding path. The controller
/// must share `clock`, which this function *sets* to each arrival's
/// virtual time — do not interleave other users of the same clock.
pub fn run_open_loop(
    config: &TrafficConfig,
    admission: Option<&AdmissionController>,
    clock: &VirtualClock,
) -> SimReport {
    let mut rng = DetRng::seed_from_u64(config.seed).fork("traffic");
    let total_weight: u32 = config.kinds.iter().map(|k| k.weight).sum::<u32>().max(1);
    let workers = config.workers.max(1);
    let mut free_at_us = vec![clock.now_ms().saturating_mul(1000); workers];

    // In-flight permits ordered by finish time; dropped as time passes.
    let mut inflight: Vec<(u64, crate::admission::Permit)> = Vec::new();
    let mut inflight_untracked: Vec<u64> = Vec::new();
    let mut latencies = Vec::new();
    let mut report = SimReport::default();

    let start_us = clock.now_ms().saturating_mul(1000);
    let end_us = start_us + config.duration_ms.saturating_mul(1000);
    let mut arrival_us = start_us as f64;
    loop {
        // Poisson process: exponential inter-arrival times.
        let u = rng.random_f64().max(f64::MIN_POSITIVE);
        arrival_us += -u.ln() / config.rate_per_sec * 1_000_000.0;
        let now_us = arrival_us as u64;
        if now_us >= end_us {
            break;
        }
        report.offered += 1;
        clock.set(now_us / 1000);

        // Retire requests that finished before this arrival so the
        // admission controller sees the true in-flight depth.
        inflight.retain(|(finish, _)| *finish > now_us);

        // Pick tenant (tenant 0 is hot) and kind.
        let tenant = if config.tenants <= 1 || rng.random_bool(0.5) {
            0
        } else {
            1 + rng.random_range(0..config.tenants.max(2) - 1)
        };
        let tenant_name = format!("tenant-{tenant}");
        let mut pick = rng.random_range(0..total_weight);
        let kind = config
            .kinds
            .iter()
            .find(|k| {
                if pick < k.weight {
                    true
                } else {
                    pick -= k.weight;
                    false
                }
            })
            .copied()
            .unwrap_or(TrafficKind {
                path: "/",
                weight: 1,
                service_us: 1_000,
            });

        let permit = match admission {
            None => None,
            Some(controller) => {
                match controller.admit(Some(&tenant_name), ShedClass::classify(kind.path)) {
                    AdmissionDecision::Admit(permit) => Some(permit),
                    AdmissionDecision::RejectQuota => {
                        report.shed_quota += 1;
                        continue;
                    }
                    AdmissionDecision::RejectOverload => {
                        report.shed_overload += 1;
                        continue;
                    }
                }
            }
        };

        // Earliest-free worker serves it.
        let (slot, &free) = free_at_us
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("workers >= 1");
        let start = free.max(now_us);
        let finish = start + kind.service_us;
        free_at_us[slot] = finish;
        latencies.push(finish - now_us);
        if let Some(permit) = permit {
            inflight.push((finish, permit));
            report.max_depth = report.max_depth.max(inflight.len());
        } else {
            // No controller: depth is the count of not-yet-finished work.
            inflight_untracked.retain(|&f| f > now_us);
            inflight_untracked.push(finish);
            report.max_depth = report.max_depth.max(inflight_untracked.len());
        }
    }
    // Let every in-flight request finish before the verdict is read.
    let drain_to = inflight
        .iter()
        .map(|(f, _)| *f)
        .chain(free_at_us.iter().copied())
        .max()
        .unwrap_or(end_us);
    clock.set(drain_to / 1000 + 1);
    drop(inflight);

    let offered = report.offered;
    let shed_quota = report.shed_quota;
    let shed_overload = report.shed_overload;
    let max_depth = report.max_depth;
    let mut out = SimReport::from_latencies(latencies);
    out.offered = offered;
    out.shed_quota = shed_quota;
    out.shed_overload = shed_overload;
    out.max_depth = max_depth;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use std::sync::Arc;

    #[test]
    fn same_seed_same_report() {
        let config = TrafficConfig::standard(7, 500.0, 2_000);
        let a = run_open_loop(&config, None, &VirtualClock::new());
        let b = run_open_loop(&config, None, &VirtualClock::new());
        assert_eq!(a, b);
    }

    #[test]
    fn overload_diverges_without_shedding_and_stays_bounded_with() {
        // 2x saturation: utilization ~2.0 at the standard mix.
        let mut config = TrafficConfig::standard(11, 1.0, 4_000);
        config.rate_per_sec = 2.0 / config.utilization();
        assert!((config.utilization() - 2.0).abs() < 0.01);

        let raw = run_open_loop(&config, None, &VirtualClock::new());

        let clock = VirtualClock::new();
        let controller = AdmissionController::new(
            Arc::new(clock.clone()),
            AdmissionConfig {
                tenant_rate_per_sec: 1e9,
                tenant_burst: 1e9,
                shed_depth: 16,
                hard_depth: 32,
                ..AdmissionConfig::default()
            },
        );
        let shed = run_open_loop(&config, Some(&controller), &clock);

        assert!(shed.shed_overload > 0, "overload must shed: {shed:?}");
        assert!(
            raw.p99_us > 4 * shed.p99_us,
            "unshedded tail must diverge: raw {} vs shed {}",
            raw.p99_us,
            shed.p99_us
        );
    }

    #[test]
    fn hot_tenant_hits_quota_before_others() {
        let config = TrafficConfig::standard(3, 200.0, 3_000);
        let clock = VirtualClock::new();
        let controller = AdmissionController::new(
            Arc::new(clock.clone()),
            AdmissionConfig {
                tenant_rate_per_sec: 20.0,
                tenant_burst: 20.0,
                shed_depth: usize::MAX,
                hard_depth: usize::MAX,
                ..AdmissionConfig::default()
            },
        );
        let report = run_open_loop(&config, Some(&controller), &clock);
        assert!(report.shed_quota > 0, "hot tenant over quota: {report:?}");
        assert!(report.served > 0);
        assert_eq!(controller.ops().tenants, 4);
    }
}
