//! The "About" mashup (§4.1, Figure 4).
//!
//! "With this query, starting from a picture sent to our system by the
//! tourist and its semantic location information, useful information is
//! retrieved for the user such as the description (from DBpedia) of
//! the city where the tourist is, the restaurants (and their websites)
//! near the user's location and other touristic attractions in the
//! vicinity … and other UGC content taken in the same location from
//! other users."
//!
//! [`MashupService::about`] runs the four arms as separate queries and
//! returns a structured result; [`MashupService::combined_query`]
//! renders the single 4-arm UNION query in the paper's own shape (each
//! arm a `{ SELECT … LIMIT 5 }` subselect) and
//! [`MashupService::about_combined`] executes it.
//!
//! Radii note: the paper passes Virtuoso precisions of 1 / 0.3 / 1 /
//! 0.2 in SRS units; our `bif:st_intersects` takes kilometers, so the
//! defaults below keep the *relative* ordering (city ≫ tourism ≈
//! restaurants > UGC) at our synthetic data's scale.

use lodify_rdf::Iri;
use lodify_sparql::QueryResults;
use lodify_store::Store;

use crate::error::PlatformError;
use crate::search::resource_point;

/// Mashup radii (kilometers).
#[derive(Debug, Clone)]
pub struct MashupConfig {
    /// City-description arm.
    pub city_radius_km: f64,
    /// Restaurants arm.
    pub restaurant_radius_km: f64,
    /// Tourism arm.
    pub tourism_radius_km: f64,
    /// Other-UGC arm.
    pub ugc_radius_km: f64,
    /// Preferred abstract language (the paper filters `lang(?desc)`
    /// to `'it'`).
    pub abstract_lang: String,
    /// Per-arm LIMIT (the paper uses 5).
    pub per_arm_limit: usize,
}

impl Default for MashupConfig {
    fn default() -> Self {
        MashupConfig {
            city_radius_km: 30.0,
            restaurant_radius_km: 1.0,
            tourism_radius_km: 1.5,
            ugc_radius_km: 0.3,
            abstract_lang: "it".into(),
            per_arm_limit: 5,
        }
    }
}

/// One nearby place row.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceInfo {
    /// Label.
    pub label: String,
    /// Website or description, when available.
    pub detail: Option<String>,
}

/// Structured mashup result.
#[derive(Debug, Clone, Default)]
pub struct MashupResult {
    /// City label + abstract from DBpedia.
    pub city: Option<(String, String)>,
    /// Nearby restaurants (label, website).
    pub restaurants: Vec<PlaceInfo>,
    /// Nearby touristic attractions.
    pub attractions: Vec<PlaceInfo>,
    /// Other UGC media links taken at the same location.
    pub related_content: Vec<String>,
}

/// Runs mashup queries for a picture.
#[derive(Debug, Clone, Default)]
pub struct MashupService {
    config: MashupConfig,
}

impl MashupService {
    /// Service with default radii.
    pub fn standard() -> MashupService {
        MashupService {
            config: MashupConfig::default(),
        }
    }

    /// Service with custom radii.
    pub fn with_config(config: MashupConfig) -> MashupService {
        MashupService { config }
    }

    /// Builds the structured mashup for a picture resource.
    pub fn about(&self, store: &Store, picture: &Iri) -> Result<MashupResult, PlatformError> {
        let Some(location) = resource_point(store, picture) else {
            return Ok(MashupResult::default());
        };
        let wkt = location.to_wkt();
        let c = &self.config;

        // Arm 1 — city description from DBpedia, joined through the
        // LinkedGeoData city node exactly like the paper's query.
        let city_q = format!(
            r#"SELECT DISTINCT ?lbl ?desc WHERE {{
                 ?city a lgdo:City .
                 ?city geo:geometry ?locCity .
                 ?city rdfs:label ?lbl .
                 ?others rdfs:label ?lbl .
                 ?others dbpo:abstract ?desc .
                 ?others a dbpo:Place .
                 FILTER langMatches(lang(?lbl), '{lang}') .
                 FILTER langMatches(lang(?desc), '{lang}') .
                 FILTER( bif:st_intersects( "{wkt}", ?locCity, {r} ) ) .
               }} LIMIT {limit}"#,
            lang = c.abstract_lang,
            r = c.city_radius_km,
            limit = c.per_arm_limit,
        );
        let city = lodify_sparql::execute(store, &city_q)?
            .iter()
            .next()
            .and_then(|row| {
                Some((
                    row.get("lbl")?.lexical().to_string(),
                    row.get("desc")?.lexical().to_string(),
                ))
            });

        let restaurants = self.places(store, &wkt, "lgdo:Restaurant", c.restaurant_radius_km)?;
        let attractions = self.places(store, &wkt, "lgdo:Tourism", c.tourism_radius_km)?;

        // Arm 4 — other UGC at the same spot.
        let ugc_q = format!(
            r#"SELECT DISTINCT ?link WHERE {{
                 ?others a sioct:MicroblogPost .
                 ?others geo:geometry ?location .
                 ?others comm:image-data ?link .
                 FILTER( bif:st_intersects( "{wkt}", ?location, {r} ) ) .
               }} LIMIT {limit}"#,
            r = c.ugc_radius_km,
            limit = c.per_arm_limit + 1, // the picture itself may appear
        );
        let own_link_q = format!(
            "SELECT ?l WHERE {{ <{}> comm:image-data ?l . }}",
            picture.as_str()
        );
        let own_link: Option<String> = lodify_sparql::execute(store, &own_link_q)?
            .column("l")
            .first()
            .map(|t| t.lexical().to_string());
        let related_content: Vec<String> = lodify_sparql::execute(store, &ugc_q)?
            .column("link")
            .into_iter()
            .map(|t| t.lexical().to_string())
            .filter(|l| Some(l) != own_link.as_ref())
            .take(c.per_arm_limit)
            .collect();

        Ok(MashupResult {
            city,
            restaurants,
            attractions,
            related_content,
        })
    }

    fn places(
        &self,
        store: &Store,
        wkt: &str,
        class: &str,
        radius: f64,
    ) -> Result<Vec<PlaceInfo>, PlatformError> {
        let q = format!(
            r#"SELECT DISTINCT ?lbl ?desc WHERE {{
                 ?others a ?entType .
                 ?others geo:geometry ?location .
                 ?others rdfs:label ?lbl .
                 OPTIONAL {{ ?others <http://linkedgeodata.org/property/website> ?desc }}
                 FILTER (?entType in ({class})) .
                 FILTER( bif:st_intersects( "{wkt}", ?location, {radius} ) ) .
               }} LIMIT {limit}"#,
            limit = self.config.per_arm_limit,
        );
        Ok(lodify_sparql::execute(store, &q)?
            .iter()
            .filter_map(|row| {
                Some(PlaceInfo {
                    label: row.get("lbl")?.lexical().to_string(),
                    detail: row.get("desc").map(|t| t.lexical().to_string()),
                })
            })
            .collect())
    }

    /// Renders the paper's single 4-arm UNION query for a picture.
    pub fn combined_query(&self, picture: &Iri) -> String {
        let c = &self.config;
        format!(
            r#"SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       <{pid}> geo:geometry ?locPID .
       ?city geo:geometry ?locCity .
       ?city a ?entType .
       ?city rdfs:label ?lbl .
       ?others rdfs:label ?lbl .
       ?others dbpo:abstract ?desc .
       ?others a dbpo:Place .
       FILTER (?entType in (lgdo:City)) .
       FILTER langMatches(lang(?desc), '{lang}') .
       FILTER( bif:st_intersects( ?locPID, ?locCity, {city_r} ) ) .
  }} LIMIT {limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       <{pid}> geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       OPTIONAL {{ ?others <http://linkedgeodata.org/property/website> ?desc }}
       FILTER (?entType in (lgdo:Restaurant)) .
       FILTER( bif:st_intersects( ?locPID, ?location, {rest_r} ) ) .
  }} LIMIT {limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       <{pid}> geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       OPTIONAL {{ ?others <http://linkedgeodata.org/property/website> ?desc }}
       FILTER (?entType in (lgdo:Tourism)) .
       FILTER( bif:st_intersects( ?locPID, ?location, {tour_r} ) ) .
  }} LIMIT {limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       <{pid}> geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       ?others comm:image-data ?desc .
       FILTER (?entType in (sioct:MicroblogPost)) .
       FILTER( bif:st_intersects( ?locPID, ?location, {ugc_r} ) ) .
  }} LIMIT {limit} }}
}}"#,
            pid = picture.as_str(),
            lang = c.abstract_lang,
            city_r = c.city_radius_km,
            rest_r = c.restaurant_radius_km,
            tour_r = c.tourism_radius_km,
            ugc_r = c.ugc_radius_km,
            limit = c.per_arm_limit,
        )
    }

    /// Executes the combined query verbatim.
    pub fn about_combined(
        &self,
        store: &Store,
        picture: &Iri,
    ) -> Result<QueryResults, PlatformError> {
        Ok(lodify_sparql::execute(
            store,
            &self.combined_query(picture),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Platform, Upload};
    use lodify_context::Gazetteer;
    use lodify_relational::WorkloadConfig;

    fn platform_with_mole_picture() -> (Platform, Iri) {
        let mut p = Platform::bootstrap(WorkloadConfig {
            seed: 3,
            users: 15,
            pictures: 200,
            ..WorkloadConfig::default()
        })
        .unwrap();
        let gaz = Gazetteer::global();
        let mole = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
        let receipt = p
            .upload(Upload {
                user_id: 1,
                title: "La Mole di sera".into(),
                tags: vec!["torino".into()],
                ts: 1_320_700_000,
                gps: Some(mole.offset_km(0.02, 0.02)),
                poi: None,
            })
            .unwrap();
        (p, receipt.resource)
    }

    #[test]
    fn structured_mashup_has_all_four_arms() {
        let (p, pic) = platform_with_mole_picture();
        let mashup = MashupService::standard().about(p.store(), &pic).unwrap();

        let (city_label, city_abstract) = mashup.city.expect("city arm");
        assert!(
            city_label.contains("Torino") || city_label.contains("Turin"),
            "{city_label}"
        );
        assert!(!city_abstract.is_empty());

        // Caffè Mole sits ~50 m from the Mole; Del Cambio ~600 m — but
        // only restaurants/hotels carry websites; cafés may lack detail.
        assert!(
            mashup.restaurants.iter().any(|r| r.label == "Del Cambio"),
            "{:?}",
            mashup.restaurants
        );
        assert!(
            mashup
                .attractions
                .iter()
                .any(|a| a.label == "Mole Antonelliana"),
            "{:?}",
            mashup.attractions
        );
        // The workload scatters plenty of Mole pictures nearby.
        assert!(!mashup.related_content.is_empty());
        assert!(mashup.related_content.len() <= 5);
    }

    #[test]
    fn restaurants_carry_websites() {
        let (p, pic) = platform_with_mole_picture();
        let mashup = MashupService::standard().about(p.store(), &pic).unwrap();
        let cambio = mashup
            .restaurants
            .iter()
            .find(|r| r.label == "Del Cambio")
            .expect("restaurant found");
        assert!(cambio
            .detail
            .as_deref()
            .unwrap_or("")
            .contains("example.com"));
    }

    #[test]
    fn own_picture_excluded_from_related_content() {
        let (p, pic) = platform_with_mole_picture();
        let own_link_q = format!(
            "SELECT ?l WHERE {{ <{}> comm:image-data ?l . }}",
            pic.as_str()
        );
        let own = p.query(&own_link_q).unwrap().column("l")[0]
            .lexical()
            .to_string();
        let mashup = MashupService::standard().about(p.store(), &pic).unwrap();
        assert!(!mashup.related_content.contains(&own));
    }

    #[test]
    fn combined_union_query_parses_and_returns_rows() {
        let (p, pic) = platform_with_mole_picture();
        let service = MashupService::standard();
        let results = service.about_combined(p.store(), &pic).unwrap();
        assert!(!results.is_empty());
        assert_eq!(results.vars, vec!["lbl", "entType", "desc", "others"]);
        // Rows from at least three distinct entity types (city,
        // tourism, UGC are guaranteed by the fixture).
        let types: std::collections::HashSet<String> = results
            .iter()
            .filter_map(|row| row.get("entType").map(|t| t.lexical().to_string()))
            .collect();
        assert!(types.len() >= 3, "{types:?}");
    }

    #[test]
    fn picture_without_gps_yields_empty_mashup() {
        let mut p = Platform::bootstrap(WorkloadConfig::small(5)).unwrap();
        let receipt = p
            .upload(Upload {
                user_id: 1,
                title: "indoor shot".into(),
                tags: vec!["indoor".into()],
                ts: 0,
                gps: None,
                poi: None,
            })
            .unwrap();
        let mashup = MashupService::standard()
            .about(p.store(), &receipt.resource)
            .unwrap();
        assert!(mashup.city.is_none());
        assert!(mashup.restaurants.is_empty());
        assert!(mashup.related_content.is_empty());
    }
}
