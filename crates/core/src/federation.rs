//! The federated architecture of §6 — the paper's future work, built.
//!
//! "We envision a federation of interconnected social networks and web
//! applications, each one hosted right inside the end-users' home
//! network devices." The components §6 enumerates are simulated
//! in-process, deterministically:
//!
//! * **home network device** → [`Node`]: one store + FOAF profiles +
//!   media per household;
//! * **WebFinger** → [`Acct`]/directory: `acct:user@host` identities
//!   resolved across nodes ("identification of users across different
//!   social networks and the identity validation");
//! * **FOAF profile sharing** → [`Node::profile_document`] /
//!   [`Node::import_profile`];
//! * **PubSubHubbub** → [`Federation::subscribe`] + topic fan-out with
//!   near-instant notifications;
//! * **SparqlPuSH** → [`Federation::sparql_subscribe`]: a SPARQL query
//!   registered against a publisher node; on updates the query re-runs
//!   and *new* rows are pushed;
//! * **ActivityStreams** → [`Activity`]/[`Timeline`] per node, merged
//!   across subscriptions;
//! * **Salmon** → [`Federation::reply`]: comments swim upstream to the
//!   node owning the original content.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

use lodify_obs::{Metrics, SharedClock, TraceContext, WallClock};
use lodify_rdf::{ns, Iri, Literal, Term, Triple};
use lodify_resilience::{DeadLetterQueue, DetRng, FaultPlan, ReplayReport, RetryPolicy, Telemetry};
use lodify_store::Store;

use crate::albums::AlbumSpec;
use crate::error::PlatformError;
use crate::live::{LiveAlbumId, PushHub, StandingQueryEngine, SubscriberAlbum, SubscriberId};
use crate::metrics::LivePushOps;

/// A WebFinger-style account identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Acct {
    /// Local user name.
    pub user: String,
    /// Hosting node (domain).
    pub host: String,
}

impl Acct {
    /// Parses `acct:user@host`.
    ///
    /// Both parts must be non-empty and free of whitespace, embedded
    /// `@`/`:`, and `/` (these characters would corrupt the IRIs minted
    /// from the account). The host is lowercased — DNS names are
    /// case-insensitive, so `acct:Oscar@Node1.example` and
    /// `acct:Oscar@node1.example` resolve to the same account on every
    /// node.
    pub fn parse(text: &str) -> Option<Acct> {
        let rest = text.strip_prefix("acct:")?;
        let (user, host) = rest.split_once('@')?;
        if user.is_empty() || host.is_empty() {
            return None;
        }
        let clean = |s: &str| {
            !s.chars()
                .any(|c| c.is_whitespace() || matches!(c, '@' | ':' | '/'))
        };
        if !clean(user) || !clean(host) {
            return None;
        }
        Some(Acct {
            user: user.to_string(),
            host: host.to_ascii_lowercase(),
        })
    }

    /// The profile IRI this account's node mints.
    pub fn profile_iri(&self) -> Iri {
        Iri::new_unchecked(format!("http://{}/people/{}", self.host, self.user))
    }
}

impl fmt::Display for Acct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct:{}@{}", self.user, self.host)
    }
}

/// ActivityStreams verbs used by the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// New media published.
    Post,
    /// Salmon reply/comment.
    Comment,
    /// New follow edge.
    Follow,
}

/// One ActivityStreams entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// Acting account.
    pub actor: Acct,
    /// Verb.
    pub verb: Verb,
    /// Object IRI (media item, profile, …).
    pub object: Iri,
    /// Human-readable summary.
    pub summary: String,
    /// Timestamp (Unix seconds; supplied by callers, never wall clock).
    pub ts: i64,
}

/// A per-node activity timeline, newest last.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    entries: Vec<Activity>,
}

impl Timeline {
    /// Appends an activity keeping timestamp order (stable for ties).
    pub fn push(&mut self, activity: Activity) {
        let idx = self.entries.partition_point(|a| a.ts <= activity.ts);
        self.entries.insert(idx, activity);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[Activity] {
        &self.entries
    }
}

/// One journaled content mutation on a node's store — the unit the
/// replication layer packages into emissions. Only *content* (media,
/// comments, retractions) is journaled; profile documents travel via
/// the dedicated FOAF sharing flow instead.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeOp {
    /// A triple inserted into the node's default graph.
    Insert(Triple),
    /// A triple removed from the node's default graph.
    Remove(Triple),
}

/// A home-network node: "a generic NAS server attached to the user's
/// home network … it will run the platform, store and stream users'
/// content".
#[derive(Debug)]
pub struct Node {
    host: String,
    store: Store,
    users: Vec<Acct>,
    timeline: Timeline,
    next_media: u64,
    /// Content mutations since the last replication commit.
    ops: Vec<NodeOp>,
}

impl Node {
    fn new(host: &str) -> Node {
        Node {
            host: host.to_string(),
            store: Store::new(),
            users: Vec::new(),
            timeline: Timeline::default(),
            next_media: 1,
            ops: Vec::new(),
        }
    }

    /// The node's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The node's local RDF store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The node's merged timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Local accounts.
    pub fn users(&self) -> &[Acct] {
        &self.users
    }

    fn add_user(&mut self, user: &str, full_name: &str) -> Acct {
        let acct = Acct {
            user: user.to_string(),
            host: self.host.clone(),
        };
        let profile = Term::Iri(acct.profile_iri());
        let g = self.store.default_graph();
        self.store.insert(
            &Triple::new_unchecked(
                profile.clone(),
                ns::iri::rdf_type(),
                Term::Iri(ns::FOAF.iri("Person")),
            ),
            g,
        );
        self.store.insert(
            &Triple::new_unchecked(
                profile.clone(),
                ns::iri::foaf_name(),
                Term::Literal(Literal::simple(user)),
            ),
            g,
        );
        self.store.insert(
            &Triple::new_unchecked(
                profile,
                ns::FOAF.iri("fullName"),
                Term::Literal(Literal::simple(full_name)),
            ),
            g,
        );
        self.users.push(acct.clone());
        acct
    }

    /// Exports a user's FOAF profile for cross-node sharing.
    pub fn profile_document(&self, acct: &Acct) -> Vec<Triple> {
        let subject = Term::Iri(acct.profile_iri());
        self.store.match_terms(Some(&subject), None, None)
    }

    /// Imports a remote profile document ("Profile data sharing and
    /// relationships with another networks, implemented with FOAF").
    pub fn import_profile(&mut self, triples: &[Triple]) -> usize {
        let g = self.store.default_graph();
        self.store.insert_all(triples, g)
    }

    /// Inserts a *content* triple into the default graph and journals
    /// it for the replication layer.
    fn insert_content(&mut self, triple: Triple) {
        let g = self.store.default_graph();
        if self.store.insert(&triple, g) {
            self.ops.push(NodeOp::Insert(triple));
        }
    }

    /// Removes a content triple, journaling the removal.
    fn remove_content(&mut self, triple: Triple) -> bool {
        if self.store.remove(&triple) {
            self.ops.push(NodeOp::Remove(triple));
            true
        } else {
            false
        }
    }

    /// Drains the content mutations accumulated since the last call —
    /// the payload of the next emission.
    pub(crate) fn drain_ops(&mut self) -> Vec<NodeOp> {
        std::mem::take(&mut self.ops)
    }

    /// Ops journaled so far (a cursor for [`Node::ops_delta`]).
    pub(crate) fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// The `(additions, removals)` journaled since `from` — a
    /// non-consuming view of the delta a mutation just produced, fed
    /// to the live standing-query engines without disturbing the
    /// replication drain.
    pub(crate) fn ops_delta(&self, from: usize) -> (Vec<Triple>, Vec<Triple>) {
        let mut additions = Vec::new();
        let mut removals = Vec::new();
        for op in &self.ops[from.min(self.ops.len())..] {
            match op {
                NodeOp::Insert(t) => additions.push(t.clone()),
                NodeOp::Remove(t) => removals.push(t.clone()),
            }
        }
        (additions, removals)
    }

    /// Mutable store access for the replication layer. Remote applies
    /// go straight to the store and are *not* journaled as local ops,
    /// so replicated content never echoes back to its origin.
    pub(crate) fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    fn publish_media(&mut self, acct: &Acct, title: &str, ts: i64) -> Iri {
        let iri = Iri::new_unchecked(format!("http://{}/media/{}", self.host, self.next_media));
        self.next_media += 1;
        let subject = Term::Iri(iri.clone());
        self.insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::rdf_type(),
            Term::Iri(ns::iri::microblog_post()),
        ));
        self.insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::rdfs_label(),
            Term::Literal(Literal::simple(title)),
        ));
        self.insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::foaf_maker(),
            Term::Iri(acct.profile_iri()),
        ));
        self.insert_content(Triple::new_unchecked(
            subject,
            ns::DCTERMS.iri("created"),
            Term::Literal(Literal::integer(ts)),
        ));
        iri
    }

    fn add_comment(&mut self, target: &Iri, author: &Acct, text: &str, ts: i64) -> Iri {
        let iri = Iri::new_unchecked(format!(
            "http://{}/comments/{}-{}",
            self.host, self.next_media, ts
        ));
        self.next_media += 1;
        let subject = Term::Iri(iri.clone());
        self.insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::SIOC.iri("reply_of"),
            Term::Iri(target.clone()),
        ));
        self.insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::SIOC.iri("content"),
            Term::Literal(Literal::simple(text)),
        ));
        self.insert_content(Triple::new_unchecked(
            subject,
            ns::iri::foaf_maker(),
            Term::Iri(author.profile_iri()),
        ));
        iri
    }
}

// ---------------------------------------------------------------------
// §6.3 home devices: UPnP media server + photo frame, and §6.2 OEmbed
// ---------------------------------------------------------------------

/// A media entry as browsed over UPnP.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaEntry {
    /// The media resource IRI.
    pub iri: Iri,
    /// Title.
    pub title: String,
    /// Publication timestamp.
    pub ts: i64,
}

/// A playback stream handed to a UPnP device.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaStream {
    /// Stream URL (the media IRI, served by the node).
    pub url: String,
    /// MIME type.
    pub mime: &'static str,
}

/// An OEmbed-style embed descriptor (§6.2: "Multimedia content
/// sharing, accomplished by using OEmbed").
#[derive(Debug, Clone, PartialEq)]
pub struct OEmbed {
    /// Embed type (always `photo` here).
    pub kind: &'static str,
    /// Media title.
    pub title: String,
    /// Direct media URL.
    pub url: String,
    /// Provider (the node host).
    pub provider: String,
    /// Author profile IRI.
    pub author: Option<String>,
}

impl Node {
    /// UPnP browse: the node's media entries, newest first — what a
    /// "UPnP-compatible photoframe" iterates for its slideshow (§6.3).
    pub fn browse_media(&self) -> Vec<MediaEntry> {
        let type_pred = ns::iri::rdf_type();
        let post = Term::Iri(ns::iri::microblog_post());
        let mut entries: Vec<MediaEntry> = self
            .store
            .match_terms(None, Some(&type_pred), Some(&post))
            .into_iter()
            .filter_map(|t| {
                let iri = t.subject.as_iri()?.clone();
                let subject = t.subject;
                let title = self
                    .store
                    .match_terms(Some(&subject), Some(&ns::iri::rdfs_label()), None)
                    .into_iter()
                    .next()
                    .map(|t| t.object.lexical().to_string())?;
                let ts = self
                    .store
                    .match_terms(Some(&subject), Some(&ns::DCTERMS.iri("created")), None)
                    .into_iter()
                    .next()
                    .and_then(|t| t.object.as_literal()?.as_i64())?;
                Some(MediaEntry { iri, title, ts })
            })
            .collect();
        entries.sort_by(|a, b| b.ts.cmp(&a.ts).then(a.iri.cmp(&b.iri)));
        entries
    }

    /// UPnP playback request: a device asks for a file to render.
    pub fn request_playback(&self, media: &Iri) -> Result<MediaStream, PlatformError> {
        let subject = Term::Iri(media.clone());
        let exists = !self
            .store
            .match_terms(Some(&subject), Some(&ns::iri::rdf_type()), None)
            .is_empty();
        if !exists {
            return Err(PlatformError::NotFound(format!("media {media}")));
        }
        Ok(MediaStream {
            url: media.as_str().to_string(),
            mime: "image/jpeg",
        })
    }

    /// OEmbed endpoint: embed descriptor for a media IRI (§6.2).
    pub fn oembed(&self, media: &Iri) -> Result<OEmbed, PlatformError> {
        let subject = Term::Iri(media.clone());
        let title = self
            .store
            .match_terms(Some(&subject), Some(&ns::iri::rdfs_label()), None)
            .into_iter()
            .next()
            .map(|t| t.object.lexical().to_string())
            .ok_or_else(|| PlatformError::NotFound(format!("media {media}")))?;
        let author = self
            .store
            .match_terms(Some(&subject), Some(&ns::iri::foaf_maker()), None)
            .into_iter()
            .next()
            .map(|t| t.object.lexical().to_string());
        Ok(OEmbed {
            kind: "photo",
            title,
            url: media.as_str().to_string(),
            provider: self.host.clone(),
            author,
        })
    }
}

/// The §6.3 photo frame: a UPnP device showing "a real-time slideshow
/// of the media content that a family member is taking during his
/// holidays".
#[derive(Debug, Default)]
pub struct PhotoFrame {
    shown: Vec<Iri>,
}

impl PhotoFrame {
    /// A blank frame.
    pub fn new() -> PhotoFrame {
        PhotoFrame::default()
    }

    /// One refresh cycle: browse the media server, fetch any items not
    /// yet shown (newest first), and add them to the slideshow.
    /// Returns the newly shown entries.
    pub fn refresh(&mut self, server: &Node) -> Result<Vec<MediaEntry>, PlatformError> {
        let mut new_items = Vec::new();
        for entry in server.browse_media() {
            if self.shown.contains(&entry.iri) {
                continue;
            }
            // A real frame would stream the file; we validate the
            // playback handshake.
            server.request_playback(&entry.iri)?;
            self.shown.push(entry.iri.clone());
            new_items.push(entry);
        }
        Ok(new_items)
    }

    /// Everything shown so far, in display order.
    pub fn slideshow(&self) -> &[Iri] {
        &self.shown
    }
}

/// A node identifier within a federation.
pub type NodeId = usize;

/// One delivered notification (for assertions/experiments).
#[derive(Debug, Clone, PartialEq)]
pub enum Notification {
    /// A PubSubHubbub activity delivery to a subscriber node.
    Activity {
        /// Receiving node.
        to: NodeId,
        /// The delivered activity.
        activity: Activity,
    },
    /// A SparqlPuSH delivery of new result rows.
    SparqlRows {
        /// Receiving node.
        to: NodeId,
        /// Stringified new rows.
        rows: Vec<String>,
    },
}

struct SparqlSubscription {
    publisher: NodeId,
    subscriber: NodeId,
    query: String,
    seen: HashSet<String>,
}

/// Live-album state for one publisher node: a standing-query engine
/// over the node's store plus the SparqlPuSH hub shipping its diffs.
/// Keyed per node so `LiveAlbumId` spaces stay disjoint between
/// publishers, and so replication can maintain a replica's live
/// albums independently of the origin's.
struct NodeLive {
    engine: StandingQueryEngine,
    hub: PushHub,
}

/// Delivery resilience: a scripted fault plan judged per receiving
/// node (`node:<host>`), retries with virtual backoff, and a
/// dead-letter queue of undeliverable notifications replayed by
/// [`Federation::redeliver`].
struct DeliveryResilience {
    plan: FaultPlan,
    retry: RetryPolicy,
    rng: DetRng,
    dlq: DeadLetterQueue<Notification>,
    telemetry: Telemetry,
}

/// The federation: nodes + WebFinger directory + hub.
pub struct Federation {
    nodes: Vec<Node>,
    /// `(topic acct, subscriber node)` — PubSubHubbub subscriptions.
    subscriptions: Vec<(Acct, NodeId)>,
    sparql_subs: Vec<SparqlSubscription>,
    /// Per-publisher live albums (differential SparqlPuSH).
    live: BTreeMap<NodeId, NodeLive>,
    resilience: Option<DeliveryResilience>,
    observability: Option<Metrics>,
    /// Clock for delivery timing — wall by default, the fault plan's
    /// virtual clock once one is installed, so latency histograms are
    /// deterministic under scripted time.
    clock: SharedClock,
}

impl Default for Federation {
    fn default() -> Self {
        Self::new()
    }
}

impl Federation {
    /// Attempt cap for a parked notification (initial failure + DLQ
    /// replays).
    pub const DELIVERY_MAX_ATTEMPTS: u32 = 8;

    /// An empty federation.
    pub fn new() -> Federation {
        Federation {
            nodes: Vec::new(),
            subscriptions: Vec::new(),
            sparql_subs: Vec::new(),
            live: BTreeMap::new(),
            resilience: None,
            observability: None,
            clock: Arc::new(WallClock::new()),
        }
    }

    /// Overrides the clock used to time deliveries (any
    /// [`lodify_obs::Clock`], e.g. a shared
    /// [`lodify_resilience::VirtualClock`]). [`Federation::with_fault_plan`]
    /// binds the plan's virtual clock automatically.
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// Attaches a metrics registry (typically the platform's, via
    /// `platform.obs().metrics().clone()`): successful deliveries are
    /// timed into the `federation.deliver` histogram and counted under
    /// `federation.deliveries`; failed attempts under
    /// `federation.delivery.failures`.
    pub fn set_observability(&mut self, metrics: Metrics) {
        self.observability = Some(metrics);
    }

    /// Installs fault-injected delivery: every PuSH/Salmon notification
    /// to a node is judged by `plan` under target `node:<host>`,
    /// retried per `retry` (advancing the plan's virtual clock), and
    /// parked in a dead-letter queue when retries exhaust.
    pub fn with_fault_plan(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.clock = Arc::new(plan.clock().clone());
        // Live-push hubs share the plan: their deliveries are judged
        // under `push:<subscriber host>` next to the node outages.
        for live in self.live.values_mut() {
            live.hub.with_fault_plan(plan.clone(), retry.clone());
        }
        self.resilience = Some(DeliveryResilience {
            plan,
            retry,
            rng: DetRng::seed_from_u64(0).fork("federation-delivery"),
            dlq: DeadLetterQueue::new(Self::DELIVERY_MAX_ATTEMPTS),
            telemetry: Telemetry::new(),
        });
    }

    /// Undelivered notifications awaiting [`Federation::redeliver`].
    pub fn undelivered(&self) -> usize {
        self.resilience.as_ref().map(|r| r.dlq.depth()).unwrap_or(0)
    }

    /// Notifications abandoned after
    /// [`Federation::DELIVERY_MAX_ATTEMPTS`] attempts — surfaced for
    /// operators, never silently dropped.
    pub fn exhausted_deliveries(&self) -> usize {
        self.resilience
            .as_ref()
            .map(|r| r.dlq.exhausted().len())
            .unwrap_or(0)
    }

    /// Delivery telemetry (`None` without a fault plan):
    /// `federation.delivered` / `federation.retries` /
    /// `federation.parked` / `federation.redelivered` counters and the
    /// `federation.dlq.depth` gauge.
    pub fn delivery_telemetry(&self) -> Option<&Telemetry> {
        self.resilience.as_ref().map(|r| &r.telemetry)
    }

    /// Adds a home node. Host names must be unique.
    pub fn add_node(&mut self, host: &str) -> Result<NodeId, PlatformError> {
        if self.nodes.iter().any(|n| n.host == host) {
            return Err(PlatformError::Invalid(format!("duplicate host {host:?}")));
        }
        self.nodes.push(Node::new(host));
        Ok(self.nodes.len() - 1)
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node, PlatformError> {
        self.nodes
            .get(id)
            .ok_or_else(|| PlatformError::NotFound(format!("node {id}")))
    }

    /// Mutable node access for the replication layer.
    pub(crate) fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, PlatformError> {
        self.nodes
            .get_mut(id)
            .ok_or_else(|| PlatformError::NotFound(format!("node {id}")))
    }

    /// The number of nodes in the federation.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the federation has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a user on a node; the account becomes WebFinger-
    /// resolvable federation-wide.
    pub fn register_user(
        &mut self,
        node: NodeId,
        user: &str,
        full_name: &str,
    ) -> Result<Acct, PlatformError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or_else(|| PlatformError::NotFound(format!("node {node}")))?;
        if n.users.iter().any(|a| a.user == user) {
            return Err(PlatformError::Invalid(format!(
                "user {user:?} exists on {}",
                n.host
            )));
        }
        Ok(n.add_user(user, full_name))
    }

    /// WebFinger resolution: `acct:user@host` → (node, profile IRI).
    pub fn webfinger(&self, acct_uri: &str) -> Result<(NodeId, Iri), PlatformError> {
        let acct = Acct::parse(acct_uri)
            .ok_or_else(|| PlatformError::Invalid(format!("bad acct URI {acct_uri:?}")))?;
        let node = self
            .nodes
            .iter()
            .position(|n| n.host == acct.host)
            .ok_or_else(|| PlatformError::NotFound(format!("host {:?}", acct.host)))?;
        if !self.nodes[node].users.contains(&acct) {
            return Err(PlatformError::NotFound(format!("{acct}")));
        }
        Ok((node, acct.profile_iri()))
    }

    /// Follows: subscriber's user follows the topic account via the
    /// hub, imports the remote FOAF profile, and records a `foaf:knows`
    /// edge — the §6 "relationships with another networks" flow.
    pub fn subscribe(
        &mut self,
        subscriber: NodeId,
        follower: &Acct,
        topic: &Acct,
    ) -> Result<(), PlatformError> {
        let (publisher_node, _) = self.webfinger(&topic.to_string())?;
        let profile = self.nodes[publisher_node].profile_document(topic);
        let sub_node = self
            .nodes
            .get_mut(subscriber)
            .ok_or_else(|| PlatformError::NotFound(format!("node {subscriber}")))?;
        sub_node.import_profile(&profile);
        let g = sub_node.store.default_graph();
        let knows = Triple::new_unchecked(
            Term::Iri(follower.profile_iri()),
            ns::iri::foaf_knows(),
            Term::Iri(topic.profile_iri()),
        );
        sub_node.store.insert(&knows, g);
        // Profile import and the knows edge bypass the ops journal
        // (they are not content, so replication must not ship them),
        // but the subscriber's live Q2-style albums still need the
        // delta: a new friendship can pull content into a
        // friends-of album.
        let mut additions = profile;
        additions.push(knows);
        self.live_maintain(subscriber, &additions, &[], None);
        if !self
            .subscriptions
            .iter()
            .any(|(t, s)| t == topic && *s == subscriber)
        {
            self.subscriptions.push((topic.clone(), subscriber));
        }
        Ok(())
    }

    /// SparqlPuSH: registers a SPARQL query against a publisher node;
    /// future publishes re-run it and push only *new* rows.
    pub fn sparql_subscribe(
        &mut self,
        subscriber: NodeId,
        publisher: NodeId,
        query: &str,
    ) -> Result<(), PlatformError> {
        // Validate the query and seed the seen-set with current rows.
        let results = lodify_sparql::execute(&self.node(publisher)?.store, query)?;
        let seen = results.rows.iter().map(|row| format!("{row:?}")).collect();
        self.sparql_subs.push(SparqlSubscription {
            publisher,
            subscriber,
            query: query.to_string(),
            seen,
        });
        Ok(())
    }

    /// Differential SparqlPuSH (ROADMAP item 4): registers `spec` as a
    /// standing query over `publisher`'s store and subscribes
    /// `subscriber`'s host to the resulting [`crate::live::AlbumDiff`]
    /// stream. Unlike [`Federation::sparql_subscribe`], which re-runs
    /// the whole query on every publish and pushes stringified new
    /// rows, this ships exact membership diffs maintained in O(delta).
    /// Deliveries are judged by the installed fault plan under target
    /// `push:<subscriber host>`.
    pub fn live_subscribe(
        &mut self,
        subscriber: NodeId,
        publisher: NodeId,
        spec: &AlbumSpec,
    ) -> Result<(LiveAlbumId, SubscriberId), PlatformError> {
        self.node(publisher)?;
        let callback = self.node(subscriber)?.host.clone();
        if !self.live.contains_key(&publisher) {
            let mut hub = PushHub::new();
            if let Some(res) = &self.resilience {
                hub.with_fault_plan(res.plan.clone(), res.retry.clone());
            }
            self.live.insert(
                publisher,
                NodeLive {
                    engine: StandingQueryEngine::new(),
                    hub,
                },
            );
        }
        let Federation { nodes, live, .. } = self;
        let entry = live.get_mut(&publisher).expect("inserted above");
        let album = entry.engine.register(&nodes[publisher].store, spec);
        let sub = entry.hub.subscribe(&callback, album, &entry.engine);
        entry.hub.pump();
        Ok((album, sub))
    }

    /// Feeds a committed delta on `node`'s store to its standing-query
    /// engine and ships the resulting diffs. Called after every content
    /// mutation — local publishes/retractions/replies, follow-driven
    /// profile imports, and replication applying a peer's emission to a
    /// replica — so live albums stay maintained on replicas too.
    pub(crate) fn live_maintain(
        &mut self,
        node: NodeId,
        additions: &[Triple],
        removals: &[Triple],
        trace: Option<TraceContext>,
    ) {
        let Federation { nodes, live, .. } = self;
        let Some(entry) = live.get_mut(&node) else {
            return;
        };
        let Some(n) = nodes.get(node) else { return };
        let mut diffs = entry.engine.apply(&n.store, additions, removals);
        for diff in &mut diffs {
            diff.trace = trace;
            entry.hub.offer(diff);
        }
        if !diffs.is_empty() {
            entry.hub.pump();
        }
    }

    /// Publisher-side truth for a live album: the links the standing
    /// query currently maintains on `publisher`.
    pub fn live_links(&self, publisher: NodeId, album: LiveAlbumId) -> Vec<String> {
        self.live
            .get(&publisher)
            .map(|l| l.engine.links(album).to_vec())
            .unwrap_or_default()
    }

    /// A live subscriber's materialized album (its idempotent
    /// diff-applied state), if the subscriber is alive.
    pub fn live_subscriber(
        &self,
        publisher: NodeId,
        sub: SubscriberId,
    ) -> Option<&SubscriberAlbum> {
        self.live.get(&publisher)?.hub.subscriber(sub)
    }

    /// The push hub serving `publisher`'s live albums, if any
    /// subscription created one.
    pub fn live_hub(&self, publisher: NodeId) -> Option<&PushHub> {
        self.live.get(&publisher).map(|l| &l.hub)
    }

    /// Mutable access to `publisher`'s push hub — chaos tests use this
    /// to kill/recover subscribers mid-stream.
    pub fn live_hub_mut(&mut self, publisher: NodeId) -> Option<&mut PushHub> {
        self.live.get_mut(&publisher).map(|l| &mut l.hub)
    }

    /// Replays every live-push dead-letter queue (the `push:` analogue
    /// of [`Federation::redeliver`]), returning the merged report.
    pub fn live_redeliver(&mut self) -> ReplayReport {
        let mut total = ReplayReport::default();
        for live in self.live.values_mut() {
            let report = live.hub.redeliver();
            total.replayed += report.replayed;
            total.requeued += report.requeued;
            total.exhausted += report.exhausted;
        }
        total
    }

    /// Aggregated live-push counters across every publisher hub, or
    /// `None` when no live subscription exists.
    pub fn live_push_ops(&self) -> Option<LivePushOps> {
        if self.live.is_empty() {
            return None;
        }
        let mut total = LivePushOps::default();
        for live in self.live.values() {
            let ops = live.hub.ops();
            total.subscribers += ops.subscribers;
            total.delivered += ops.delivered;
            total.parked += ops.parked;
            total.redelivered += ops.redelivered;
            total.lag += ops.lag;
            total.dlq_depth += ops.dlq_depth;
        }
        Some(total)
    }

    /// Publishes media on the author's node and fans out notifications
    /// (PubSubHubbub activities + SparqlPuSH row diffs).
    pub fn publish(
        &mut self,
        author: &Acct,
        title: &str,
        ts: i64,
    ) -> Result<(Iri, Vec<Notification>), PlatformError> {
        let (node_id, _) = self.webfinger(&author.to_string())?;
        let mark = self.nodes[node_id].ops_len();
        let media = self.nodes[node_id].publish_media(author, title, ts);
        let activity = Activity {
            actor: author.clone(),
            verb: Verb::Post,
            object: media.clone(),
            summary: title.to_string(),
            ts,
        };
        self.nodes[node_id].timeline.push(activity.clone());
        let (additions, removals) = self.nodes[node_id].ops_delta(mark);
        self.live_maintain(node_id, &additions, &removals, None);
        let notifications = self.fan_out(node_id, activity);
        Ok((media, notifications))
    }

    /// Publishes a geolocated picture — the §2.3 album shape: typed
    /// as a microblog post, labelled, attributed, dated, anchored to
    /// `point` and linked to its raw image. Every triple goes through
    /// the journaled content path, so replication ships the picture to
    /// peers and standing near-monument albums (local *or* registered
    /// against a replica) pick it up from the delta alone.
    pub fn publish_picture(
        &mut self,
        author: &Acct,
        title: &str,
        point: lodify_rdf::Point,
        ts: i64,
    ) -> Result<(Iri, Vec<Notification>), PlatformError> {
        let (node_id, _) = self.webfinger(&author.to_string())?;
        let mark = self.nodes[node_id].ops_len();
        let media = self.nodes[node_id].publish_media(author, title, ts);
        let subject = Term::Iri(media.clone());
        let raw = format!("{}.jpg", media.as_str().replace("/media/", "/raw/"));
        self.nodes[node_id].insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::geo_geometry(),
            Term::Literal(point.to_literal()),
        ));
        self.nodes[node_id].insert_content(Triple::new_unchecked(
            subject,
            ns::iri::image_data(),
            Term::literal(raw),
        ));
        let activity = Activity {
            actor: author.clone(),
            verb: Verb::Post,
            object: media.clone(),
            summary: title.to_string(),
            ts,
        };
        self.nodes[node_id].timeline.push(activity.clone());
        let (additions, removals) = self.nodes[node_id].ops_delta(mark);
        self.live_maintain(node_id, &additions, &removals, None);
        let notifications = self.fan_out(node_id, activity);
        Ok((media, notifications))
    }

    /// Imports node-local reference data — LOD anchors such as DBpedia
    /// monuments with their labels and geometries. Reference data is
    /// not user content: it bypasses the content journal, so it never
    /// replicates to peers and never perturbs standing-query deltas —
    /// the same way the enrichment pipeline lands gazetteer context.
    /// Returns how many triples were newly inserted.
    pub fn import_reference(
        &mut self,
        node: NodeId,
        triples: &[Triple],
    ) -> Result<usize, PlatformError> {
        let store = self.node_mut(node)?.store_mut();
        let graph = store.default_graph();
        let before = store.len();
        for triple in triples {
            store.insert(triple, graph);
        }
        Ok(store.len() - before)
    }

    /// Retracts previously published media: every triple whose subject
    /// is `media` is removed from the owning node's store, and the
    /// removals are journaled so replication ships them to peers (a
    /// "delete propagates" emission). Returns the number of triples
    /// removed.
    pub fn retract(&mut self, author: &Acct, media: &Iri) -> Result<usize, PlatformError> {
        let (node_id, _) = self.webfinger(&author.to_string())?;
        let node = &mut self.nodes[node_id];
        if !media
            .as_str()
            .starts_with(&format!("http://{}/", node.host))
        {
            return Err(PlatformError::Invalid(format!(
                "{} does not own {media}",
                node.host
            )));
        }
        let subject = Term::Iri(media.clone());
        let triples = node.store.match_terms(Some(&subject), None, None);
        if triples.is_empty() {
            return Err(PlatformError::NotFound(format!("media {media}")));
        }
        let mark = node.ops_len();
        let mut removed = 0;
        for triple in triples {
            if node.remove_content(triple) {
                removed += 1;
            }
        }
        let (additions, removals) = self.nodes[node_id].ops_delta(mark);
        self.live_maintain(node_id, &additions, &removals, None);
        Ok(removed)
    }

    /// Salmon: a reply posted anywhere swims upstream to the node that
    /// owns the target content.
    pub fn reply(
        &mut self,
        author: &Acct,
        target: &Iri,
        text: &str,
        ts: i64,
    ) -> Result<Vec<Notification>, PlatformError> {
        let owner = self
            .nodes
            .iter()
            .position(|n| target.as_str().starts_with(&format!("http://{}/", n.host)))
            .ok_or_else(|| PlatformError::NotFound(format!("no node owns {target}")))?;
        let mark = self.nodes[owner].ops_len();
        let comment = self.nodes[owner].add_comment(target, author, text, ts);
        let activity = Activity {
            actor: author.clone(),
            verb: Verb::Comment,
            object: comment,
            summary: text.to_string(),
            ts,
        };
        self.nodes[owner].timeline.push(activity.clone());
        let (additions, removals) = self.nodes[owner].ops_delta(mark);
        self.live_maintain(owner, &additions, &removals, None);
        Ok(self.fan_out(owner, activity))
    }

    fn fan_out(&mut self, publisher: NodeId, activity: Activity) -> Vec<Notification> {
        let mut outbox = Vec::new();
        // PubSubHubbub: everyone subscribed to the actor's topic.
        let receivers: Vec<NodeId> = self
            .subscriptions
            .iter()
            .filter(|(topic, _)| *topic == activity.actor)
            .map(|(_, node)| *node)
            .collect();
        for to in receivers {
            outbox.push(Notification::Activity {
                to,
                activity: activity.clone(),
            });
        }
        // SparqlPuSH: re-run subscriptions against the publisher store.
        for sub in &mut self.sparql_subs {
            if sub.publisher != publisher {
                continue;
            }
            let Ok(results) = lodify_sparql::execute(&self.nodes[publisher].store, &sub.query)
            else {
                continue;
            };
            let mut new_rows = Vec::new();
            for row in &results.rows {
                let key = format!("{row:?}");
                if sub.seen.insert(key) {
                    let rendered: Vec<String> = row
                        .iter()
                        .map(|c| c.as_ref().map(|t| t.to_string()).unwrap_or_default())
                        .collect();
                    new_rows.push(rendered.join(" | "));
                }
            }
            if !new_rows.is_empty() {
                outbox.push(Notification::SparqlRows {
                    to: sub.subscriber,
                    rows: new_rows,
                });
            }
        }

        // Delivery. Without a fault plan every notification lands
        // directly (the original behaviour); with one, each delivery is
        // judged + retried, and undeliverable notifications are parked
        // instead of lost.
        let mut delivered = Vec::new();
        for notification in outbox {
            match self.try_deliver(&notification) {
                Ok(()) => delivered.push(notification),
                Err(error) => {
                    let res = self.resilience.as_mut().expect("fallible only with plan");
                    res.telemetry.incr("federation.parked");
                    let now = res.plan.clock().now_ms();
                    res.dlq.push(notification, error, now);
                    res.telemetry
                        .set_gauge("federation.dlq.depth", res.dlq.depth() as u64);
                }
            }
        }
        delivered
    }

    /// Attempts one notification delivery (with retries when a fault
    /// plan is installed), timed into the `federation.deliver`
    /// histogram. Success applies the node-side effect.
    fn try_deliver(&mut self, notification: &Notification) -> Result<(), String> {
        let timed = match &self.observability {
            Some(metrics) if metrics.is_enabled() => {
                Some((metrics.clone(), self.clock.now_micros()))
            }
            _ => None,
        };
        let result = self.try_deliver_inner(notification);
        if let Some((metrics, start)) = timed {
            match &result {
                Ok(()) => {
                    let elapsed = self.clock.now_micros().saturating_sub(start);
                    metrics.observe("federation.deliver", elapsed);
                    metrics.incr("federation.deliveries");
                }
                Err(_) => metrics.incr("federation.delivery.failures"),
            }
        }
        result
    }

    fn try_deliver_inner(&mut self, notification: &Notification) -> Result<(), String> {
        let to = match notification {
            Notification::Activity { to, .. } => *to,
            Notification::SparqlRows { to, .. } => *to,
        };
        if let Some(res) = &mut self.resilience {
            let target = format!("node:{}", self.nodes[to].host);
            let plan = res.plan.clone();
            let clock = plan.clock().clone();
            res.retry
                .run(&clock, &mut res.rng, |attempt| {
                    if attempt > 1 {
                        res.telemetry.incr("federation.retries");
                    }
                    plan.check(&target)
                })
                .map_err(|e| e.to_string())?;
            res.telemetry.incr("federation.delivered");
        }
        apply_delivery(&mut self.nodes, notification);
        Ok(())
    }

    /// Replays the delivery dead-letter queue: notifications whose node
    /// is reachable again land now (with their node-side effects);
    /// still-unreachable ones stay parked until
    /// [`Federation::DELIVERY_MAX_ATTEMPTS`] exhausts them. Returns the
    /// notifications delivered by this pass plus the replay report.
    pub fn redeliver(&mut self) -> (Vec<Notification>, ReplayReport) {
        let Some(mut res) = self.resilience.take() else {
            return (Vec::new(), ReplayReport::default());
        };
        let mut landed = Vec::new();
        let nodes = &mut self.nodes;
        let plan = res.plan.clone();
        let report = res.dlq.replay(|notification| {
            let to = match notification {
                Notification::Activity { to, .. } => *to,
                Notification::SparqlRows { to, .. } => *to,
            };
            let target = format!("node:{}", nodes[to].host);
            plan.check(&target).map_err(|e| e.to_string())?;
            apply_delivery(nodes, notification);
            landed.push(notification.clone());
            Ok(())
        });
        res.telemetry
            .add("federation.redelivered", report.replayed as u64);
        res.telemetry
            .set_gauge("federation.dlq.depth", res.dlq.depth() as u64);
        self.resilience = Some(res);
        (landed, report)
    }
}

/// Applies a notification's node-side effect (the subscriber's merged
/// timeline; SparqlPuSH rows carry their payload in the notification).
fn apply_delivery(nodes: &mut [Node], notification: &Notification) {
    if let Notification::Activity { to, activity } = notification {
        nodes[*to].timeline.push(activity.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_federation() -> (Federation, Acct, Acct) {
        let mut fed = Federation::new();
        let home1 = fed.add_node("node1.example").unwrap();
        let home2 = fed.add_node("node2.example").unwrap();
        let oscar = fed
            .register_user(home1, "oscar", "Oscar Rodriguez")
            .unwrap();
        let walter = fed.register_user(home2, "walter", "Walter Goix").unwrap();
        (fed, oscar, walter)
    }

    #[test]
    fn acct_parsing_and_display() {
        let acct = Acct::parse("acct:oscar@node1.example").unwrap();
        assert_eq!(acct.user, "oscar");
        assert_eq!(acct.to_string(), "acct:oscar@node1.example");
        assert!(Acct::parse("oscar@node1").is_none());
        assert!(Acct::parse("acct:@host").is_none());
        assert!(Acct::parse("acct:user@").is_none());
    }

    #[test]
    fn acct_parse_rejects_whitespace_and_embedded_separators() {
        for bad in [
            "acct: oscar@node1.example",
            "acct:oscar @node1.example",
            "acct:oscar@node1 .example",
            "acct:oscar@node1.example ",
            "acct:os car@node1.example",
            "acct:oscar@node1.example\t",
            "acct:oscar@node1\n.example",
            "acct:oscar@node1@node2.example",
            "acct:os@car@node1.example",
            "acct:oscar:8080@node1.example",
            "acct:oscar@node1.example:8080",
            "acct:oscar@node1.example/path",
            "acct:os/car@node1.example",
        ] {
            assert!(Acct::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn acct_parse_normalizes_host_case() {
        let mixed = Acct::parse("acct:Oscar@Node1.EXAMPLE").unwrap();
        assert_eq!(mixed.user, "Oscar", "user part stays case-sensitive");
        assert_eq!(mixed.host, "node1.example");
        assert_eq!(mixed.to_string(), "acct:Oscar@node1.example");
        // The same account written with different host casing is one
        // identity (hash + equality).
        let lower = Acct::parse("acct:Oscar@node1.example").unwrap();
        assert_eq!(mixed, lower);
    }

    #[test]
    fn webfinger_resolves_mixed_case_hosts() {
        let (fed, _, walter) = two_node_federation();
        let (node, profile) = fed.webfinger("acct:walter@Node2.EXAMPLE").unwrap();
        assert_eq!(node, 1);
        assert_eq!(profile, walter.profile_iri());
    }

    #[test]
    fn webfinger_resolves_across_nodes() {
        let (fed, _, walter) = two_node_federation();
        let (node, profile) = fed.webfinger("acct:walter@node2.example").unwrap();
        assert_eq!(node, 1);
        assert_eq!(profile, walter.profile_iri());
        assert!(fed.webfinger("acct:ghost@node2.example").is_err());
        assert!(fed.webfinger("acct:oscar@nowhere.example").is_err());
        assert!(fed.webfinger("not-an-acct").is_err());
    }

    #[test]
    fn subscribe_imports_foaf_profile_and_knows_edge() {
        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();
        let node1 = fed.node(0).unwrap();
        // Walter's imported profile is queryable on oscar's node.
        let results = lodify_sparql::execute(
            node1.store(),
            "SELECT ?p WHERE { ?p foaf:name \"walter\" . }",
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        let knows = lodify_sparql::execute(
            node1.store(),
            &format!(
                "SELECT ?x WHERE {{ <{}> foaf:knows ?x . }}",
                oscar.profile_iri().as_str()
            ),
        )
        .unwrap();
        assert_eq!(
            knows.column("x")[0].lexical(),
            walter.profile_iri().as_str()
        );
    }

    #[test]
    fn publish_fans_out_to_subscribers_timelines() {
        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();
        let (media, notifications) = fed.publish(&walter, "Sunset from home", 1000).unwrap();
        assert!(media.as_str().starts_with("http://node2.example/media/"));
        assert_eq!(notifications.len(), 1);
        assert!(matches!(
            &notifications[0],
            Notification::Activity { to: 0, .. }
        ));
        // Both timelines carry the activity.
        assert_eq!(fed.node(0).unwrap().timeline().entries().len(), 1);
        assert_eq!(fed.node(1).unwrap().timeline().entries().len(), 1);
    }

    #[test]
    fn unsubscribed_nodes_get_nothing() {
        let (mut fed, _, walter) = two_node_federation();
        let (_, notifications) = fed.publish(&walter, "quiet post", 1).unwrap();
        assert!(notifications.is_empty());
        assert!(fed.node(0).unwrap().timeline().entries().is_empty());
    }

    #[test]
    fn sparqlpush_delivers_only_new_rows() {
        let (mut fed, _, walter) = two_node_federation();
        fed.publish(&walter, "before subscription", 1).unwrap();
        fed.sparql_subscribe(
            0,
            1,
            "SELECT ?m ?t WHERE { ?m a sioct:MicroblogPost . ?m rdfs:label ?t . }",
        )
        .unwrap();
        // Existing rows are seeded, not delivered.
        let (_, n1) = fed.publish(&walter, "first push", 2).unwrap();
        let rows: Vec<&Notification> = n1
            .iter()
            .filter(|n| matches!(n, Notification::SparqlRows { .. }))
            .collect();
        assert_eq!(rows.len(), 1);
        if let Notification::SparqlRows { to, rows } = rows[0] {
            assert_eq!(*to, 0);
            assert_eq!(rows.len(), 1);
            assert!(rows[0].contains("first push"));
        }
        // Re-publishing pushes only the newest row again.
        let (_, n2) = fed.publish(&walter, "second push", 3).unwrap();
        let pushed: Vec<&Notification> = n2
            .iter()
            .filter(|n| matches!(n, Notification::SparqlRows { .. }))
            .collect();
        if let Notification::SparqlRows { rows, .. } = pushed[0] {
            assert_eq!(rows.len(), 1);
            assert!(rows[0].contains("second push"));
        }
    }

    #[test]
    fn salmon_reply_lands_on_owning_node() {
        let (mut fed, oscar, walter) = two_node_federation();
        let (media, _) = fed.publish(&walter, "commentable", 10).unwrap();
        // Oscar (node1) replies to Walter's media (node2): the comment
        // must live on node2.
        fed.reply(&oscar, &media, "bella!", 11).unwrap();
        let results = lodify_sparql::execute(
            fed.node(1).unwrap().store(),
            &format!(
                "SELECT ?c WHERE {{ ?c sioc:reply_of <{}> . }}",
                media.as_str()
            ),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        // Timeline ordering is by timestamp.
        let entries = fed.node(1).unwrap().timeline().entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].ts <= entries[1].ts);
        assert_eq!(entries[1].verb, Verb::Comment);
    }

    #[test]
    fn photo_frame_slideshow_tracks_new_media() {
        // §6.3: "a UPnP-compatible photoframe displaying a real-time
        // slideshow of the media content that a family member is
        // taking during his holidays".
        let (mut fed, _, walter) = two_node_federation();
        let mut frame = PhotoFrame::new();

        fed.publish(&walter, "day one", 1).unwrap();
        fed.publish(&walter, "day two", 2).unwrap();
        let shown = frame.refresh(fed.node(1).unwrap()).unwrap();
        assert_eq!(shown.len(), 2);
        assert_eq!(shown[0].title, "day two", "newest first");

        // Nothing new → nothing shown again.
        assert!(frame.refresh(fed.node(1).unwrap()).unwrap().is_empty());

        fed.publish(&walter, "day three", 3).unwrap();
        let shown = frame.refresh(fed.node(1).unwrap()).unwrap();
        assert_eq!(shown.len(), 1);
        assert_eq!(frame.slideshow().len(), 3);
    }

    #[test]
    fn upnp_playback_and_browse() {
        let (mut fed, _, walter) = two_node_federation();
        let (media, _) = fed.publish(&walter, "playable", 10).unwrap();
        let node = fed.node(1).unwrap();
        let entries = node.browse_media();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].iri, media);
        let stream = node.request_playback(&media).unwrap();
        assert_eq!(stream.mime, "image/jpeg");
        assert_eq!(stream.url, media.as_str());
        let ghost = Iri::new("http://node2.example/media/999").unwrap();
        assert!(node.request_playback(&ghost).is_err());
    }

    #[test]
    fn oembed_descriptor_carries_title_provider_author() {
        let (mut fed, _, walter) = two_node_federation();
        let (media, _) = fed.publish(&walter, "embeddable sunset", 20).unwrap();
        let embed = fed.node(1).unwrap().oembed(&media).unwrap();
        assert_eq!(embed.kind, "photo");
        assert_eq!(embed.title, "embeddable sunset");
        assert_eq!(embed.provider, "node2.example");
        assert_eq!(embed.author.as_deref(), Some(walter.profile_iri().as_str()));
        let ghost = Iri::new("http://node2.example/media/999").unwrap();
        assert!(fed.node(1).unwrap().oembed(&ghost).is_err());
    }

    #[test]
    fn duplicate_hosts_and_users_rejected() {
        let mut fed = Federation::new();
        fed.add_node("same.example").unwrap();
        assert!(fed.add_node("same.example").is_err());
        fed.register_user(0, "oscar", "O").unwrap();
        assert!(fed.register_user(0, "oscar", "O2").is_err());
    }

    #[test]
    fn node_outage_parks_notifications_for_redelivery() {
        use lodify_resilience::VirtualClock;

        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();

        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("node:node1.example", 0, 5_000)
            .build(clock.clone());
        fed.with_fault_plan(plan, RetryPolicy::default());

        // Publishing during node1's outage: the activity stays on the
        // publisher, the subscriber notification parks in the DLQ.
        let (_, notifications) = fed.publish(&walter, "missed you", 100).unwrap();
        assert!(notifications.is_empty(), "nothing delivered while down");
        assert_eq!(fed.undelivered(), 1);
        assert!(fed.node(0).unwrap().timeline().entries().is_empty());
        assert_eq!(fed.node(1).unwrap().timeline().entries().len(), 1);
        let telemetry = fed.delivery_telemetry().unwrap();
        assert_eq!(telemetry.counter("federation.parked"), 1);
        assert!(
            telemetry.counter("federation.retries") >= 1,
            "retried first"
        );

        // Redelivery while still down re-parks, nothing lands.
        let (landed, report) = fed.redeliver();
        assert!(landed.is_empty());
        assert_eq!(report.requeued, 1);
        assert_eq!(fed.undelivered(), 1);

        // Outage ends → redelivery applies the node-side effect.
        clock.set(6_000);
        let (landed, report) = fed.redeliver();
        assert_eq!(report.replayed, 1);
        assert_eq!(landed.len(), 1);
        assert!(matches!(&landed[0], Notification::Activity { to: 0, .. }));
        assert_eq!(fed.undelivered(), 0);
        let timeline = fed.node(0).unwrap().timeline().entries();
        assert_eq!(timeline.len(), 1, "subscriber caught up");
        assert_eq!(timeline[0].summary, "missed you");
        let telemetry = fed.delivery_telemetry().unwrap();
        assert_eq!(telemetry.counter("federation.redelivered"), 1);
        assert_eq!(telemetry.gauge("federation.dlq.depth"), Some(0));
    }

    #[test]
    fn healthy_nodes_deliver_unchanged_under_a_fault_plan() {
        use lodify_resilience::VirtualClock;

        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();
        let clock = VirtualClock::new();
        // A plan with no faults for either node.
        let plan = FaultPlan::builder().build(clock);
        fed.with_fault_plan(plan, RetryPolicy::no_retry());

        let (_, notifications) = fed.publish(&walter, "all clear", 1).unwrap();
        assert_eq!(notifications.len(), 1);
        assert_eq!(fed.node(0).unwrap().timeline().entries().len(), 1);
        assert_eq!(fed.undelivered(), 0);
        let telemetry = fed.delivery_telemetry().unwrap();
        assert_eq!(telemetry.counter("federation.delivered"), 1);
        assert_eq!(telemetry.counter("federation.parked"), 0);
    }

    #[test]
    fn sparql_rows_survive_parking_and_redeliver_with_payload() {
        use lodify_resilience::VirtualClock;

        let (mut fed, _, walter) = two_node_federation();
        fed.sparql_subscribe(
            0,
            1,
            "SELECT ?m ?t WHERE { ?m a sioct:MicroblogPost . ?m rdfs:label ?t . }",
        )
        .unwrap();

        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("node:node1.example", 0, 1_000)
            .build(clock.clone());
        fed.with_fault_plan(plan, RetryPolicy::no_retry());

        let (_, notifications) = fed.publish(&walter, "row diff", 5).unwrap();
        assert!(notifications.is_empty());
        assert_eq!(fed.undelivered(), 1);

        clock.set(2_000);
        let (landed, _) = fed.redeliver();
        assert_eq!(landed.len(), 1);
        // The parked notification kept its row payload — the row is not
        // re-announced on the next publish (seen-set already updated).
        let Notification::SparqlRows { to, rows } = &landed[0] else {
            panic!("expected SparqlRows");
        };
        assert_eq!(*to, 0);
        assert!(rows[0].contains("row diff"));
        let (_, next) = fed.publish(&walter, "fresh row", 6).unwrap();
        let diffs: Vec<&Notification> = next
            .iter()
            .filter(|n| matches!(n, Notification::SparqlRows { .. }))
            .collect();
        assert_eq!(diffs.len(), 1);
        if let Notification::SparqlRows { rows, .. } = diffs[0] {
            assert_eq!(rows.len(), 1, "only the new row");
            assert!(rows[0].contains("fresh row"));
        }
    }

    #[test]
    fn redeliver_exhausts_at_the_attempt_cap() {
        use lodify_resilience::VirtualClock;

        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();
        // node1 never comes back.
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("node:node1.example", 0, u64::MAX)
            .build(clock);
        fed.with_fault_plan(plan, RetryPolicy::no_retry());

        fed.publish(&walter, "doomed", 1).unwrap();
        assert_eq!(fed.undelivered(), 1);

        // The initial park counts as attempt 1; each failed replay adds
        // one more until DELIVERY_MAX_ATTEMPTS exhausts the letter.
        for round in 1..Federation::DELIVERY_MAX_ATTEMPTS {
            let (landed, report) = fed.redeliver();
            assert!(landed.is_empty());
            if round < Federation::DELIVERY_MAX_ATTEMPTS - 1 {
                assert_eq!((report.requeued, report.exhausted), (1, 0), "round {round}");
            } else {
                assert_eq!((report.requeued, report.exhausted), (0, 1), "round {round}");
            }
        }
        assert_eq!(fed.undelivered(), 0, "no longer parked");
        assert_eq!(fed.exhausted_deliveries(), 1, "surfaced, not dropped");
        // Exhausted letters are never replayed again.
        let (landed, report) = fed.redeliver();
        assert!(landed.is_empty());
        assert_eq!(report, ReplayReport::default());
        assert_eq!(fed.exhausted_deliveries(), 1);
    }

    #[test]
    fn redeliver_reports_mixed_outcomes_per_node() {
        use lodify_resilience::VirtualClock;

        let mut fed = Federation::new();
        let home1 = fed.add_node("node1.example").unwrap();
        let home2 = fed.add_node("node2.example").unwrap();
        let home3 = fed.add_node("node3.example").unwrap();
        let a = fed.register_user(home1, "a", "A").unwrap();
        let b = fed.register_user(home2, "b", "B").unwrap();
        let w = fed.register_user(home3, "w", "W").unwrap();
        fed.subscribe(home1, &a, &w).unwrap();
        fed.subscribe(home2, &b, &w).unwrap();

        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("node:node1.example", 0, 5_000)
            .outage("node:node2.example", 0, u64::MAX)
            .build(clock.clone());
        fed.with_fault_plan(plan, RetryPolicy::no_retry());

        fed.publish(&w, "two receivers down", 1).unwrap();
        assert_eq!(fed.undelivered(), 2);

        // node1 recovers, node2 stays dark: one replayed, one requeued.
        clock.set(6_000);
        let (landed, report) = fed.redeliver();
        assert_eq!(landed.len(), 1);
        assert!(matches!(&landed[0], Notification::Activity { to: 0, .. }));
        assert_eq!(report.replayed, 1);
        assert_eq!(report.requeued, 1);
        assert_eq!(report.exhausted, 0);
        assert_eq!(fed.undelivered(), 1);
        let telemetry = fed.delivery_telemetry().unwrap();
        assert_eq!(telemetry.counter("federation.redelivered"), 1);
        assert_eq!(telemetry.gauge("federation.dlq.depth"), Some(1));
    }

    #[test]
    fn delivery_histogram_is_deterministic_under_virtual_clock() {
        use lodify_resilience::VirtualClock;

        let (mut fed, oscar, walter) = two_node_federation();
        fed.subscribe(0, &oscar, &walter).unwrap();
        let clock = VirtualClock::new();
        // 40ms of scripted latency per delivery attempt; with the clock
        // routed through the plan, the histogram records exactly that.
        let plan = FaultPlan::builder()
            .latency("node:node1.example", 40)
            .build(clock);
        fed.with_fault_plan(plan, RetryPolicy::no_retry());
        let metrics = Metrics::new();
        fed.set_observability(metrics.clone());

        fed.publish(&walter, "timed", 1).unwrap();
        let histogram = metrics.histogram("federation.deliver").unwrap();
        assert_eq!(histogram.count(), 1);
        assert_eq!(histogram.sum(), 40_000, "40ms in µs, exactly");
        assert_eq!(metrics.counter("federation.deliveries"), 1);
    }

    #[test]
    fn retract_removes_media_and_rejects_foreign_targets() {
        let (mut fed, oscar, walter) = two_node_federation();
        let (media, _) = fed.publish(&walter, "regrets", 5).unwrap();
        // Oscar cannot retract Walter's media.
        assert!(fed.retract(&oscar, &media).is_err());
        let removed = fed.retract(&walter, &media).unwrap();
        assert_eq!(removed, 4, "type + label + maker + created");
        let subject = Term::Iri(media.clone());
        assert!(fed
            .node(1)
            .unwrap()
            .store()
            .match_terms(Some(&subject), None, None)
            .is_empty());
        // Retracting again: nothing left to remove.
        assert!(fed.retract(&walter, &media).is_err());
    }

    fn mole() -> lodify_rdf::Point {
        let gaz = lodify_context::Gazetteer::global();
        gaz.poi("Mole_Antonelliana").unwrap().point(gaz)
    }

    /// Seeds the Mole monument (label + geometry) on `node` as
    /// node-local reference data — the anchor every Q1-shaped album
    /// spec joins against.
    fn seed_monument(fed: &mut Federation, node: NodeId) {
        let store = fed.nodes[node].store_mut();
        let g = store.default_graph();
        let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole().to_literal()),
            ),
            g,
        );
    }

    /// Inserts picture-shaped content (the §2.3 album shape: typed,
    /// geolocated near the Mole, linked, attributed) on `node` through
    /// the journaled content path, then feeds the delta to the node's
    /// live engine exactly as `publish`/`retract` do.
    fn share_picture(fed: &mut Federation, node: NodeId, n: u32, maker: &Acct) -> Iri {
        let host = fed.nodes[node].host.clone();
        let iri = Iri::new_unchecked(format!("http://{host}/media/{n}"));
        let subject = Term::Iri(iri.clone());
        let mark = fed.nodes[node].ops_len();
        fed.nodes[node].insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::rdf_type(),
            Term::Iri(ns::iri::microblog_post()),
        ));
        fed.nodes[node].insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::geo_geometry(),
            Term::Literal(mole().offset_km(0.05, 0.0).to_literal()),
        ));
        fed.nodes[node].insert_content(Triple::new_unchecked(
            subject.clone(),
            ns::iri::image_data(),
            Term::literal(format!("http://{host}/raw/{n}.jpg")),
        ));
        fed.nodes[node].insert_content(Triple::new_unchecked(
            subject,
            ns::iri::foaf_maker(),
            Term::Iri(maker.profile_iri()),
        ));
        let (additions, removals) = fed.nodes[node].ops_delta(mark);
        fed.live_maintain(node, &additions, &removals, None);
        iri
    }

    fn live_spec() -> AlbumSpec {
        AlbumSpec::near_monument("Mole Antonelliana", "it", 1.0).friends_of("walter")
    }

    #[test]
    fn live_subscription_tracks_follow_and_retract_diffs() {
        let (mut fed, oscar, walter) = two_node_federation();
        seed_monument(&mut fed, 0);
        let spec = live_spec();
        let (album, sub) = fed.live_subscribe(1, 0, &spec).unwrap();
        assert!(fed.live_subscriber(0, sub).unwrap().links().is_empty());

        // Content by oscar exists, but oscar follows nobody yet.
        let media = share_picture(&mut fed, 0, 90, &oscar);
        assert!(fed.live_links(0, album).is_empty());

        // Following walter imports his profile and records the knows
        // edge; that delta pulls oscar's picture into the standing
        // album and the diff is pushed to node2.
        fed.subscribe(0, &oscar, &walter).unwrap();
        let expected = spec.execute(fed.node(0).unwrap().store()).unwrap();
        assert_eq!(fed.live_links(0, album), expected);
        assert_eq!(fed.live_subscriber(0, sub).unwrap().links(), expected);

        // Retraction over the public path journals removals; the
        // member is retracted exactly and the subscriber converges.
        fed.retract(&oscar, &media).unwrap();
        assert!(fed.live_links(0, album).is_empty());
        assert!(fed.live_subscriber(0, sub).unwrap().links().is_empty());
        assert!(fed.live_hub(0).unwrap().converged());
    }

    #[test]
    fn live_push_outage_parks_diffs_and_redelivery_converges() {
        use lodify_resilience::VirtualClock;

        let (mut fed, oscar, walter) = two_node_federation();
        seed_monument(&mut fed, 0);
        let spec = live_spec();
        // Subscribe while the transport is healthy: the snapshot
        // frame (empty album) is delivered immediately.
        let (album, sub) = fed.live_subscribe(1, 0, &spec).unwrap();
        assert!(fed.live_hub(0).unwrap().converged());

        // Installing a fault plan afterwards reaches the already
        // created hub; live push is judged under `push:<host>`,
        // disjoint from the `node:<host>` namespace.
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("push:node2.example", 0, 5_000)
            .build(clock.clone());
        fed.with_fault_plan(plan, RetryPolicy::no_retry());

        share_picture(&mut fed, 0, 91, &oscar);
        fed.subscribe(0, &oscar, &walter).unwrap();
        assert!(
            !fed.live_links(0, album).is_empty(),
            "publisher truth intact"
        );
        assert!(fed.live_subscriber(0, sub).unwrap().links().is_empty());
        assert_eq!(fed.live_hub(0).unwrap().undelivered(), 1);
        assert!(!fed.live_hub(0).unwrap().converged());

        clock.advance(10_000);
        let report = fed.live_redeliver();
        assert_eq!(report.replayed, 1);
        assert_eq!(
            fed.live_subscriber(0, sub).unwrap().links(),
            fed.live_links(0, album)
        );
        assert!(fed.live_hub(0).unwrap().converged());
        let ops = fed.live_push_ops().unwrap();
        assert_eq!(ops.dlq_depth, 0);
        assert_eq!(ops.redelivered, 1);
    }
}
