//! Annotation- and retrieval-quality metrics, plus the operational
//! snapshot of the resilience machinery.
//!
//! The paper reports no numbers ("Empirical tests proof that such
//! technique must be further improved as it still provides false
//! positives") — these metrics quantify exactly that claim against the
//! workload's ground truth, for experiments E3, E4 and E8.

use std::collections::HashSet;
use std::fmt;

use lodify_context::Gazetteer;
use lodify_durability::DurabilityStats;
use lodify_lod::cache::SemanticCacheStats;
use lodify_lod::datasets::{dbp, gnr};
use lodify_lod::reannotate::ReAnnotator;
use lodify_lod::SemanticBroker;
use lodify_rdf::Iri;
use lodify_relational::workload::{PictureTruth, TruthSubject};
use lodify_resilience::BreakerState;
use lodify_sparql::PlanCacheStats;

use crate::admission::AdmissionOps;
use crate::albums::AlbumCacheStats;
use crate::federation::Federation;

/// Basic precision/recall counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl PrCounts {
    /// Precision; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 1.0 when nothing was expected.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another count set in.
    pub fn merge(&mut self, other: PrCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// The expected (subject) resource IRIs for a picture — what the
/// annotation *should* find.
pub fn expected_resources(truth: &PictureTruth) -> Vec<Iri> {
    let gaz = Gazetteer::global();
    match &truth.subject {
        TruthSubject::Poi(key) => vec![dbp(key)],
        TruthSubject::Person(name) => vec![dbp(&name.replace(' ', "_"))],
        TruthSubject::City(key) => {
            let mut out = vec![dbp(key)];
            if let Some(city) = gaz.city(key) {
                out.push(gnr(city.geonames_id()));
            }
            out
        }
        TruthSubject::Generic => Vec::new(),
    }
}

/// Resources that are *acceptable* annotations without being the
/// subject: the capture city in both DBpedia and Geonames form (the
/// user's city tag legitimately annotates to it), and any Evri wrapper
/// entity (opaque external identifiers, scored as neutral).
pub fn acceptable_resources(truth: &PictureTruth) -> HashSet<String> {
    let gaz = Gazetteer::global();
    let mut ok: HashSet<String> = expected_resources(truth)
        .into_iter()
        .map(|i| i.into_string())
        .collect();
    if let Some(city) = gaz.city(&truth.city_key) {
        ok.insert(dbp(city.key).into_string());
        ok.insert(gnr(city.geonames_id()).into_string());
    }
    ok
}

/// Scores one picture's predicted annotation resources against truth.
///
/// * tp: an expected resource was predicted (counted once);
/// * fn: the picture had an expected subject but none was predicted;
/// * fp: a predicted resource outside the acceptable set (Evri
///   wrappers are ignored as neutral).
pub fn score_picture(truth: &PictureTruth, predicted: &[Iri]) -> PrCounts {
    let expected: HashSet<String> = expected_resources(truth)
        .into_iter()
        .map(|i| i.into_string())
        .collect();
    let acceptable = acceptable_resources(truth);

    let mut counts = PrCounts::default();
    let mut subject_found = false;
    for iri in predicted {
        let s = iri.as_str();
        if s.starts_with("http://www.evri.com/") {
            continue; // neutral
        }
        if expected.contains(s) {
            subject_found = true;
        } else if !acceptable.contains(s) {
            counts.fp += 1;
        }
    }
    if !expected.is_empty() {
        if subject_found {
            counts.tp += 1;
        } else {
            counts.fn_ += 1;
        }
    }
    counts
}

/// Scores a full run: `predictions(pid)` returns the predicted
/// resources for a picture.
pub fn score_run<'a>(
    truths: impl IntoIterator<Item = &'a PictureTruth>,
    mut predictions: impl FnMut(i64) -> Vec<Iri>,
) -> PrCounts {
    let mut total = PrCounts::default();
    for truth in truths {
        total.merge(score_picture(truth, &predictions(truth.pid)));
    }
    total
}

/// One resolver's operational state inside an [`OpsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverOps {
    /// Resolver name (`dbpedia`, `geonames`, …).
    pub name: &'static str,
    /// Breaker state, if the broker runs with resilience.
    pub breaker: Option<BreakerState>,
    /// Calls actually issued (attempts, including retries).
    pub calls: u64,
    /// Retries beyond each first attempt.
    pub retries: u64,
    /// Failed attempts observed (each feeds the breaker).
    pub failures: u64,
    /// Calls skipped because the breaker was open.
    pub skipped: u64,
}

/// Replication-mesh counters inside an [`OpsSnapshot`]: how far behind
/// subscribed replicas are and what the emission dead-letter queue
/// holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationOps {
    /// Maximum link lag (origin head seq minus receiver cursor).
    pub lag: u64,
    /// Shipments parked awaiting redelivery.
    pub dlq_depth: usize,
    /// Shipments parked over the replicator's lifetime.
    pub parked: u64,
    /// Shipments delivered by redelivery passes.
    pub redelivered: u64,
    /// Emissions committed by local nodes.
    pub emissions: u64,
    /// Emissions applied at replicas.
    pub applied: u64,
}

/// Live standing-query maintenance counters inside an
/// [`OpsSnapshot`]: how much delta-join work the engine did instead of
/// album recomputes, plus the push leg's delivery state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveOps {
    /// Registered standing album queries.
    pub albums: usize,
    /// Delta triples routed through the engine.
    pub deltas: u64,
    /// Albums patched via pair re-evaluation.
    pub patched_albums: u64,
    /// Full album refreshes (anchor/friend-set changes, recovery).
    pub refreshes: u64,
    /// Non-empty album diffs emitted.
    pub diffs: u64,
    /// SparqlPuSH delivery counters.
    pub push: LivePushOps,
}

/// Push-delivery counters inside [`LiveOps`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LivePushOps {
    /// Active subscriptions.
    pub subscribers: usize,
    /// Frames applied at subscribers.
    pub delivered: u64,
    /// Deliveries parked in the dead-letter queue.
    pub parked: u64,
    /// Frames delivered by redelivery passes.
    pub redelivered: u64,
    /// Maximum outbox backlog over subscribers.
    pub lag: u64,
    /// Deliveries currently parked.
    pub dlq_depth: usize,
}

/// A point-in-time operational snapshot of the resilience machinery —
/// breaker states, retry counts and dead-letter depths across the
/// annotation and federation pipelines. This is the ops-facing
/// counterpart to the quality metrics above.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpsSnapshot {
    /// Per-resolver breaker + retry counters from the broker.
    pub resolvers: Vec<ResolverOps>,
    /// Degraded items parked for re-annotation.
    pub reannotate_depth: usize,
    /// Re-annotation items that hit the attempt cap.
    pub reannotate_exhausted: usize,
    /// Items parked over the queue's lifetime.
    pub reannotate_parked: u64,
    /// Items successfully re-annotated by replays.
    pub reannotate_replayed: u64,
    /// Federation notifications awaiting redelivery.
    pub federation_dlq_depth: usize,
    /// Notifications parked over the federation's lifetime.
    pub federation_parked: u64,
    /// Notifications delivered by redelivery passes.
    pub federation_redelivered: u64,
    /// Delivery retries beyond first attempts.
    pub federation_retries: u64,
    /// Emission-replication lag and dead-letter counters, when a
    /// replication mesh (or platform emission outbox) is running.
    pub replication: Option<ReplicationOps>,
    /// Persistence engine counters (WAL depth, snapshot age, replay
    /// stats), when the store is journal-backed.
    pub durability: Option<DurabilityStats>,
    /// Materialized-album cache counters (hits, misses, epoch-driven
    /// invalidations), when the platform serves cached views.
    pub album_cache: Option<AlbumCacheStats>,
    /// Semantic-resolution cache counters (hits, misses, epoch-driven
    /// invalidations, LRU evictions), when the broker memoizes
    /// per-term fan-outs.
    pub semantic_cache: Option<SemanticCacheStats>,
    /// Standing-query maintenance and SparqlPuSH delivery counters,
    /// when the platform runs live albums.
    pub live: Option<LiveOps>,
    /// Compiled-plan cache counters (hits, misses, bypasses,
    /// drift-driven invalidations), when the platform plans queries.
    pub plan_cache: Option<PlanCacheStats>,
    /// Admission-control counters (admitted, shed, queue depth) plus
    /// the recoverable shedding verdict, when admission control is on.
    pub admission: Option<AdmissionOps>,
}

/// The optional inputs to [`OpsSnapshot::collect`]. Every field
/// defaults to absent because a deployment may run only part of the
/// pipeline: an ephemeral store has no journal, a headless ingest run
/// serves no album views, a cache-less broker memoizes nothing.
#[derive(Default)]
pub struct OpsSources<'a> {
    /// The re-annotation queue, when one is draining.
    pub requeue: Option<&'a ReAnnotator>,
    /// The federation, when the node participates in one.
    pub federation: Option<&'a Federation>,
    /// Replication counters, when a mesh (or emission outbox) runs.
    pub replication: Option<ReplicationOps>,
    /// Persistence counters, when the store is journal-backed.
    pub durability: Option<DurabilityStats>,
    /// Album-cache counters, when the platform serves cached views.
    pub album_cache: Option<AlbumCacheStats>,
    /// Semantic-cache counters, when the broker memoizes fan-outs.
    pub semantic_cache: Option<SemanticCacheStats>,
    /// Live-album counters, when standing queries are registered.
    pub live: Option<LiveOps>,
    /// Plan-cache counters, when the platform plans queries.
    pub plan_cache: Option<PlanCacheStats>,
    /// Admission counters, when admission control is enabled.
    pub admission: Option<AdmissionOps>,
}

impl OpsSnapshot {
    /// Collects the current state from the broker plus whichever
    /// optional [`OpsSources`] sections this deployment runs.
    pub fn collect(broker: &SemanticBroker, sources: OpsSources<'_>) -> OpsSnapshot {
        let OpsSources {
            requeue,
            federation,
            replication,
            durability,
            album_cache,
            semantic_cache,
            live,
            plan_cache,
            admission,
        } = sources;
        let mut snapshot = OpsSnapshot::default();
        let telemetry = broker.telemetry();
        for name in broker.resolver_names() {
            let counter = |kind: &str| {
                telemetry
                    .map(|t| t.counter(&format!("broker.{kind}.{name}")))
                    .unwrap_or(0)
            };
            snapshot.resolvers.push(ResolverOps {
                name,
                breaker: broker.breaker_state(name),
                calls: counter("calls"),
                retries: counter("retries"),
                failures: counter("failures"),
                skipped: counter("skipped"),
            });
        }
        if let Some(requeue) = requeue {
            snapshot.reannotate_depth = requeue.depth();
            snapshot.reannotate_exhausted = requeue.queue().exhausted().len();
            snapshot.reannotate_parked = requeue.telemetry().counter("reannotate.parked");
            snapshot.reannotate_replayed = requeue.telemetry().counter("reannotate.replayed");
        }
        if let Some(federation) = federation {
            snapshot.federation_dlq_depth = federation.undelivered();
            if let Some(t) = federation.delivery_telemetry() {
                snapshot.federation_parked = t.counter("federation.parked");
                snapshot.federation_redelivered = t.counter("federation.redelivered");
                snapshot.federation_retries = t.counter("federation.retries");
            }
        }
        snapshot.replication = replication;
        snapshot.durability = durability;
        snapshot.album_cache = album_cache;
        snapshot.semantic_cache = semantic_cache;
        snapshot.live = live;
        snapshot.plan_cache = plan_cache;
        snapshot.admission = admission;
        snapshot
    }

    /// Replication lag at or above which the platform counts as
    /// degraded: subscribed replicas are falling this many emissions
    /// behind their origins (a converged mesh sits at zero).
    pub const REPLICATION_LAG_THRESHOLD: u64 = 64;

    /// Push lag at or above which the platform counts as degraded:
    /// live-album subscribers are falling this many diff frames behind
    /// their outbox heads (a converged hub sits at zero).
    pub const LIVE_PUSH_LAG_THRESHOLD: u64 = 64;

    /// WAL backlog above which the platform counts as degraded: flushes
    /// are falling behind ingestion (a healthy engine drains to zero at
    /// every group-commit barrier).
    pub const WAL_BACKLOG_THRESHOLD: u64 = 512;

    /// Whether anything is degraded right now: a breaker not closed, a
    /// non-empty dead-letter queue, re-annotation items that exhausted
    /// their attempt cap (permanently degraded content), or a WAL
    /// backlog past [`OpsSnapshot::WAL_BACKLOG_THRESHOLD`] (durability
    /// barrier falling behind), or admission control actively shedding
    /// load (depth at the shed threshold or an overload shed within the
    /// recent window — recovers on its own once the storm drains).
    pub fn is_degraded(&self) -> bool {
        self.resolvers
            .iter()
            .any(|r| r.breaker.is_some_and(|b| b != BreakerState::Closed))
            || self.reannotate_depth > 0
            || self.reannotate_exhausted > 0
            || self.federation_dlq_depth > 0
            || self
                .replication
                .as_ref()
                .is_some_and(|r| r.dlq_depth > 0 || r.lag >= Self::REPLICATION_LAG_THRESHOLD)
            || self
                .durability
                .as_ref()
                .is_some_and(|d| d.wal_pending as u64 >= Self::WAL_BACKLOG_THRESHOLD)
            || self.live.as_ref().is_some_and(|l| {
                l.push.dlq_depth > 0 || l.push.lag >= Self::LIVE_PUSH_LAG_THRESHOLD
            })
            || self.admission.as_ref().is_some_and(|a| a.shedding)
    }
}

impl fmt::Display for OpsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resilience ops snapshot")?;
        for r in &self.resolvers {
            let breaker = match r.breaker {
                Some(BreakerState::Closed) => "closed",
                Some(BreakerState::Open) => "OPEN",
                Some(BreakerState::HalfOpen) => "half-open",
                None => "-",
            };
            writeln!(
                f,
                "  resolver {:<10} breaker={:<9} calls={} retries={} failures={} skipped={}",
                r.name, breaker, r.calls, r.retries, r.failures, r.skipped
            )?;
        }
        writeln!(
            f,
            "  reannotate  depth={} exhausted={} parked={} replayed={}",
            self.reannotate_depth,
            self.reannotate_exhausted,
            self.reannotate_parked,
            self.reannotate_replayed
        )?;
        write!(
            f,
            "  federation  dlq={} parked={} redelivered={} retries={}",
            self.federation_dlq_depth,
            self.federation_parked,
            self.federation_redelivered,
            self.federation_retries
        )?;
        if let Some(r) = &self.replication {
            write!(
                f,
                "\n  replication lag={} dlq={} parked={} redelivered={} emissions={} applied={}",
                r.lag, r.dlq_depth, r.parked, r.redelivered, r.emissions, r.applied
            )?;
        }
        if let Some(d) = &self.durability {
            write!(
                f,
                "\n  durability  gen={} wal_records={} pending={} flushes={} snapshots={} replayed={}",
                d.generation,
                d.wal_records,
                d.wal_pending,
                d.flushes,
                d.snapshots_written,
                d.records_replayed
            )?;
        }
        if let Some(c) = &self.album_cache {
            write!(
                f,
                "\n  album cache hits={} misses={} invalidations={} fingerprints={} entries={}",
                c.hits, c.misses, c.invalidations, c.fingerprint_recomputes, c.entries
            )?;
        }
        if let Some(c) = &self.semantic_cache {
            write!(
                f,
                "\n  semantic cache hits={} misses={} invalidations={} evictions={} entries={}",
                c.hits, c.misses, c.invalidations, c.evictions, c.entries
            )?;
        }
        if let Some(l) = &self.live {
            write!(
                f,
                "\n  live        albums={} deltas={} patched={} refreshes={} diffs={}\
                 \n  live push   subs={} delivered={} parked={} redelivered={} lag={} dlq={}",
                l.albums,
                l.deltas,
                l.patched_albums,
                l.refreshes,
                l.diffs,
                l.push.subscribers,
                l.push.delivered,
                l.push.parked,
                l.push.redelivered,
                l.push.lag,
                l.push.dlq_depth
            )?;
        }
        if let Some(p) = &self.plan_cache {
            write!(
                f,
                "\n  plan cache  hits={} misses={} bypass={} invalidations={} entries={}",
                p.hits, p.misses, p.bypasses, p.invalidations, p.entries
            )?;
        }
        if let Some(a) = &self.admission {
            write!(
                f,
                "\n  admission   admitted={} shed_quota={} shed_overload={} depth={} tenants={} shedding={}",
                a.admitted, a.shed_quota, a.shed_overload, a.queue_depth, a.tenants, a.shedding
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(subject: TruthSubject) -> PictureTruth {
        PictureTruth {
            pid: 1,
            lang: "en",
            subject,
            city_key: "Turin".into(),
            poi_ref: None,
            has_gps: true,
            title: String::new(),
            keywords: vec![],
        }
    }

    #[test]
    fn perfect_prediction_scores_tp() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let counts = score_picture(&t, &[dbp("Mole_Antonelliana")]);
        assert_eq!(
            counts,
            PrCounts {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
        assert_eq!(counts.precision(), 1.0);
        assert_eq!(counts.recall(), 1.0);
        assert_eq!(counts.f1(), 1.0);
    }

    #[test]
    fn wrong_entity_is_fp_and_fn() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let counts = score_picture(&t, &[dbp("Mole_(animal)")]);
        assert_eq!(
            counts,
            PrCounts {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
        assert_eq!(counts.precision(), 0.0);
        assert_eq!(counts.recall(), 0.0);
    }

    #[test]
    fn city_annotation_is_acceptable_not_fp() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let gaz = Gazetteer::global();
        let turin_gn = gnr(gaz.city("Turin").unwrap().geonames_id());
        let counts = score_picture(&t, &[dbp("Mole_Antonelliana"), turin_gn]);
        assert_eq!(
            counts,
            PrCounts {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
    }

    #[test]
    fn evri_wrappers_are_neutral() {
        let t = truth(TruthSubject::Generic);
        let evri = Iri::new("http://www.evri.com/entity/something").unwrap();
        let counts = score_picture(&t, &[evri]);
        assert_eq!(counts, PrCounts::default());
        assert_eq!(counts.precision(), 1.0);
    }

    #[test]
    fn missing_prediction_is_fn() {
        let t = truth(TruthSubject::City("Turin".into()));
        let counts = score_picture(&t, &[]);
        assert_eq!(
            counts,
            PrCounts {
                tp: 0,
                fp: 0,
                fn_: 1
            }
        );
        assert_eq!(counts.recall(), 0.0);
    }

    #[test]
    fn city_subject_accepts_geonames_or_dbpedia_form() {
        let gaz = Gazetteer::global();
        let t = truth(TruthSubject::City("Turin".into()));
        let via_gn = score_picture(&t, &[gnr(gaz.city("Turin").unwrap().geonames_id())]);
        let via_dbp = score_picture(&t, &[dbp("Turin")]);
        assert_eq!(via_gn.tp, 1);
        assert_eq!(via_dbp.tp, 1);
    }

    #[test]
    fn ops_snapshot_reports_breakers_and_dlq_depths() {
        use lodify_lod::broker::BrokerResilienceConfig;
        use lodify_lod::resolvers::{DbpediaResolver, FaultInjectedResolver, GeonamesResolver};
        use lodify_resilience::{FaultPlan, VirtualClock};

        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("resolver:dbpedia", 0, u64::MAX)
            .build(clock.clone());
        let broker = lodify_lod::SemanticBroker::new(vec![
            Box::new(FaultInjectedResolver::new(DbpediaResolver, plan)),
            Box::new(GeonamesResolver),
        ])
        .with_resilience(clock, BrokerResilienceConfig::default());

        // Healthy at rest.
        let snapshot = OpsSnapshot::collect(&broker, OpsSources::default());
        assert!(!snapshot.is_degraded());
        assert_eq!(snapshot.resolvers.len(), 2);

        // Trip the dbpedia breaker.
        let store = lodify_store::Store::new();
        for _ in 0..4 {
            broker.resolve(&store, &["torino".to_string()], "torino", Some("en"));
        }
        let snapshot = OpsSnapshot::collect(&broker, OpsSources::default());
        assert!(snapshot.is_degraded());
        let dbp_ops = snapshot
            .resolvers
            .iter()
            .find(|r| r.name == "dbpedia")
            .unwrap();
        assert_eq!(dbp_ops.breaker, Some(BreakerState::Open));
        assert!(dbp_ops.calls >= 3);
        assert!(dbp_ops.failures >= 1);
        let gn_ops = snapshot
            .resolvers
            .iter()
            .find(|r| r.name == "geonames")
            .unwrap();
        assert_eq!(gn_ops.breaker, Some(BreakerState::Closed));
        assert_eq!(gn_ops.failures, 0);
        let rendered = snapshot.to_string();
        assert!(rendered.contains("breaker=OPEN"));
        assert!(rendered.contains("federation  dlq=0"));
    }

    #[test]
    fn ops_snapshot_renders_album_cache_counters() {
        let broker = lodify_lod::SemanticBroker::standard();
        let stats = AlbumCacheStats {
            hits: 7,
            misses: 2,
            invalidations: 1,
            fingerprint_recomputes: 3,
            entries: 2,
        };
        let snapshot = OpsSnapshot::collect(
            &broker,
            OpsSources {
                album_cache: Some(stats),
                ..OpsSources::default()
            },
        );
        assert_eq!(snapshot.album_cache, Some(stats));
        let rendered = snapshot.to_string();
        assert!(
            rendered
                .contains("album cache hits=7 misses=2 invalidations=1 fingerprints=3 entries=2"),
            "{rendered}"
        );
    }

    #[test]
    fn ops_snapshot_renders_live_counters_and_flags_push_lag() {
        let broker = lodify_lod::SemanticBroker::standard();
        let live = LiveOps {
            albums: 3,
            deltas: 40,
            patched_albums: 5,
            refreshes: 3,
            diffs: 4,
            push: LivePushOps {
                subscribers: 2,
                delivered: 4,
                parked: 0,
                redelivered: 0,
                lag: 0,
                dlq_depth: 0,
            },
        };
        let snapshot = OpsSnapshot::collect(
            &broker,
            OpsSources {
                live: Some(live),
                ..OpsSources::default()
            },
        );
        assert_eq!(snapshot.live, Some(live));
        assert!(!snapshot.is_degraded(), "converged push is healthy");
        let rendered = snapshot.to_string();
        assert!(
            rendered.contains("live        albums=3 deltas=40 patched=5 refreshes=3 diffs=4"),
            "{rendered}"
        );
        assert!(
            rendered.contains("live push   subs=2 delivered=4 parked=0 redelivered=0 lag=0 dlq=0"),
            "{rendered}"
        );

        // A parked push delivery or a lag past the threshold degrades.
        let mut lagging = snapshot.clone();
        lagging.live.as_mut().unwrap().push.dlq_depth = 1;
        assert!(lagging.is_degraded(), "parked push delivery degrades");
        let mut behind = snapshot;
        behind.live.as_mut().unwrap().push.lag = OpsSnapshot::LIVE_PUSH_LAG_THRESHOLD;
        assert!(behind.is_degraded(), "push lag at threshold degrades");
    }

    #[test]
    fn degradation_covers_exhausted_items_and_wal_backlog() {
        // Exhausted re-annotation items alone flag degradation, even
        // with an empty queue: that content is permanently under-
        // annotated until an operator intervenes.
        let mut snapshot = OpsSnapshot::default();
        assert!(!snapshot.is_degraded());
        snapshot.reannotate_exhausted = 1;
        assert!(snapshot.is_degraded());
        snapshot.reannotate_exhausted = 0;

        // A modest unflushed WAL is normal (group commit batches);
        // a backlog at the threshold means flushes are falling behind.
        let mut durability = DurabilityStats {
            wal_pending: OpsSnapshot::WAL_BACKLOG_THRESHOLD as usize - 1,
            ..DurabilityStats::default()
        };
        snapshot.durability = Some(durability.clone());
        assert!(!snapshot.is_degraded(), "below threshold is healthy");
        durability.wal_pending = OpsSnapshot::WAL_BACKLOG_THRESHOLD as usize;
        snapshot.durability = Some(durability);
        assert!(snapshot.is_degraded(), "backlog at threshold degrades");
    }

    #[test]
    fn score_run_merges() {
        let t1 = truth(TruthSubject::Poi("Colosseum".into()));
        let mut t2 = truth(TruthSubject::Generic);
        t2.pid = 2;
        let counts = score_run([&t1, &t2], |pid| match pid {
            1 => vec![dbp("Colosseum")],
            _ => Vec::new(),
        });
        assert_eq!(counts.tp, 1);
        assert_eq!(counts.fp, 0);
        assert_eq!(counts.fn_, 0);
    }
}
