//! Annotation- and retrieval-quality metrics.
//!
//! The paper reports no numbers ("Empirical tests proof that such
//! technique must be further improved as it still provides false
//! positives") — these metrics quantify exactly that claim against the
//! workload's ground truth, for experiments E3, E4 and E8.

use std::collections::HashSet;

use lodify_context::Gazetteer;
use lodify_lod::datasets::{dbp, gnr};
use lodify_rdf::Iri;
use lodify_relational::workload::{PictureTruth, TruthSubject};

/// Basic precision/recall counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl PrCounts {
    /// Precision; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 1.0 when nothing was expected.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another count set in.
    pub fn merge(&mut self, other: PrCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// The expected (subject) resource IRIs for a picture — what the
/// annotation *should* find.
pub fn expected_resources(truth: &PictureTruth) -> Vec<Iri> {
    let gaz = Gazetteer::global();
    match &truth.subject {
        TruthSubject::Poi(key) => vec![dbp(key)],
        TruthSubject::Person(name) => vec![dbp(&name.replace(' ', "_"))],
        TruthSubject::City(key) => {
            let mut out = vec![dbp(key)];
            if let Some(city) = gaz.city(key) {
                out.push(gnr(city.geonames_id()));
            }
            out
        }
        TruthSubject::Generic => Vec::new(),
    }
}

/// Resources that are *acceptable* annotations without being the
/// subject: the capture city in both DBpedia and Geonames form (the
/// user's city tag legitimately annotates to it), and any Evri wrapper
/// entity (opaque external identifiers, scored as neutral).
pub fn acceptable_resources(truth: &PictureTruth) -> HashSet<String> {
    let gaz = Gazetteer::global();
    let mut ok: HashSet<String> = expected_resources(truth)
        .into_iter()
        .map(|i| i.into_string())
        .collect();
    if let Some(city) = gaz.city(&truth.city_key) {
        ok.insert(dbp(city.key).into_string());
        ok.insert(gnr(city.geonames_id()).into_string());
    }
    ok
}

/// Scores one picture's predicted annotation resources against truth.
///
/// * tp: an expected resource was predicted (counted once);
/// * fn: the picture had an expected subject but none was predicted;
/// * fp: a predicted resource outside the acceptable set (Evri
///   wrappers are ignored as neutral).
pub fn score_picture(truth: &PictureTruth, predicted: &[Iri]) -> PrCounts {
    let expected: HashSet<String> = expected_resources(truth)
        .into_iter()
        .map(|i| i.into_string())
        .collect();
    let acceptable = acceptable_resources(truth);

    let mut counts = PrCounts::default();
    let mut subject_found = false;
    for iri in predicted {
        let s = iri.as_str();
        if s.starts_with("http://www.evri.com/") {
            continue; // neutral
        }
        if expected.contains(s) {
            subject_found = true;
        } else if !acceptable.contains(s) {
            counts.fp += 1;
        }
    }
    if !expected.is_empty() {
        if subject_found {
            counts.tp += 1;
        } else {
            counts.fn_ += 1;
        }
    }
    counts
}

/// Scores a full run: `predictions(pid)` returns the predicted
/// resources for a picture.
pub fn score_run<'a>(
    truths: impl IntoIterator<Item = &'a PictureTruth>,
    mut predictions: impl FnMut(i64) -> Vec<Iri>,
) -> PrCounts {
    let mut total = PrCounts::default();
    for truth in truths {
        total.merge(score_picture(truth, &predictions(truth.pid)));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(subject: TruthSubject) -> PictureTruth {
        PictureTruth {
            pid: 1,
            lang: "en",
            subject,
            city_key: "Turin".into(),
            poi_ref: None,
            has_gps: true,
            title: String::new(),
            keywords: vec![],
        }
    }

    #[test]
    fn perfect_prediction_scores_tp() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let counts = score_picture(&t, &[dbp("Mole_Antonelliana")]);
        assert_eq!(counts, PrCounts { tp: 1, fp: 0, fn_: 0 });
        assert_eq!(counts.precision(), 1.0);
        assert_eq!(counts.recall(), 1.0);
        assert_eq!(counts.f1(), 1.0);
    }

    #[test]
    fn wrong_entity_is_fp_and_fn() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let counts = score_picture(&t, &[dbp("Mole_(animal)")]);
        assert_eq!(counts, PrCounts { tp: 0, fp: 1, fn_: 1 });
        assert_eq!(counts.precision(), 0.0);
        assert_eq!(counts.recall(), 0.0);
    }

    #[test]
    fn city_annotation_is_acceptable_not_fp() {
        let t = truth(TruthSubject::Poi("Mole_Antonelliana".into()));
        let gaz = Gazetteer::global();
        let turin_gn = gnr(gaz.city("Turin").unwrap().geonames_id());
        let counts = score_picture(&t, &[dbp("Mole_Antonelliana"), turin_gn]);
        assert_eq!(counts, PrCounts { tp: 1, fp: 0, fn_: 0 });
    }

    #[test]
    fn evri_wrappers_are_neutral() {
        let t = truth(TruthSubject::Generic);
        let evri = Iri::new("http://www.evri.com/entity/something").unwrap();
        let counts = score_picture(&t, &[evri]);
        assert_eq!(counts, PrCounts::default());
        assert_eq!(counts.precision(), 1.0);
    }

    #[test]
    fn missing_prediction_is_fn() {
        let t = truth(TruthSubject::City("Turin".into()));
        let counts = score_picture(&t, &[]);
        assert_eq!(counts, PrCounts { tp: 0, fp: 0, fn_: 1 });
        assert_eq!(counts.recall(), 0.0);
    }

    #[test]
    fn city_subject_accepts_geonames_or_dbpedia_form() {
        let gaz = Gazetteer::global();
        let t = truth(TruthSubject::City("Turin".into()));
        let via_gn = score_picture(&t, &[gnr(gaz.city("Turin").unwrap().geonames_id())]);
        let via_dbp = score_picture(&t, &[dbp("Turin")]);
        assert_eq!(via_gn.tp, 1);
        assert_eq!(via_dbp.tp, 1);
    }

    #[test]
    fn score_run_merges() {
        let t1 = truth(TruthSubject::Poi("Colosseum".into()));
        let mut t2 = truth(TruthSubject::Generic);
        t2.pid = 2;
        let counts = score_run([&t1, &t2], |pid| match pid {
            1 => vec![dbp("Colosseum")],
            _ => Vec::new(),
        });
        assert_eq!(counts.tp, 1);
        assert_eq!(counts.fp, 0);
        assert_eq!(counts.fn_, 0);
    }
}
