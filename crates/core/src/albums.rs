//! Semantic virtual albums (§2.3).
//!
//! "A virtual album is a collection of multimedia objects retrieved
//! dynamically by applying several complex search conditions over our
//! data storage. … behind a virtual album stands a SPARQL query."
//!
//! [`AlbumSpec`] is the builder behind the paper's three example
//! queries: Q1 (geo proximity to a monument), Q2 (Q1 + social
//! filtering via `foaf:knows`), Q3 (Q2 + `rev:rating` ordering). The
//! generated text matches the paper's query shape so it doubles as a
//! regression test for the SPARQL engine.
//!
//! [`relational_baseline`] computes the *same* semantics directly over
//! the relational database — the "already possible by means of
//! relational DB technology" baseline the paper contrasts with — and
//! the E5 experiment cross-checks both.
//!
//! # Materialized albums
//!
//! Re-running the full SPARQL query on every album view is the hot
//! path the paper's Virtuoso deployment would melt under. An
//! [`AlbumCache`] memoizes each album's solved links as a
//! [`MaterializedAlbum`] keyed by the store's **mutation epoch**
//! ([`Store::epoch`]): an entry stays valid while none of the
//! predicates its query reads ([`AlbumSpec::predicates`]) has seen a
//! mutation ([`Store::predicate_epoch`]). Invalidation is therefore
//! *incremental* — rating a picture (a `rev:rating` mutation)
//! invalidates Q3 albums but leaves Q1 albums cached. Hit, miss and
//! invalidation counters surface through
//! [`OpsSnapshot`](crate::metrics::OpsSnapshot).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lodify_rdf::{ns, Iri, Point, Term};
use lodify_relational::{coppermine as cpg, Database};
use lodify_store::Store;

use crate::error::PlatformError;

/// Declarative spec of a virtual album.
///
/// The builder mirrors the paper's query ladder — each call adds one
/// of §2.3's refinements:
///
/// ```
/// use lodify_core::albums::AlbumSpec;
///
/// // Q3 = Q1 (geo proximity) + Q2 (social filter) + rating order.
/// let q3 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3)
///     .friends_of("oscar")
///     .rated();
/// let sparql = q3.to_sparql();
/// assert!(sparql.contains("?monument rdfs:label \"Mole Antonelliana\"@it ."));
/// assert!(sparql.contains("?user foaf:knows ?friend ."));
/// assert!(sparql.ends_with("ORDER BY DESC(?points) ?link\n"));
/// ```
#[derive(Debug, Clone)]
pub struct AlbumSpec {
    /// The monument's label, e.g. `Mole Antonelliana`.
    pub monument_label: String,
    /// Language tag of the label (the paper uses `@it`).
    pub label_lang: String,
    /// Proximity radius in kilometers (the paper's `0.3`).
    pub radius_km: f64,
    /// Social filter: only content by makers who know this user.
    pub friend_of: Option<String>,
    /// Order results by `rev:rating`, descending.
    pub order_by_rating: bool,
    /// Optional result cap.
    pub limit: Option<usize>,
    /// Predicates the generated query reads, derived by the builders
    /// so that every cache probe borrows instead of allocating.
    preds: Vec<Iri>,
}

/// The constant predicates a query with the given refinements reads.
fn derive_predicates(social: bool, rated: bool) -> Vec<Iri> {
    let mut preds = vec![
        ns::iri::rdfs_label(),
        ns::iri::geo_geometry(),
        ns::iri::rdf_type(),
        ns::iri::image_data(),
    ];
    if social {
        preds.extend([
            ns::iri::foaf_maker(),
            ns::iri::foaf_name(),
            ns::iri::foaf_knows(),
        ]);
    }
    if rated {
        preds.push(ns::iri::rev_rating());
    }
    preds
}

impl AlbumSpec {
    /// Q1: content near a monument.
    pub fn near_monument(label: &str, lang: &str, radius_km: f64) -> AlbumSpec {
        AlbumSpec {
            monument_label: label.to_string(),
            label_lang: lang.to_string(),
            radius_km,
            friend_of: None,
            order_by_rating: false,
            limit: None,
            preds: derive_predicates(false, false),
        }
    }

    /// Q2: add the social filter ("created by users who are friends of
    /// user X").
    pub fn friends_of(mut self, user_name: &str) -> AlbumSpec {
        self.friend_of = Some(user_name.to_string());
        self.preds = derive_predicates(true, self.order_by_rating);
        self
    }

    /// Q3: order by rating, best first.
    pub fn rated(mut self) -> AlbumSpec {
        self.order_by_rating = true;
        self.preds = derive_predicates(self.friend_of.is_some(), true);
        self
    }

    /// Caps the result list.
    pub fn limit(mut self, n: usize) -> AlbumSpec {
        self.limit = Some(n);
        self
    }

    /// Renders the SPARQL query (the paper's Q1/Q2/Q3 shapes).
    pub fn to_sparql(&self) -> String {
        let mut body = format!(
            r#"  ?monument rdfs:label "{label}"@{lang} .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
"#,
            label = self.monument_label.replace('"', "\\\""),
            lang = self.label_lang,
        );
        if let Some(user) = &self.friend_of {
            body.push_str(&format!(
                "  ?resource foaf:maker ?user .\n  ?friend foaf:name \"{}\" .\n  ?user foaf:knows ?friend .\n",
                user.replace('"', "\\\"")
            ));
        }
        if self.order_by_rating {
            body.push_str("  ?resource rev:rating ?points .\n");
        }
        body.push_str(&format!(
            "  FILTER( bif:st_intersects( ?location, ?sourceGEO, {} ) ) .\n",
            self.radius_km
        ));
        let mut query = format!("SELECT DISTINCT ?link WHERE {{\n{body}}}\n");
        // The trailing `?link` sort key makes the result order a pure
        // function of (rating, link) — ties no longer depend on join
        // enumeration order, which is what lets the live standing-query
        // engine ([`crate::live`]) reproduce the order from a patch.
        if self.order_by_rating {
            query.push_str("ORDER BY DESC(?points) ?link\n");
        } else {
            query.push_str("ORDER BY ?link\n");
        }
        if let Some(limit) = self.limit {
            query.push_str(&format!("LIMIT {limit}\n"));
        }
        query
    }

    /// Executes against a store, returning media links in result order.
    pub fn execute(&self, store: &Store) -> Result<Vec<String>, PlatformError> {
        let results = lodify_sparql::execute(store, &self.to_sparql())?;
        Ok(results
            .column("link")
            .into_iter()
            .map(|t| t.lexical().to_string())
            .collect())
    }

    /// The constant predicates the generated query reads. A cached
    /// answer stays valid while none of them has seen a mutation —
    /// the incremental-invalidation contract of [`AlbumCache`]. The
    /// slice is computed once by the builders, so probing it on the
    /// cache hot path is allocation-free.
    pub fn predicates(&self) -> &[Iri] {
        &self.preds
    }
}

/// Max per-predicate epoch over the query's predicates: the album's
/// validity fingerprint. Epochs only grow, so an unchanged fingerprint
/// proves no statement any of these predicates could reach was added
/// or removed since the album was solved.
fn fingerprint(spec: &AlbumSpec, store: &Store) -> u64 {
    spec.predicates()
        .iter()
        .map(|iri| {
            store
                .id_of(&Term::Iri(iri.clone()))
                .map(|id| store.predicate_epoch(id))
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// One solved virtual album: the result links plus the epoch
/// fingerprint they are valid for.
#[derive(Debug, Clone)]
pub struct MaterializedAlbum {
    /// Media links, in query result order.
    pub links: Vec<String>,
    /// [`Store::epoch`] when the album was solved (diagnostics).
    pub solved_at: u64,
    /// Validity fingerprint (see [`fingerprint`]).
    valid_for: u64,
}

impl MaterializedAlbum {
    /// Runs the album query and records the epoch fingerprint it is
    /// valid for.
    pub fn solve(spec: &AlbumSpec, store: &Store) -> Result<MaterializedAlbum, PlatformError> {
        Ok(MaterializedAlbum {
            links: spec.execute(store)?,
            solved_at: store.epoch(),
            valid_for: fingerprint(spec, store),
        })
    }

    /// Whether the solved links still answer `spec` over `store`: true
    /// iff no predicate the query reads mutated since [`Self::solve`].
    pub fn is_fresh(&self, spec: &AlbumSpec, store: &Store) -> bool {
        fingerprint(spec, store) == self.valid_for
    }
}

/// Album-cache counters, surfaced through
/// [`OpsSnapshot`](crate::metrics::OpsSnapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlbumCacheStats {
    /// Views served straight from a fresh materialized album.
    pub hits: u64,
    /// Views that had to solve the query (cold or invalidated).
    pub misses: u64,
    /// Entries dropped because a relevant predicate mutated.
    pub invalidations: u64,
    /// Predicate-epoch fingerprint computations. Memoized per store
    /// epoch, so a warm view at an unchanged epoch costs zero of these.
    pub fingerprint_recomputes: u64,
    /// Materialized albums currently held.
    pub entries: usize,
}

/// Epoch-validated memo of solved virtual albums.
///
/// Interior mutability (a mutex around the entry map, atomics for the
/// counters) lets the cache serve and admit entries through `&self`,
/// so read paths — the web `/album` route holds the platform
/// immutably — stay lock-friendly.
///
/// ```
/// use lodify_core::albums::{AlbumCache, AlbumSpec};
/// use lodify_rdf::{ns, Literal, Point, Term, Triple};
/// use lodify_store::Store;
///
/// let mut store = Store::new();
/// let g = store.default_graph();
/// let mole = Point::new(7.6933, 45.0692)?;
/// let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
/// store.insert(
///     &Triple::spo(
///         monument,
///         ns::iri::rdfs_label().as_str(),
///         Term::Literal(Literal::lang("Mole Antonelliana", "it")?),
///     ),
///     g,
/// );
/// store.insert(
///     &Triple::spo(
///         monument,
///         ns::iri::geo_geometry().as_str(),
///         Term::Literal(mole.to_literal()),
///     ),
///     g,
/// );
/// let pic = "http://t/pictures/1";
/// store.insert(
///     &Triple::spo(pic, ns::iri::rdf_type().as_str(), Term::Iri(ns::iri::microblog_post())),
///     g,
/// );
/// store.insert(
///     &Triple::spo(
///         pic,
///         ns::iri::geo_geometry().as_str(),
///         Term::Literal(mole.offset_km(0.05, 0.0).to_literal()),
///     ),
///     g,
/// );
/// store.insert(
///     &Triple::spo(pic, ns::iri::image_data().as_str(), Term::literal("http://t/media/1.jpg")),
///     g,
/// );
///
/// let cache = AlbumCache::new();
/// let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
/// let cold = cache.view(&store, &spec)?; // solves the SPARQL query
/// let warm = cache.view(&store, &spec)?; // epoch unchanged: served from cache
/// assert_eq!(cold, vec!["http://t/media/1.jpg".to_string()]);
/// assert_eq!(warm, cold);
/// assert_eq!((cache.stats().misses, cache.stats().hits), (1, 1));
///
/// // Mutating a predicate the query reads invalidates the entry.
/// store.insert(
///     &Triple::spo(
///         "http://t/pictures/2",
///         ns::iri::image_data().as_str(),
///         Term::literal("http://t/media/2.jpg"),
///     ),
///     g,
/// );
/// cache.view(&store, &spec)?;
/// assert_eq!(cache.stats().invalidations, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct AlbumCache {
    entries: Mutex<HashMap<String, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    fingerprint_recomputes: AtomicU64,
}

/// A cached album plus the fingerprint memo: `fp` is the query's
/// predicate-epoch fingerprint as of store epoch `fp_epoch`, so a view
/// at an unchanged epoch skips the per-predicate recomputation.
#[derive(Debug)]
struct CacheEntry {
    album: MaterializedAlbum,
    fp_epoch: u64,
    fp: u64,
}

impl AlbumCache {
    /// An empty cache.
    pub fn new() -> AlbumCache {
        AlbumCache::default()
    }

    /// Serves an album view: a fresh materialized album is returned
    /// as-is (hit); a stale one is dropped (invalidation) and, like a
    /// cold view, re-solved and admitted (miss).
    pub fn view(&self, store: &Store, spec: &AlbumSpec) -> Result<Vec<String>, PlatformError> {
        self.view_with(store, spec, |spec| spec.execute(store))
    }

    /// [`Self::view`] with a caller-supplied solver for the miss path.
    ///
    /// The solver must answer `spec` over `store` (the epoch
    /// fingerprint admitted with the result is read from `store`);
    /// callers use this to route cold/stale solves through an
    /// instrumented SPARQL entry point instead of the plain engine.
    pub fn view_with<F>(
        &self,
        store: &Store,
        spec: &AlbumSpec,
        solve: F,
    ) -> Result<Vec<String>, PlatformError>
    where
        F: FnOnce(&AlbumSpec) -> Result<Vec<String>, PlatformError>,
    {
        let key = spec.to_sparql();
        let epoch = store.epoch();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = entries.get_mut(&key) {
            if entry.fp_epoch != epoch {
                entry.fp = fingerprint(spec, store);
                entry.fp_epoch = epoch;
                self.fingerprint_recomputes.fetch_add(1, Ordering::Relaxed);
            }
            if entry.fp == entry.album.valid_for {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.album.links.clone());
            }
            entries.remove(&key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let links = solve(spec)?;
        let fp = fingerprint(spec, store);
        self.fingerprint_recomputes.fetch_add(1, Ordering::Relaxed);
        entries.insert(
            key,
            CacheEntry {
                album: MaterializedAlbum {
                    links: links.clone(),
                    solved_at: epoch,
                    valid_for: fp,
                },
                fp_epoch: epoch,
                fp,
            },
        );
        Ok(links)
    }

    /// Installs an externally maintained answer for `spec` — the live
    /// standing-query engine ([`crate::live`]) patches albums in place
    /// instead of letting a mutation invalidate them, so the next view
    /// is a hit rather than a re-solve. Counts as neither hit nor miss.
    pub fn patch(&self, store: &Store, spec: &AlbumSpec, links: Vec<String>) {
        let epoch = store.epoch();
        let fp = fingerprint(spec, store);
        self.fingerprint_recomputes.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                spec.to_sparql(),
                CacheEntry {
                    album: MaterializedAlbum {
                        links,
                        solved_at: epoch,
                        valid_for: fp,
                    },
                    fp_epoch: epoch,
                    fp,
                },
            );
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AlbumCacheStats {
        AlbumCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            fingerprint_recomputes: self.fingerprint_recomputes.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// Drops every materialized album (counters are kept).
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// The relational-technology baseline: same album semantics computed
/// with scans over the Coppermine tables. Needs the monument's point
/// handed in — the relational platform has no LOD to look it up in,
/// which is precisely the gap the paper's semanticization closes.
pub fn relational_baseline(
    db: &Database,
    monument: Point,
    radius_km: f64,
    friend_of_user_name: Option<&str>,
    order_by_rating: bool,
) -> Result<Vec<String>, PlatformError> {
    let pictures = db.table(cpg::PICTURES)?;
    let users = db.table(cpg::USERS)?;
    let friends = db.table(cpg::FRIENDS)?;
    let votes = db.table(cpg::VOTES)?;

    // Resolve the social filter to a set of allowed makers.
    let allowed_makers: Option<std::collections::BTreeSet<i64>> = match friend_of_user_name {
        None => None,
        Some(name) => {
            let target = users
                .select(|row| row[1].as_text() == Some(name))
                .map(|(uid, _)| uid)
                .next()
                .ok_or_else(|| PlatformError::NotFound(format!("user {name:?}")))?;
            Some(
                friends
                    .select(|row| row[2].as_int() == Some(target))
                    .filter_map(|(_, row)| row[1].as_int())
                    .collect(),
            )
        }
    };

    let mut hits: Vec<(i64, f64)> = Vec::new(); // (pid, avg rating)
    for (pid, row) in pictures.scan() {
        let (Some(lon), Some(lat)) = (row[6].as_real(), row[7].as_real()) else {
            continue;
        };
        let Ok(point) = Point::new(lon, lat) else {
            continue;
        };
        if point.distance_km(monument) > radius_km {
            continue;
        }
        if let Some(allowed) = &allowed_makers {
            let Some(owner) = row[2].as_int() else {
                continue;
            };
            if !allowed.contains(&owner) {
                continue;
            }
        }
        let ratings: Vec<f64> = votes
            .select(|v| v[1].as_int() == Some(pid))
            .filter_map(|(_, v)| v[3].as_real())
            .collect();
        if order_by_rating && ratings.is_empty() {
            // Q3's `?resource rev:rating ?points` pattern drops
            // unrated content; the baseline must match.
            continue;
        }
        let avg = if ratings.is_empty() {
            0.0
        } else {
            ratings.iter().sum::<f64>() / ratings.len() as f64
        };
        hits.push((pid, (avg * 100.0).round() / 100.0));
    }
    if order_by_rating {
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    Ok(hits
        .into_iter()
        .map(|(pid, _)| format!("http://beta.teamlife.it/media/{pid}.jpg"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use lodify_context::Gazetteer;
    use lodify_relational::WorkloadConfig;

    fn platform() -> Platform {
        Platform::bootstrap(WorkloadConfig {
            seed: 7,
            users: 20,
            pictures: 300,
            ..WorkloadConfig::default()
        })
        .unwrap()
    }

    fn mole_point() -> Point {
        let gaz = Gazetteer::global();
        gaz.poi("Mole_Antonelliana").unwrap().point(gaz)
    }

    #[test]
    fn q1_sparql_matches_relational_baseline() {
        let p = platform();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        let mut semantic = spec.execute(p.store()).unwrap();
        let mut baseline = relational_baseline(p.db(), mole_point(), 0.3, None, false).unwrap();
        semantic.sort();
        baseline.sort();
        assert_eq!(semantic, baseline);
        assert!(!semantic.is_empty(), "workload puts pictures near the Mole");
    }

    #[test]
    fn q2_social_filter_restricts_q1() {
        let p = platform();
        let q1 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3)
            .execute(p.store())
            .unwrap();
        // Pick a user name that exists.
        let users = p.db().table(lodify_relational::coppermine::USERS).unwrap();
        let some_user = users
            .scan()
            .next()
            .and_then(|(_, row)| row[1].as_text().map(str::to_string))
            .unwrap();
        let q2_spec =
            AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).friends_of(&some_user);
        let mut q2 = q2_spec.execute(p.store()).unwrap();
        assert!(q2.len() <= q1.len());
        let mut baseline =
            relational_baseline(p.db(), mole_point(), 0.3, Some(&some_user), false).unwrap();
        q2.sort();
        baseline.sort();
        assert_eq!(q2, baseline);
    }

    #[test]
    fn q3_orders_by_rating_and_matches_baseline_membership() {
        let p = platform();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.5).rated();
        let semantic = spec.execute(p.store()).unwrap();
        let baseline = relational_baseline(p.db(), mole_point(), 0.5, None, true).unwrap();
        let mut a = semantic.clone();
        let mut b = baseline;
        a.sort();
        b.sort();
        assert_eq!(a, b, "same membership");
        // Ratings are non-increasing along the semantic result.
        let ratings: Vec<f64> = semantic
            .iter()
            .map(|link| {
                let q = format!(
                    "SELECT ?r ?p WHERE {{ ?p comm:image-data <{link}> . ?p rev:rating ?r . }}"
                );
                let res = lodify_sparql::execute(p.store(), &q).unwrap();
                res.column("r")[0].lexical().parse::<f64>().unwrap()
            })
            .collect();
        assert!(
            ratings.windows(2).all(|w| w[0] >= w[1]),
            "not sorted: {ratings:?}"
        );
    }

    #[test]
    fn radius_widening_is_monotone() {
        let p = platform();
        let near = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.1)
            .execute(p.store())
            .unwrap();
        let wide = AlbumSpec::near_monument("Mole Antonelliana", "it", 5.0)
            .execute(p.store())
            .unwrap();
        assert!(near.len() <= wide.len());
    }

    #[test]
    fn limit_caps_results() {
        let p = platform();
        let capped = AlbumSpec::near_monument("Mole Antonelliana", "it", 5.0)
            .limit(2)
            .execute(p.store())
            .unwrap();
        assert!(capped.len() <= 2);
    }

    #[test]
    fn unknown_monument_is_empty_not_error() {
        let p = platform();
        let results = AlbumSpec::near_monument("Nonexistent Monument", "it", 0.3)
            .execute(p.store())
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn baseline_unknown_user_is_error() {
        let p = platform();
        assert!(matches!(
            relational_baseline(p.db(), mole_point(), 0.3, Some("nobody"), false),
            Err(PlatformError::NotFound(_))
        ));
    }

    // ----- materialized album cache -----

    use lodify_rdf::{Literal, Triple};

    /// A minimal hand-built store answering Q1/Q3 near the Mole.
    fn tiny_store() -> (Store, Triple) {
        let mut store = Store::new();
        let g = store.default_graph();
        let mole = mole_point();
        let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                monument,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole.to_literal()),
            ),
            g,
        );
        let pic = "http://t/pictures/1";
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::rdf_type().as_str(),
                Term::Iri(ns::iri::microblog_post()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole.offset_km(0.05, 0.0).to_literal()),
            ),
            g,
        );
        store.insert(
            &Triple::spo(
                pic,
                ns::iri::image_data().as_str(),
                Term::literal("http://t/media/1.jpg"),
            ),
            g,
        );
        let rating = Triple::spo(
            pic,
            ns::iri::rev_rating().as_str(),
            Term::Literal(Literal::integer(4)),
        );
        store.insert(&rating, g);
        (store, rating)
    }

    #[test]
    fn cache_serves_hits_until_a_relevant_mutation() {
        let (mut store, _) = tiny_store();
        let cache = AlbumCache::new();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);

        let cold = cache.view(&store, &spec).unwrap();
        assert_eq!(cold, vec!["http://t/media/1.jpg"]);
        let warm = cache.view(&store, &spec).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(
            cache.stats(),
            AlbumCacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
                fingerprint_recomputes: 1,
                entries: 1
            }
        );

        // A mutation on a predicate the query reads invalidates.
        let g = store.default_graph();
        store.insert(
            &Triple::spo(
                "http://t/pictures/2",
                ns::iri::image_data().as_str(),
                Term::literal("http://t/media/2.jpg"),
            ),
            g,
        );
        let _ = cache.view(&store, &spec).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn invalidation_is_incremental_per_predicate() {
        let (mut store, _) = tiny_store();
        let cache = AlbumCache::new();
        let q1 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        let q3 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).rated();
        cache.view(&store, &q1).unwrap();
        cache.view(&store, &q3).unwrap();

        // A rating mutation touches only rev:rating — Q3 reads it,
        // Q1 does not.
        let g = store.default_graph();
        store.insert(
            &Triple::spo(
                "http://t/pictures/1",
                ns::iri::rev_rating().as_str(),
                Term::Literal(Literal::integer(5)),
            ),
            g,
        );
        cache.view(&store, &q1).unwrap();
        cache.view(&store, &q3).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "Q1 stays cached across a rating change");
        assert_eq!(stats.invalidations, 1, "Q3 is re-solved");
    }

    /// Regression (the stats-drift bug class from the durability PR):
    /// `Store::remove` must advance the epoch and fire invalidation,
    /// not just inserts.
    #[test]
    fn cache_invalidation_fires_on_store_remove() {
        let (mut store, rating) = tiny_store();
        let cache = AlbumCache::new();
        let q3 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).rated();
        let before = cache.view(&store, &q3).unwrap();
        assert_eq!(before, vec!["http://t/media/1.jpg"]);

        assert!(store.remove(&rating));
        let after = cache.view(&store, &q3).unwrap();
        assert!(
            after.is_empty(),
            "removing the rating drops the picture from Q3"
        );
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn materialized_album_reports_freshness() {
        let (mut store, rating) = tiny_store();
        let q3 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).rated();
        let album = MaterializedAlbum::solve(&q3, &store).unwrap();
        assert_eq!(album.solved_at, store.epoch());
        assert!(album.is_fresh(&q3, &store));
        store.remove(&rating);
        assert!(!album.is_fresh(&q3, &store));
    }

    /// Satellite regression: the predicate-epoch fingerprint is
    /// memoized per store epoch — warm views at an unchanged epoch do
    /// not rescan the spec's predicates.
    #[test]
    fn fingerprint_is_memoized_per_store_epoch() {
        let (mut store, _) = tiny_store();
        let cache = AlbumCache::new();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);

        cache.view(&store, &spec).unwrap();
        assert_eq!(cache.stats().fingerprint_recomputes, 1, "cold admit");
        for _ in 0..10 {
            cache.view(&store, &spec).unwrap();
        }
        assert_eq!(
            cache.stats().fingerprint_recomputes,
            1,
            "warm views reuse the memo"
        );

        // Any epoch bump (even on an irrelevant predicate) costs
        // exactly one recomputation on the next view.
        let g = store.default_graph();
        store.insert(
            &Triple::spo(
                "http://t/pictures/1",
                ns::iri::foaf_maker().as_str(),
                Term::literal("nobody"),
            ),
            g,
        );
        cache.view(&store, &spec).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.fingerprint_recomputes, 2);
        assert_eq!(stats.hits, 11, "irrelevant predicate: still a hit");
    }

    /// A patched entry serves subsequent views as hits — the live
    /// engine's contract for skipping invalidation entirely.
    #[test]
    fn patched_entry_is_served_as_a_hit() {
        let (mut store, _) = tiny_store();
        let cache = AlbumCache::new();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        cache.view(&store, &spec).unwrap();

        // Mutate, then patch the maintained answer in place.
        let g = store.default_graph();
        store.insert(
            &Triple::spo(
                "http://t/pictures/2",
                ns::iri::image_data().as_str(),
                Term::literal("http://t/media/2.jpg"),
            ),
            g,
        );
        let fresh = spec.execute(&store).unwrap();
        cache.patch(&store, &spec, fresh.clone());

        let served = cache.view(&store, &spec).unwrap();
        assert_eq!(served, fresh);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 1, 0));
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let (store, _) = tiny_store();
        let cache = AlbumCache::new();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        cache.view(&store, &spec).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }
}
