//! Semantic virtual albums (§2.3).
//!
//! "A virtual album is a collection of multimedia objects retrieved
//! dynamically by applying several complex search conditions over our
//! data storage. … behind a virtual album stands a SPARQL query."
//!
//! [`AlbumSpec`] is the builder behind the paper's three example
//! queries: Q1 (geo proximity to a monument), Q2 (Q1 + social
//! filtering via `foaf:knows`), Q3 (Q2 + `rev:rating` ordering). The
//! generated text matches the paper's query shape so it doubles as a
//! regression test for the SPARQL engine.
//!
//! [`relational_baseline`] computes the *same* semantics directly over
//! the relational database — the "already possible by means of
//! relational DB technology" baseline the paper contrasts with — and
//! the E5 experiment cross-checks both.

use lodify_rdf::Point;
use lodify_relational::{coppermine as cpg, Database};
use lodify_store::Store;

use crate::error::PlatformError;

/// Declarative spec of a virtual album.
#[derive(Debug, Clone)]
pub struct AlbumSpec {
    /// The monument's label, e.g. `Mole Antonelliana`.
    pub monument_label: String,
    /// Language tag of the label (the paper uses `@it`).
    pub label_lang: String,
    /// Proximity radius in kilometers (the paper's `0.3`).
    pub radius_km: f64,
    /// Social filter: only content by makers who know this user.
    pub friend_of: Option<String>,
    /// Order results by `rev:rating`, descending.
    pub order_by_rating: bool,
    /// Optional result cap.
    pub limit: Option<usize>,
}

impl AlbumSpec {
    /// Q1: content near a monument.
    pub fn near_monument(label: &str, lang: &str, radius_km: f64) -> AlbumSpec {
        AlbumSpec {
            monument_label: label.to_string(),
            label_lang: lang.to_string(),
            radius_km,
            friend_of: None,
            order_by_rating: false,
            limit: None,
        }
    }

    /// Q2: add the social filter ("created by users who are friends of
    /// user X").
    pub fn friends_of(mut self, user_name: &str) -> AlbumSpec {
        self.friend_of = Some(user_name.to_string());
        self
    }

    /// Q3: order by rating, best first.
    pub fn rated(mut self) -> AlbumSpec {
        self.order_by_rating = true;
        self
    }

    /// Caps the result list.
    pub fn limit(mut self, n: usize) -> AlbumSpec {
        self.limit = Some(n);
        self
    }

    /// Renders the SPARQL query (the paper's Q1/Q2/Q3 shapes).
    pub fn to_sparql(&self) -> String {
        let mut body = format!(
            r#"  ?monument rdfs:label "{label}"@{lang} .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
"#,
            label = self.monument_label.replace('"', "\\\""),
            lang = self.label_lang,
        );
        if let Some(user) = &self.friend_of {
            body.push_str(&format!(
                "  ?resource foaf:maker ?user .\n  ?friend foaf:name \"{}\" .\n  ?user foaf:knows ?friend .\n",
                user.replace('"', "\\\"")
            ));
        }
        if self.order_by_rating {
            body.push_str("  ?resource rev:rating ?points .\n");
        }
        body.push_str(&format!(
            "  FILTER( bif:st_intersects( ?location, ?sourceGEO, {} ) ) .\n",
            self.radius_km
        ));
        let mut query = format!("SELECT DISTINCT ?link WHERE {{\n{body}}}\n");
        if self.order_by_rating {
            query.push_str("ORDER BY DESC(?points)\n");
        }
        if let Some(limit) = self.limit {
            query.push_str(&format!("LIMIT {limit}\n"));
        }
        query
    }

    /// Executes against a store, returning media links in result order.
    pub fn execute(&self, store: &Store) -> Result<Vec<String>, PlatformError> {
        let results = lodify_sparql::execute(store, &self.to_sparql())?;
        Ok(results
            .column("link")
            .into_iter()
            .map(|t| t.lexical().to_string())
            .collect())
    }
}

/// The relational-technology baseline: same album semantics computed
/// with scans over the Coppermine tables. Needs the monument's point
/// handed in — the relational platform has no LOD to look it up in,
/// which is precisely the gap the paper's semanticization closes.
pub fn relational_baseline(
    db: &Database,
    monument: Point,
    radius_km: f64,
    friend_of_user_name: Option<&str>,
    order_by_rating: bool,
) -> Result<Vec<String>, PlatformError> {
    let pictures = db.table(cpg::PICTURES)?;
    let users = db.table(cpg::USERS)?;
    let friends = db.table(cpg::FRIENDS)?;
    let votes = db.table(cpg::VOTES)?;

    // Resolve the social filter to a set of allowed makers.
    let allowed_makers: Option<std::collections::BTreeSet<i64>> = match friend_of_user_name {
        None => None,
        Some(name) => {
            let target = users
                .select(|row| row[1].as_text() == Some(name))
                .map(|(uid, _)| uid)
                .next()
                .ok_or_else(|| PlatformError::NotFound(format!("user {name:?}")))?;
            Some(
                friends
                    .select(|row| row[2].as_int() == Some(target))
                    .filter_map(|(_, row)| row[1].as_int())
                    .collect(),
            )
        }
    };

    let mut hits: Vec<(i64, f64)> = Vec::new(); // (pid, avg rating)
    for (pid, row) in pictures.scan() {
        let (Some(lon), Some(lat)) = (row[6].as_real(), row[7].as_real()) else {
            continue;
        };
        let Ok(point) = Point::new(lon, lat) else {
            continue;
        };
        if point.distance_km(monument) > radius_km {
            continue;
        }
        if let Some(allowed) = &allowed_makers {
            let Some(owner) = row[2].as_int() else {
                continue;
            };
            if !allowed.contains(&owner) {
                continue;
            }
        }
        let ratings: Vec<f64> = votes
            .select(|v| v[1].as_int() == Some(pid))
            .filter_map(|(_, v)| v[3].as_real())
            .collect();
        if order_by_rating && ratings.is_empty() {
            // Q3's `?resource rev:rating ?points` pattern drops
            // unrated content; the baseline must match.
            continue;
        }
        let avg = if ratings.is_empty() {
            0.0
        } else {
            ratings.iter().sum::<f64>() / ratings.len() as f64
        };
        hits.push((pid, (avg * 100.0).round() / 100.0));
    }
    if order_by_rating {
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    Ok(hits
        .into_iter()
        .map(|(pid, _)| format!("http://beta.teamlife.it/media/{pid}.jpg"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use lodify_context::Gazetteer;
    use lodify_relational::WorkloadConfig;

    fn platform() -> Platform {
        Platform::bootstrap(WorkloadConfig {
            seed: 7,
            users: 20,
            pictures: 300,
            ..WorkloadConfig::default()
        })
        .unwrap()
    }

    fn mole_point() -> Point {
        let gaz = Gazetteer::global();
        gaz.poi("Mole_Antonelliana").unwrap().point(gaz)
    }

    #[test]
    fn q1_sparql_matches_relational_baseline() {
        let p = platform();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
        let mut semantic = spec.execute(p.store()).unwrap();
        let mut baseline = relational_baseline(p.db(), mole_point(), 0.3, None, false).unwrap();
        semantic.sort();
        baseline.sort();
        assert_eq!(semantic, baseline);
        assert!(!semantic.is_empty(), "workload puts pictures near the Mole");
    }

    #[test]
    fn q2_social_filter_restricts_q1() {
        let p = platform();
        let q1 = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3)
            .execute(p.store())
            .unwrap();
        // Pick a user name that exists.
        let users = p.db().table(lodify_relational::coppermine::USERS).unwrap();
        let some_user = users
            .scan()
            .next()
            .and_then(|(_, row)| row[1].as_text().map(str::to_string))
            .unwrap();
        let q2_spec =
            AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3).friends_of(&some_user);
        let mut q2 = q2_spec.execute(p.store()).unwrap();
        assert!(q2.len() <= q1.len());
        let mut baseline =
            relational_baseline(p.db(), mole_point(), 0.3, Some(&some_user), false).unwrap();
        q2.sort();
        baseline.sort();
        assert_eq!(q2, baseline);
    }

    #[test]
    fn q3_orders_by_rating_and_matches_baseline_membership() {
        let p = platform();
        let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.5).rated();
        let semantic = spec.execute(p.store()).unwrap();
        let baseline = relational_baseline(p.db(), mole_point(), 0.5, None, true).unwrap();
        let mut a = semantic.clone();
        let mut b = baseline.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same membership");
        // Ratings are non-increasing along the semantic result.
        let ratings: Vec<f64> = semantic
            .iter()
            .map(|link| {
                let q = format!(
                    "SELECT ?r ?p WHERE {{ ?p comm:image-data <{link}> . ?p rev:rating ?r . }}"
                );
                let res = lodify_sparql::execute(p.store(), &q).unwrap();
                res.column("r")[0].lexical().parse::<f64>().unwrap()
            })
            .collect();
        assert!(
            ratings.windows(2).all(|w| w[0] >= w[1]),
            "not sorted: {ratings:?}"
        );
    }

    #[test]
    fn radius_widening_is_monotone() {
        let p = platform();
        let near = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.1)
            .execute(p.store())
            .unwrap();
        let wide = AlbumSpec::near_monument("Mole Antonelliana", "it", 5.0)
            .execute(p.store())
            .unwrap();
        assert!(near.len() <= wide.len());
    }

    #[test]
    fn limit_caps_results() {
        let p = platform();
        let capped = AlbumSpec::near_monument("Mole Antonelliana", "it", 5.0)
            .limit(2)
            .execute(p.store())
            .unwrap();
        assert!(capped.len() <= 2);
    }

    #[test]
    fn unknown_monument_is_empty_not_error() {
        let p = platform();
        let results = AlbumSpec::near_monument("Nonexistent Monument", "it", 0.3)
            .execute(p.store())
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn baseline_unknown_user_is_error() {
        let p = platform();
        assert!(matches!(
            relational_baseline(p.db(), mole_point(), 0.3, Some("nobody"), false),
            Err(PlatformError::NotFound(_))
        ));
    }
}
