//! Acceptance tests for the concurrent annotation pipeline:
//! batched-parallel ingest must be **byte-identical** to sequential
//! ingest — same receipts, same N-Triples export, same recovered
//! state after a crash — and the semantic-resolution cache must never
//! change an answer, only skip redundant broker fan-outs.

use lodify_core::deferred::UploadQueue;
use lodify_core::ingest::IngestPool;
use lodify_core::platform::{Platform, Upload};
use lodify_durability::{DurabilityOptions, DurableStore, MemStorage, Storage};
use lodify_relational::WorkloadConfig;

/// A deterministic mixed batch: annotation-rich titles (gazetteer
/// POIs and cities, several repeated so the cache has something to
/// reuse), out-of-order timestamps, GPS on some items, and one
/// invalid upload (no title, no tags) to exercise failure routing.
fn batch() -> Vec<Upload> {
    let gaz = lodify_context::Gazetteer::global();
    let mole = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
    let mut uploads = Vec::new();
    let titles = [
        "Tramonto alla Mole",
        "Juventus match day",
        "Torino by night",
        "Tramonto alla Mole", // repeat: cache-warm candidate
        "Walking around Milan",
        "Torino by night", // repeat
        "Juventus match day",
        "Tramonto alla Mole",
    ];
    for (i, title) in titles.iter().enumerate() {
        uploads.push(Upload {
            user_id: 1,
            // Descending timestamps: the pipeline must re-sort.
            ts: 1_320_600_000 - (i as i64) * 1_000,
            title: title.to_string(),
            tags: vec!["torino".into()],
            gps: (i % 2 == 0).then_some(mole),
            poi: None,
        });
    }
    uploads.push(Upload {
        user_id: 1,
        ts: 1_320_550_500,
        title: String::new(), // invalid: no title, no tags
        tags: vec![],
        gps: None,
        poi: None,
    });
    uploads
}

fn durable_platform(seed: u64) -> (Platform, MemStorage) {
    let storage = MemStorage::new();
    let (platform, report) = Platform::bootstrap_durable(
        WorkloadConfig::small(seed),
        Box::new(storage.clone()),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert!(!report.recovered);
    (platform, storage)
}

/// Every file in a `MemStorage`, fully read (durable + volatile
/// bytes), for journal-level byte comparison.
fn journal_bytes(storage: &MemStorage) -> Vec<(String, Vec<u8>)> {
    let mut names = storage.list();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let bytes = storage.read(&n).unwrap();
            (n, bytes)
        })
        .collect()
}

#[test]
fn batched_ingest_is_byte_identical_to_sequential() {
    let (mut sequential, seq_storage) = durable_platform(41);
    let (mut batched, batch_storage) = durable_platform(41);

    // Sequential twin: one upload at a time, in capture-timestamp
    // order (what the pool guarantees for the batch).
    let mut uploads = batch();
    uploads.sort_by_key(|u| u.ts);
    let mut seq_receipts = Vec::new();
    let mut seq_failures = 0;
    for upload in uploads {
        match sequential.upload(upload) {
            Ok(r) => seq_receipts.push(r),
            Err(_) => seq_failures += 1,
        }
    }

    // Batched twin: the scrambled batch through a 4-worker pool.
    let report = IngestPool::new(4).ingest(&mut batched, batch());
    assert_eq!(report.failures.len(), seq_failures);
    assert_eq!(report.failures[0].0, 8, "the invalid upload, input index");
    assert!(report.flush_error.is_none());

    // Receipts byte-identical, in the same (capture) order.
    assert_eq!(report.receipts, seq_receipts);
    // The cache had repeats to reuse within the batch.
    assert!(batched.semantic_cache_stats().hits > 0);

    // Store state byte-identical.
    assert_eq!(
        batched.store().export_ntriples(None),
        sequential.store().export_ntriples(None)
    );

    // Journal byte-identical — same WAL records in the same order —
    // and the recovered store after a crash matches too.
    sequential.flush_store().unwrap();
    batched.flush_store().unwrap();
    assert_eq!(journal_bytes(&seq_storage), journal_bytes(&batch_storage));
    drop(sequential);
    drop(batched);
    seq_storage.crash();
    batch_storage.crash();
    let (rec_seq, r1) =
        DurableStore::open(Box::new(seq_storage), DurabilityOptions::default()).unwrap();
    let (rec_batch, r2) =
        DurableStore::open(Box::new(batch_storage), DurabilityOptions::default()).unwrap();
    assert!(r1.recovered && r2.recovered);
    assert_eq!(
        rec_batch.store().export_ntriples(None),
        rec_seq.store().export_ntriples(None)
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let mut one = Platform::bootstrap(WorkloadConfig::small(42)).unwrap();
    let mut four = Platform::bootstrap(WorkloadConfig::small(42)).unwrap();
    let mut inline = Platform::bootstrap(WorkloadConfig::small(42)).unwrap();

    let a = IngestPool::new(1).ingest(&mut one, batch());
    let b = IngestPool::new(4).ingest(&mut four, batch());
    let c = IngestPool::new(4)
        .with_spawn_threads(false)
        .ingest(&mut inline, batch());

    assert_eq!(a.receipts, b.receipts);
    assert_eq!(a.receipts, c.receipts);
    assert_eq!(
        one.store().export_ntriples(None),
        four.store().export_ntriples(None)
    );
    assert_eq!(
        one.store().export_ntriples(None),
        inline.store().export_ntriples(None)
    );
}

#[test]
fn cache_warm_batches_reuse_resolutions_and_commits_invalidate() {
    let mut platform = Platform::bootstrap(WorkloadConfig::small(43)).unwrap();
    let pool = IngestPool::new(2);

    // First batch: the whole annotation phase runs at one store
    // epoch, so repeated terms hit the cache after the first miss.
    let first = pool.ingest(&mut platform, batch());
    assert_eq!(first.failures.len(), 1);
    let warm = platform.semantic_cache_stats();
    assert!(warm.hits > 0, "repeats within the batch hit");
    assert!(warm.entries > 0);

    // Every commit bumped the store epoch, so a second batch with the
    // same terms must re-resolve (epoch-stale entries are invalidated
    // on lookup), not serve pre-commit answers.
    let resolved_before = platform.semantic_cache_stats().misses;
    let second = pool.ingest(&mut platform, batch());
    assert_eq!(second.failures.len(), 1);
    let stats = platform.semantic_cache_stats();
    assert!(stats.invalidations > 0, "stale entries evicted on lookup");
    assert!(stats.misses > resolved_before, "re-resolved after commits");

    // Same uploads, later pids: receipts differ only in pid/resource.
    assert_eq!(first.receipts.len(), second.receipts.len());
    for (a, b) in first.receipts.iter().zip(&second.receipts) {
        assert_eq!(a.context_tags, b.context_tags);
        assert_eq!(a.auto_annotations, b.auto_annotations);
    }
}

#[test]
fn deferred_flush_through_the_pool_keeps_queue_semantics() {
    let mut serial = Platform::bootstrap(WorkloadConfig::small(44)).unwrap();
    let mut pooled = Platform::bootstrap(WorkloadConfig::small(44)).unwrap();

    // Serial twin: upload the valid items directly, in ts order.
    let mut uploads = batch();
    uploads.sort_by_key(|u| u.ts);
    let mut expected = Vec::new();
    for upload in uploads {
        if let Ok(r) = serial.upload(upload) {
            expected.push(r);
        }
    }

    // Queue twin: capture everything offline, then flush.
    let mut queue = UploadQueue::new();
    for upload in batch() {
        queue.capture(&mut pooled, upload).unwrap();
    }
    queue.set_online(true);
    let report = queue.flush(&mut pooled);
    assert_eq!(report.receipts, expected);
    assert_eq!(report.retried.len(), 1, "invalid upload re-enqueued");
    assert_eq!(report.retried[0].0, 1_320_550_500);
    assert_eq!(queue.pending(), 1);
    assert_eq!(
        pooled.store().export_ntriples(None),
        serial.store().export_ntriples(None)
    );

    // Two more failing flushes exhaust the attempt cap.
    let report = queue.flush(&mut pooled);
    assert_eq!(report.retried.len(), 1);
    let report = queue.flush(&mut pooled);
    assert_eq!(report.abandoned.len(), 1);
    assert_eq!(report.abandoned[0].attempts, 3);
    assert_eq!(queue.pending(), 0);
}

#[test]
fn resolver_outage_mid_batch_opens_breaker_and_skips_caching() {
    use lodify_lod::annotator::{Annotator, AnnotatorConfig};
    use lodify_lod::resolvers::{DbpediaResolver, FaultInjectedResolver, GeonamesResolver};
    use lodify_lod::{BrokerResilienceConfig, SemanticBroker, SemanticFilter};
    use lodify_resilience::{BreakerState, FaultPlan, VirtualClock};

    let mut platform = Platform::bootstrap(WorkloadConfig::small(45)).unwrap();
    let clock = VirtualClock::new();
    let plan = FaultPlan::builder()
        .outage("resolver:geonames", 0, 5_000)
        .build(clock.clone());
    platform.set_annotator(Annotator::new(
        SemanticBroker::new(vec![
            Box::new(DbpediaResolver),
            Box::new(FaultInjectedResolver::new(GeonamesResolver, plan)),
        ])
        .with_resilience(clock.clone(), BrokerResilienceConfig::default()),
        SemanticFilter::standard(),
        AnnotatorConfig::default(),
    ));

    // Mid-outage batch: geonames fails, its breaker opens, later
    // terms in the batch are skipped — but no upload fails, and no
    // degraded fan-out may be cached (it would outlive the outage).
    let report = IngestPool::new(4).ingest(&mut platform, batch());
    assert_eq!(report.failures.len(), 1, "only the invalid upload");
    let snapshot = platform.ops_snapshot();
    let geonames = snapshot
        .resolvers
        .iter()
        .find(|r| r.name == "geonames")
        .unwrap();
    assert_eq!(geonames.breaker, Some(BreakerState::Open));
    assert!(geonames.failures > 0, "outage was observed");
    assert!(geonames.skipped > 0, "breaker short-circuited mid-batch");
    assert_eq!(
        platform.semantic_cache_stats().entries,
        0,
        "degraded resolutions are never admitted"
    );

    // After the outage and breaker cooldown, the same batch resolves
    // fully and the cache warms.
    clock.set(120_000);
    let report = IngestPool::new(4).ingest(&mut platform, batch());
    assert_eq!(report.failures.len(), 1);
    let stats = platform.semantic_cache_stats();
    assert!(stats.entries > 0, "healthy resolutions are cached again");
    assert!(stats.hits > 0, "repeats in the recovered batch hit");
}
