//! Golden tests for the `/trace/<id>` route and trace assembly: the
//! rendered span tree is a contract (operators paste trace ids from
//! `X-Trace-Id` headers and `/metrics` exemplars into it), so its
//! exact shape is pinned here under a virtual clock.

use std::sync::Arc;

use lodify_context::Gazetteer;
use lodify_core::albums::AlbumSpec;
use lodify_core::federation::Federation;
use lodify_core::platform::Platform;
use lodify_core::replication::{Replicator, SharePolicy};
use lodify_core::web::{handle_request, Request, Response};
use lodify_durability::MemStorage;
use lodify_obs::{Obs, TraceStore};
use lodify_rdf::{ns, Literal, Term, Triple};
use lodify_relational::WorkloadConfig;
use lodify_resilience::VirtualClock;

fn get(platform: &Platform, target: &str) -> Response {
    let request = Request::parse(&format!("GET {target} HTTP/1.1"), &[]).unwrap();
    handle_request(platform, &request)
}

#[test]
fn trace_route_serves_a_golden_request_tree() {
    let mut platform = Platform::bootstrap(WorkloadConfig::small(31)).unwrap();
    platform.set_observability(Obs::with_clock(Arc::new(VirtualClock::new())));

    let first = get(&platform, "/metrics");
    assert_eq!(first.status, 200);
    let trace_id = first.trace_id.expect("live tracing assigns a trace id");

    // The client pastes the X-Trace-Id value straight into /trace/.
    let resp = get(&platform, &format!("/trace/{trace_id:016x}"));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "text/plain; charset=utf-8");
    assert_eq!(
        resp.body,
        format!("trace {trace_id:016x} (1 spans, 1 nodes)\n  web.request 0us\n")
    );

    // The response carries its own trace id too, distinct per request.
    let second = resp.trace_id.expect("every traced request gets an id");
    assert_ne!(second, trace_id);

    // The tail of the web.request histogram links back to a trace:
    // the last traced observation lands as an OpenMetrics exemplar.
    let metrics = get(&platform, "/metrics");
    let exemplar = format!("# {{trace_id=\"{second:016x}\"}}");
    assert!(
        metrics.body.contains(&exemplar),
        "missing exemplar {exemplar} in:\n{}",
        metrics.body
    );
}

#[test]
fn trace_route_rejects_garbage_and_unknown_ids() {
    let mut platform = Platform::bootstrap(WorkloadConfig::small(31)).unwrap();
    platform.set_observability(Obs::with_clock(Arc::new(VirtualClock::new())));

    assert_eq!(get(&platform, "/trace/not-hex").status, 400);
    assert_eq!(get(&platform, "/trace/00000000000000aa").status, 404);
}

#[test]
fn replication_chain_renders_a_golden_cross_node_tree() {
    let clock = Arc::new(VirtualClock::new());
    let traces = TraceStore::new(64);
    let mut origin_obs = Obs::with_clock(clock.clone());
    origin_obs.set_trace_store(traces.clone());
    origin_obs.set_node(1, "node0");
    let mut replica_obs = Obs::with_clock(clock);
    replica_obs.set_trace_store(traces.clone());
    replica_obs.set_node(2, "node1");

    let mut fed = Federation::new();
    let n0 = fed.add_node("node0.example").unwrap();
    let n1 = fed.add_node("node1.example").unwrap();
    let oscar = fed.register_user(n0, "oscar", "Oscar").unwrap();
    let mut repl = Replicator::new();
    repl.attach(&fed, n0, Box::new(MemStorage::new())).unwrap();
    repl.attach(&fed, n1, Box::new(MemStorage::new())).unwrap();
    repl.subscribe(n0, n1, SharePolicy::Everything).unwrap();
    repl.set_observability(&origin_obs);

    // A near-monument album standing on the replica with one push
    // subscriber: the commit's delta drives a push on node1.
    let gaz = Gazetteer::global();
    let mole = gaz.poi("Mole_Antonelliana").unwrap().point(gaz);
    let monument = "http://dbpedia.org/resource/Mole_Antonelliana";
    fed.import_reference(
        n1,
        &[
            Triple::spo(
                monument,
                ns::iri::rdfs_label().as_str(),
                Term::Literal(Literal::lang("Mole Antonelliana", "it").unwrap()),
            ),
            Triple::spo(
                monument,
                ns::iri::geo_geometry().as_str(),
                Term::Literal(mole.to_literal()),
            ),
        ],
    )
    .unwrap();
    let spec = AlbumSpec::near_monument("Mole Antonelliana", "it", 1.0);
    fed.live_subscribe(n0, n1, &spec).unwrap();
    fed.live_hub_mut(n1)
        .unwrap()
        .set_observability(&replica_obs);

    fed.publish_picture(&oscar, "Mole at dusk", mole.offset_km(0.05, 0.0), 1000)
        .unwrap();
    repl.commit(&mut fed, &oscar, None).unwrap();
    assert!(repl.converged());

    let trace_id = repl.emission_log(n0).unwrap()[0]
        .trace
        .expect("committed emission is traced")
        .trace_id;
    assert!(traces.well_nested(trace_id));
    // The whole causal chain — commit on the origin, shipment, apply
    // on the replica, and the push the applied delta provoked — is one
    // tree, exactly what `/trace/<id>` serves.
    assert_eq!(
        traces.render(trace_id).unwrap(),
        format!(
            "trace {trace_id:016x} (4 spans, 2 nodes)\n\
             \x20 replication.commit 0us @node0\n\
             \x20   replication.ship 0us @node0\n\
             \x20   replication.apply 0us @node0\n\
             \x20     live.push 0us @node1\n"
        )
    );
}
