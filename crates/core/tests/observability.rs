//! End-to-end observability acceptance test: a durable platform with a
//! federation wired into the same metrics registry, driven through the
//! web routes, must expose series for **every** pipeline layer on
//! `/metrics` — upload stages, SPARQL evaluation, WAL flushes, the
//! album cache, and federation delivery — plus traces and the access
//! log on `/ops`.

use lodify_core::federation::Federation;
use lodify_core::platform::{Platform, Upload};
use lodify_core::web::{handle_request, Request};
use lodify_durability::{DurabilityOptions, MemStorage};
use lodify_relational::WorkloadConfig;

fn get(platform: &Platform, target: &str) -> lodify_core::web::Response {
    let request = Request::parse(&format!("GET {target} HTTP/1.1"), &[]).unwrap();
    handle_request(platform, &request)
}

#[test]
fn metrics_cover_every_pipeline_layer() {
    let (mut platform, report) = Platform::bootstrap_durable(
        WorkloadConfig::small(31),
        Box::new(MemStorage::new()),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert!(!report.recovered, "fresh storage adopts the seed");

    // A federation sharing the platform's metrics registry: delivery
    // latencies land in the same exposition.
    let mut federation = Federation::new();
    federation.set_observability(platform.obs().metrics().clone());
    let n0 = federation.add_node("home.example").unwrap();
    let n1 = federation.add_node("remote.example").unwrap();
    let publisher = federation.register_user(n0, "alice", "Alice").unwrap();
    let follower = federation.register_user(n1, "bob", "Bob").unwrap();
    federation.subscribe(n1, &follower, &publisher).unwrap();
    federation
        .publish(&publisher, "federated sunset", 1_320_500_000)
        .unwrap();

    // Drive every layer: an upload (relational → semanticize → context
    // → annotate stages + WAL records), a SPARQL query, an album view,
    // and an explicit durability barrier.
    let gaz = lodify_context::Gazetteer::global();
    let mole = gaz.poi("Mole_Antonelliana").unwrap();
    platform
        .upload(Upload {
            user_id: 1,
            title: "Tramonto alla Mole".into(),
            tags: vec!["torino".into()],
            ts: 1_320_500_000,
            gps: Some(mole.point(gaz)),
            poi: None,
        })
        .unwrap();
    platform
        .query("SELECT ?s WHERE { ?s a sioct:MicroblogPost . } LIMIT 3")
        .unwrap();
    platform.flush_store().unwrap();
    let album = get(
        &platform,
        "/album?monument=Mole+Antonelliana&lang=it&radius=0.3",
    );
    assert_eq!(album.status, 200);

    let resp = get(&platform, "/metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, lodify_obs::prometheus::CONTENT_TYPE);
    // One series per layer, as the acceptance criteria demand.
    for series in [
        // upload pipeline stages
        "lodify_upload_seconds_count 1",
        "lodify_upload_relational_seconds_count 1",
        "lodify_upload_semanticize_seconds_count 1",
        "lodify_upload_context_seconds_count 1",
        "lodify_upload_annotate_seconds_count 1",
        "lodify_upload_record_seconds_count 1",
        // SPARQL execution: the explicit query plus the /album cache
        // miss, whose solve routes through the instrumented path too
        "lodify_sparql_queries_total 2",
        "lodify_sparql_parse_seconds_count 2",
        "lodify_sparql_eval_seconds_count 2",
        // durability: the upload journals records, flush_store forces
        // the barrier, and the gauge refresh publishes WAL depth
        "lodify_wal_flush_seconds_count",
        "lodify_wal_pending 0",
        // album cache
        "lodify_album_view_seconds_count 1",
        "lodify_album_cache_misses_total 1",
        // federation delivery
        "lodify_federation_deliveries_total 1",
        "lodify_federation_deliver_seconds_count 1",
        // web layer
        "lodify_web_request_seconds_count",
    ] {
        assert!(
            resp.body.contains(series),
            "missing series {series:?} in:\n{}",
            resp.body
        );
    }

    // /ops shows the same world: healthy status, traces for the upload
    // and query, and the access log with the ids handed out above.
    let ops = get(&platform, "/ops");
    assert_eq!(ops.status, 200);
    assert!(ops.body.contains("status: healthy"), "{}", ops.body);
    assert!(ops.body.contains("upload.semanticize"), "{}", ops.body);
    assert!(ops.body.contains("sparql.eval"), "{}", ops.body);
    assert!(ops.body.contains("durability  gen="), "{}", ops.body);
    assert!(
        ops.body.contains("GET") || ops.body.contains("/album"),
        "{}",
        ops.body
    );

    // Request ids were issued monotonically across the three routed
    // requests and each landed in the access log.
    let log = platform.obs().access_log().recent(8);
    assert_eq!(log.len(), 3);
    assert!(log.windows(2).all(|w| w[0].request_id < w[1].request_id));
}

#[test]
fn disabling_observability_silences_the_exposition() {
    let platform = Platform::bootstrap(WorkloadConfig::small(24)).unwrap();
    platform.obs().set_enabled(false);
    platform
        .query("SELECT ?s WHERE { ?s a sioct:MicroblogPost . } LIMIT 1")
        .unwrap();
    assert_eq!(platform.obs().metrics().counter("sparql.queries"), 0);
    assert!(platform.obs().tracer().recent_spans(8).is_empty());

    platform.obs().set_enabled(true);
    platform
        .query("SELECT ?s WHERE { ?s a sioct:MicroblogPost . } LIMIT 1")
        .unwrap();
    assert_eq!(platform.obs().metrics().counter("sparql.queries"), 1);
    assert!(!platform.obs().tracer().recent_spans(8).is_empty());
}
