//! Tag-facet index: the pre-semantic virtual albums.
//!
//! "Tagged pictures and videos are organized in virtual albums
//! generated dynamically. These tag-based collections exploit triple
//! tags to organize content: it is therefore possible to filter
//! user-generated pictures by each triple tag namespace, predicate or
//! value" (§1.1). The index answers exactly those three facet shapes
//! plus plain-keyword lookup.

use std::collections::{BTreeMap, BTreeSet};

use crate::tag::{Tag, TripleTag};

/// Content identifier (the platform's picture id).
pub type ContentId = i64;

/// Inverted indexes over tags.
#[derive(Debug, Default)]
pub struct TagIndex {
    by_plain: BTreeMap<String, BTreeSet<ContentId>>,
    by_namespace: BTreeMap<String, BTreeSet<ContentId>>,
    by_ns_pred: BTreeMap<(String, String), BTreeSet<ContentId>>,
    by_full: BTreeMap<(String, String, String), BTreeSet<ContentId>>,
    tags_of: BTreeMap<ContentId, Vec<Tag>>,
}

impl TagIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one tag for a content item. Plain keywords are
    /// lowercased (folksonomy matching is case-insensitive); triple-tag
    /// values are matched exactly.
    pub fn insert(&mut self, content: ContentId, tag: Tag) {
        match &tag {
            Tag::Plain(word) => {
                self.by_plain
                    .entry(word.to_lowercase())
                    .or_default()
                    .insert(content);
            }
            Tag::Triple(t) => {
                self.by_namespace
                    .entry(t.namespace.clone())
                    .or_default()
                    .insert(content);
                self.by_ns_pred
                    .entry((t.namespace.clone(), t.predicate.clone()))
                    .or_default()
                    .insert(content);
                self.by_full
                    .entry((t.namespace.clone(), t.predicate.clone(), t.value.clone()))
                    .or_default()
                    .insert(content);
            }
        }
        self.tags_of.entry(content).or_default().push(tag);
    }

    /// Content carrying any tag in `namespace` (facet level 1).
    pub fn by_namespace(&self, namespace: &str) -> Vec<ContentId> {
        self.by_namespace
            .get(namespace)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Content carrying `namespace:predicate=*` (facet level 2).
    pub fn by_predicate(&self, namespace: &str, predicate: &str) -> Vec<ContentId> {
        self.by_ns_pred
            .get(&(namespace.to_string(), predicate.to_string()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Content carrying the exact triple tag (facet level 3) — e.g.
    /// all pictures with `people:fn=Walter+Goix`.
    pub fn by_value(&self, tag: &TripleTag) -> Vec<ContentId> {
        self.by_full
            .get(&(
                tag.namespace.clone(),
                tag.predicate.clone(),
                tag.value.clone(),
            ))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Content carrying a plain keyword (case-insensitive).
    pub fn by_keyword(&self, word: &str) -> Vec<ContentId> {
        self.by_plain
            .get(&word.to_lowercase())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Content carrying **all** the given plain keywords.
    pub fn by_keywords_all(&self, words: &[&str]) -> Vec<ContentId> {
        let mut iter = words.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut acc: BTreeSet<ContentId> = self.by_keyword(first).into_iter().collect();
        for word in iter {
            let next: BTreeSet<ContentId> = self.by_keyword(word).into_iter().collect();
            acc = acc.intersection(&next).copied().collect();
            if acc.is_empty() {
                break;
            }
        }
        acc.into_iter().collect()
    }

    /// All tags attached to a content item, in insertion order.
    pub fn tags_of(&self, content: ContentId) -> &[Tag] {
        self.tags_of.get(&content).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct values under a `namespace:predicate` facet — what the
    /// platform GUI shows as album choices ("context tags are displayed
    /// in a friendly format").
    pub fn facet_values(&self, namespace: &str, predicate: &str) -> Vec<(&str, usize)> {
        self.by_full
            .range(
                (namespace.to_string(), predicate.to_string(), String::new())
                    ..(
                        namespace.to_string(),
                        format!("{predicate}\u{10FFFF}"),
                        String::new(),
                    ),
            )
            .filter(|((_, p, _), _)| p == predicate)
            .map(|((_, _, value), contents)| (value.as_str(), contents.len()))
            .collect()
    }

    /// Number of indexed content items.
    pub fn len(&self) -> usize {
        self.tags_of.len()
    }

    /// True when no content is indexed.
    pub fn is_empty(&self) -> bool {
        self.tags_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TagIndex {
        let mut idx = TagIndex::new();
        let tt = |s: &str| Tag::Triple(TripleTag::parse(s).unwrap());
        idx.insert(1, Tag::Plain("Sunset".into()));
        idx.insert(1, tt("people:fn=Walter+Goix"));
        idx.insert(1, tt("address:city=Turin"));
        idx.insert(2, tt("people:fn=Walter+Goix"));
        idx.insert(2, tt("place:is=crowded"));
        idx.insert(3, tt("people:fn=Carmen+Criminisi"));
        idx.insert(3, Tag::Plain("sunset".into()));
        idx.insert(3, Tag::Plain("beach".into()));
        idx
    }

    #[test]
    fn facet_levels() {
        let idx = index();
        assert_eq!(idx.by_namespace("people"), vec![1, 2, 3]);
        assert_eq!(idx.by_predicate("people", "fn"), vec![1, 2, 3]);
        assert_eq!(
            idx.by_value(&TripleTag::parse("people:fn=Walter+Goix").unwrap()),
            vec![1, 2]
        );
        assert!(idx.by_namespace("nothing").is_empty());
    }

    #[test]
    fn keyword_search_is_case_insensitive() {
        let idx = index();
        assert_eq!(idx.by_keyword("SUNSET"), vec![1, 3]);
        assert_eq!(idx.by_keywords_all(&["sunset", "beach"]), vec![3]);
        assert!(idx.by_keywords_all(&["sunset", "mountain"]).is_empty());
        assert!(idx.by_keywords_all(&[]).is_empty());
    }

    #[test]
    fn facet_values_enumerates_album_choices() {
        let idx = index();
        let values = idx.facet_values("people", "fn");
        assert_eq!(values, vec![("Carmen Criminisi", 1), ("Walter Goix", 2)]);
    }

    #[test]
    fn tags_of_preserves_order() {
        let idx = index();
        let tags = idx.tags_of(1);
        assert_eq!(tags.len(), 3);
        assert_eq!(tags[0], Tag::Plain("Sunset".into()));
        assert!(idx.tags_of(99).is_empty());
    }
}
