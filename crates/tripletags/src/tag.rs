//! Machine-tag parsing and formatting.

use std::fmt;

/// A triple tag: `namespace:predicate=value`.
///
/// Values are stored decoded; the wire form plus-encodes spaces
/// (`people:fn=Walter+Goix`), matching the paper's examples.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleTag {
    /// Namespace (e.g. `people`).
    pub namespace: String,
    /// Predicate (e.g. `fn`).
    pub predicate: String,
    /// Decoded value (e.g. `Walter Goix`).
    pub value: String,
}

impl TripleTag {
    /// Creates a tag; namespace and predicate must be non-empty
    /// identifiers (`[a-z0-9_]+`), values non-empty.
    pub fn new(namespace: &str, predicate: &str, value: &str) -> Result<TripleTag, String> {
        let ident_ok = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        };
        if !ident_ok(namespace) {
            return Err(format!("bad triple tag namespace {namespace:?}"));
        }
        if !ident_ok(predicate) {
            return Err(format!("bad triple tag predicate {predicate:?}"));
        }
        if value.is_empty() {
            return Err("empty triple tag value".to_string());
        }
        Ok(TripleTag {
            namespace: namespace.to_string(),
            predicate: predicate.to_string(),
            value: value.to_string(),
        })
    }

    /// Parses the wire form `ns:pred=encoded+value`.
    pub fn parse(text: &str) -> Result<TripleTag, String> {
        let (head, raw_value) = text
            .split_once('=')
            .ok_or_else(|| format!("not a triple tag (no '='): {text:?}"))?;
        let (ns, pred) = head
            .split_once(':')
            .ok_or_else(|| format!("not a triple tag (no ':'): {text:?}"))?;
        TripleTag::new(ns, pred, &decode_value(raw_value))
    }

    /// The wire form with plus-encoded value.
    pub fn to_wire(&self) -> String {
        format!(
            "{}:{}={}",
            self.namespace,
            self.predicate,
            encode_value(&self.value)
        )
    }
}

impl fmt::Display for TripleTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

/// A tag as attached to content: either a plain folksonomy keyword or
/// a machine tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// Free-form user keyword.
    Plain(String),
    /// Machine tag.
    Triple(TripleTag),
}

impl Tag {
    /// Parses either form; anything that doesn't parse as a triple tag
    /// is a plain keyword ("wild-free vocabulary", §1.2).
    pub fn parse(text: &str) -> Tag {
        match TripleTag::parse(text) {
            Ok(tt) => Tag::Triple(tt),
            Err(_) => Tag::Plain(text.to_string()),
        }
    }

    /// The machine tag, if this is one.
    pub fn as_triple(&self) -> Option<&TripleTag> {
        match self {
            Tag::Triple(t) => Some(t),
            Tag::Plain(_) => None,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::Plain(s) => f.write_str(s),
            Tag::Triple(t) => t.fmt(f),
        }
    }
}

/// Plus-encodes spaces and percent-encodes the reserved characters.
pub fn encode_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            ' ' => out.push('+'),
            '+' => out.push_str("%2B"),
            '%' => out.push_str("%25"),
            '=' => out.push_str("%3D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`encode_value`]; malformed escapes pass through verbatim.
pub fn decode_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '+' => {
                out.push(' ');
                i += 1;
            }
            '%' if i + 2 < chars.len() => {
                let hex: String = chars[i + 1..i + 3].iter().collect();
                if let Ok(byte) = u8::from_str_radix(&hex, 16) {
                    out.push(byte as char);
                    i += 3;
                } else {
                    out.push('%');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        let t = TripleTag::parse("people:fn=Walter+Goix").unwrap();
        assert_eq!(t, TripleTag::new("people", "fn", "Walter Goix").unwrap());
        let t = TripleTag::parse("cell:cgi=460-0-9522-3661").unwrap();
        assert_eq!(t.value, "460-0-9522-3661");
        let t = TripleTag::parse("place:is=crowded").unwrap();
        assert_eq!(
            (t.namespace.as_str(), t.predicate.as_str()),
            ("place", "is")
        );
        let t = TripleTag::parse("poi:recs_id=72").unwrap();
        assert_eq!(t.value, "72");
    }

    #[test]
    fn wire_round_trip() {
        for original in [
            TripleTag::new("people", "fn", "Walter Goix").unwrap(),
            TripleTag::new("place", "is", "a+b=c%d").unwrap(),
            TripleTag::new("address", "city", "Torino").unwrap(),
        ] {
            let reparsed = TripleTag::parse(&original.to_wire()).unwrap();
            assert_eq!(reparsed, original, "wire form {}", original.to_wire());
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(TripleTag::parse("plainword").is_err());
        assert!(TripleTag::parse("noequals:here").is_err());
        assert!(TripleTag::parse("UPPER:pred=v").is_err());
        assert!(TripleTag::parse(":pred=v").is_err());
        assert!(TripleTag::parse("ns:=v").is_err());
        assert!(TripleTag::parse("ns:pred=").is_err());
    }

    #[test]
    fn tag_parse_falls_back_to_plain() {
        assert_eq!(Tag::parse("sunset"), Tag::Plain("sunset".into()));
        assert!(matches!(Tag::parse("geo:lat=45.07"), Tag::Triple(_)));
        assert_eq!(Tag::parse("sunset").as_triple(), None);
    }

    #[test]
    fn decode_handles_malformed_escapes() {
        assert_eq!(decode_value("a%ZZb"), "a%ZZb");
        assert_eq!(decode_value("100%"), "100%");
        assert_eq!(decode_value("a%2Bb"), "a+b");
    }
}
