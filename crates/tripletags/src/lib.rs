//! Triple tags — the platform's **pre-semantic** annotation system.
//!
//! Before the semantic migration, the paper's platform carried context
//! as *triple tags* (machine tags), `namespace:predicate=value`,
//! "generated according to a triple tags specification to carry a
//! semantic meaning" (§1.1), with brand-new namespaces (`address`,
//! `people`) next to the widely-used `geo` ones:
//!
//! * `people:fn=Walter+Goix` — nearby buddy full names;
//! * `cell:cgi=460-0-9522-3661` — serving GSM cell;
//! * `place:is=crowded` — user-defined place type;
//! * `poi:recs_id=72` — explicit POI reference;
//! * `address:city=Turin` — reverse-geocoded civil address;
//! * `geo:lat=… / geo:long=…` — raw coordinates.
//!
//! Tag-based virtual albums "exploit triple tags to organize content:
//! it is therefore possible to filter user-generated pictures by each
//! triple tag namespace, predicate or value". [`facets::TagIndex`]
//! implements exactly that facet model; the retrieval-quality
//! experiment (E8) uses it as the baseline the semantic system is
//! compared against.

#![warn(missing_docs)]

pub mod context_tags;
pub mod facets;
pub mod tag;

pub use facets::TagIndex;
pub use tag::{Tag, TripleTag};
