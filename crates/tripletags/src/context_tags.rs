//! Context-tag generation: [`ContextSnapshot`] → triple tags.
//!
//! Reproduces §1.1: "After being uploaded, each content is processed by
//! the platform, which adds the user's context tags", focused on
//! location plus nearby people, cell and place labels.

use lodify_context::ContextSnapshot;

use crate::tag::TripleTag;

/// Derives the platform's context triple tags from a snapshot.
pub fn tags_for(snapshot: &ContextSnapshot) -> Vec<TripleTag> {
    let mut tags = Vec::new();
    let tag = |ns: &str, pred: &str, value: &str| {
        TripleTag::new(ns, pred, value).expect("generated tags are well-formed")
    };

    if let Some(loc) = &snapshot.location {
        tags.push(tag("geo", "long", &format!("{:.5}", loc.point.lon)));
        tags.push(tag("geo", "lat", &format!("{:.5}", loc.point.lat)));
        tags.push(tag("address", "street", &loc.civic.street));
        tags.push(tag("address", "city", &loc.civic.city));
        tags.push(tag("address", "country", &loc.civic.country));
        tags.push(tag("geonames", "id", &loc.geonames_id.to_string()));
        if let Some(label) = &loc.place_label {
            tags.push(tag("place", "label", label));
        }
        if let Some(ty) = &loc.place_type {
            tags.push(tag("place", "is", ty));
        }
    }
    if let Some(cell) = &snapshot.cell {
        tags.push(tag("cell", "cgi", &cell.to_cgi()));
    }
    for buddy in &snapshot.nearby {
        tags.push(tag("people", "fn", &buddy.full_name));
        tags.push(tag("people", "user", &buddy.user_name));
    }
    for entry in &snapshot.calendar {
        tags.push(tag("calendar", "event", &entry.title));
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_context::ContextPlatform;
    use lodify_rdf::Point;

    fn snapshot() -> ContextSnapshot {
        let mut p = ContextPlatform::new();
        p.buddies_mut().add_user(1, "oscar", "Oscar Rodriguez");
        p.buddies_mut().add_user(2, "walter", "Walter Goix");
        p.buddies_mut().add_friend(1, 2);
        let here = Point::new(7.6933, 45.0692).unwrap();
        p.buddies_mut().update_position(2, here);
        p.calendars_mut()
            .add(1, "holiday in Turin", 0, 1000)
            .unwrap();
        p.add_place_label(1, here, "the big dome", Some("crowded"));
        p.contextualize(1, 100, Some(here))
    }

    #[test]
    fn full_snapshot_produces_all_namespaces() {
        let tags = tags_for(&snapshot());
        let find = |ns: &str, pred: &str| {
            tags.iter()
                .find(|t| t.namespace == ns && t.predicate == pred)
                .map(|t| t.value.as_str())
        };
        assert_eq!(find("address", "city"), Some("Turin"));
        assert_eq!(find("address", "country"), Some("Italy"));
        assert_eq!(find("people", "fn"), Some("Walter Goix"));
        assert_eq!(find("place", "is"), Some("crowded"));
        assert_eq!(find("place", "label"), Some("the big dome"));
        assert_eq!(find("calendar", "event"), Some("holiday in Turin"));
        assert!(find("cell", "cgi").is_some());
        assert!(find("geo", "lat").is_some());
        assert!(find("geonames", "id").is_some());
    }

    #[test]
    fn wire_forms_parse_back() {
        for t in tags_for(&snapshot()) {
            assert_eq!(TripleTag::parse(&t.to_wire()).unwrap(), t);
        }
    }

    #[test]
    fn gpsless_snapshot_only_has_calendar() {
        let mut p = ContextPlatform::new();
        p.buddies_mut().add_user(1, "oscar", "Oscar Rodriguez");
        p.calendars_mut().add(1, "meeting", 0, 1000).unwrap();
        let tags = tags_for(&p.contextualize(1, 100, None));
        assert!(tags.iter().all(|t| t.namespace == "calendar"));
        assert_eq!(tags.len(), 1);
    }
}
