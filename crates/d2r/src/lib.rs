//! D2R-style relational→RDF mapping.
//!
//! Reproduces §2.1 of the paper: "in a relational database, every table
//! has a primary key field, which is unique by definition, so it can be
//! used for constructing the URI of the resource described by this
//! table. For each resource, the information is stored in the other
//! columns of the table, so it was necessary to find an appropriate
//! predicate to construct a triple. … This URI and triple construction
//! procedure … can be easily made by means of the D2R server … we used
//! its dump-rdf feature to write a mapping file … which … allows the
//! creation of a semantic database dump in n-triple format."
//!
//! The pieces:
//!
//! * [`mapping`] — the declarative model: [`mapping::ClassMap`]s
//!   with URI templates, property bridges (column literals, FK
//!   references, space-separated keyword **splitting** per §2.1.1,
//!   lon/lat → WKT geometry, IRI templates, constants), join-table
//!   [`mapping::RelationMap`]s (e.g. friendships →
//!   `foaf:knows`) and [`mapping::AggregateMap`]s
//!   (per-picture vote average → `rev:rating`);
//! * [`dsl`] — a textual mapping-file format (parse + serialize), the
//!   analog of the D2R mapping file the paper authors wrote;
//! * [`dump`] — `dump_rdf`: walk the database, apply the mapping,
//!   produce triples / N-Triples with per-table statistics (E9);
//! * [`defaults`] — the full mapping for the Coppermine schema, which
//!   skips the service tables exactly as §2.1 prescribes.

#![warn(missing_docs)]

pub mod defaults;
pub mod dsl;
pub mod dump;
pub mod error;
pub mod mapping;

pub use dump::{dump_rdf, dump_to_ntriples, DumpStats};
pub use error::D2rError;
pub use mapping::{AggregateMap, Bridge, ClassMap, Mapping, RelationMap};
