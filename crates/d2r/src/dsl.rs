//! The mapping-file format.
//!
//! The paper's authors "use\[d\] its dump-rdf feature to write a mapping
//! file … which once completed, allows the creation of a semantic
//! database dump" (§2.1). This module provides the equivalent textual
//! artifact: a line-oriented format that round-trips through
//! [`parse`]/[`serialize`].
//!
//! ```text
//! prefix tl: <http://beta.teamlife.it/>
//!
//! map cpg148_pictures <http://beta.teamlife.it/cpg148_pictures/{pid}>
//!   type sioct:MicroblogPost
//!   col title -> rdfs:label
//!   ref owner_id -> foaf:maker cpg148_users
//!   split keywords -> tl:keyword sep=" "
//!   geom lon lat -> geo:geometry
//!   iri <http://beta.teamlife.it/{filepath}> -> comm:image-data
//!
//! rel cpg148_friends user_id cpg148_users foaf:knows buddy_id cpg148_users
//! agg cpg148_votes group=pid master=cpg148_pictures value=rating -> rev:rating
//! ```

use std::fmt::Write as _;

use lodify_rdf::ns::PrefixMap;
use lodify_rdf::{Iri, Term};

use crate::error::D2rError;
use crate::mapping::{AggregateMap, Bridge, ClassMap, Mapping, RelationMap};

/// Parses a mapping file. The default namespace table is pre-loaded;
/// `prefix` lines extend it.
pub fn parse(text: &str) -> Result<Mapping, D2rError> {
    let mut prefixes = PrefixMap::with_defaults();
    let mut mapping = Mapping::default();
    let mut current: Option<ClassMap> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| D2rError::Dsl {
            line: line_no,
            message,
        };
        let tokens = tokenize(line).map_err(&err)?;
        let head = tokens[0].as_str();
        match head {
            "prefix" => {
                // prefix tl: <http://...>
                let name = tokens
                    .get(1)
                    .and_then(|t| t.strip_suffix(':'))
                    .ok_or_else(|| err("expected `prefix name: <iri>`".into()))?;
                let iri = tokens
                    .get(2)
                    .and_then(|t| strip_angle(t))
                    .ok_or_else(|| err("expected <iri> after prefix name".into()))?;
                prefixes.insert(name, iri);
            }
            "map" => {
                if let Some(done) = current.take() {
                    mapping.class_maps.push(done);
                }
                let table = tokens
                    .get(1)
                    .ok_or_else(|| err("expected table name after `map`".into()))?
                    .clone();
                let template = tokens
                    .get(2)
                    .and_then(|t| strip_angle(t))
                    .ok_or_else(|| err("expected <uri template> after table".into()))?;
                current = Some(ClassMap {
                    table,
                    uri_template: template.to_string(),
                    class: None,
                    bridges: Vec::new(),
                });
            }
            "type" | "col" | "ref" | "split" | "geom" | "iri" | "const" => {
                let map = current
                    .as_mut()
                    .ok_or_else(|| err(format!("`{head}` outside a `map` block")))?;
                match head {
                    "type" => {
                        let iri = resolve_iri(tokens.get(1), &prefixes)
                            .ok_or_else(|| err("expected class IRI after `type`".into()))?;
                        map.class = Some(iri);
                    }
                    "col" => {
                        // col <column> -> <pred> [@lang]
                        expect_arrow(&tokens, 2).map_err(err)?;
                        let predicate = resolve_iri(tokens.get(3), &prefixes)
                            .ok_or_else(|| err("expected predicate after `->`".into()))?;
                        let lang = tokens
                            .get(4)
                            .and_then(|t| t.strip_prefix('@'))
                            .map(str::to_string);
                        map.bridges.push(Bridge::Column {
                            column: tokens[1].clone(),
                            predicate,
                            lang,
                        });
                    }
                    "ref" => {
                        expect_arrow(&tokens, 2).map_err(err)?;
                        let predicate = resolve_iri(tokens.get(3), &prefixes)
                            .ok_or_else(|| err("expected predicate after `->`".into()))?;
                        let target = tokens
                            .get(4)
                            .ok_or_else(|| err("expected target table".into()))?;
                        map.bridges.push(Bridge::Ref {
                            column: tokens[1].clone(),
                            predicate,
                            target_table: target.clone(),
                        });
                    }
                    "split" => {
                        expect_arrow(&tokens, 2).map_err(err)?;
                        let predicate = resolve_iri(tokens.get(3), &prefixes)
                            .ok_or_else(|| err("expected predicate after `->`".into()))?;
                        let sep = tokens
                            .get(4)
                            .and_then(|t| t.strip_prefix("sep="))
                            .map(|s| s.trim_matches('"'))
                            .unwrap_or(" ");
                        let separator = sep.chars().next().unwrap_or(' ');
                        map.bridges.push(Bridge::Split {
                            column: tokens[1].clone(),
                            predicate,
                            separator,
                        });
                    }
                    "geom" => {
                        // geom lon lat -> geo:geometry
                        expect_arrow(&tokens, 3).map_err(err)?;
                        let predicate = resolve_iri(tokens.get(4), &prefixes)
                            .ok_or_else(|| err("expected predicate after `->`".into()))?;
                        map.bridges.push(Bridge::Geometry {
                            lon_column: tokens[1].clone(),
                            lat_column: tokens[2].clone(),
                            predicate,
                        });
                    }
                    "iri" => {
                        let template = strip_angle(&tokens[1])
                            .ok_or_else(|| err("expected <template> after `iri`".into()))?
                            .to_string();
                        expect_arrow(&tokens, 2).map_err(err)?;
                        let predicate = resolve_iri(tokens.get(3), &prefixes)
                            .ok_or_else(|| err("expected predicate after `->`".into()))?;
                        map.bridges.push(Bridge::TemplateIri {
                            template,
                            predicate,
                        });
                    }
                    "const" => {
                        // const <pred> <object: iri-or-"literal">
                        let predicate = resolve_iri(tokens.get(1), &prefixes)
                            .ok_or_else(|| err("expected predicate after `const`".into()))?;
                        let object_tok = tokens
                            .get(2)
                            .ok_or_else(|| err("expected object after predicate".into()))?;
                        let object = if let Some(text) = object_tok
                            .strip_prefix('"')
                            .and_then(|t| t.strip_suffix('"'))
                        {
                            Term::literal(text)
                        } else {
                            Term::Iri(resolve_iri(Some(object_tok), &prefixes).ok_or_else(
                                || err(format!("cannot resolve object {object_tok:?}")),
                            )?)
                        };
                        map.bridges.push(Bridge::Constant { predicate, object });
                    }
                    _ => unreachable!(),
                }
            }
            "rel" => {
                // rel <table> <s_col> <s_table> <pred> <o_col> <o_table>
                if tokens.len() != 7 {
                    return Err(err(
                        "expected `rel table s_col s_table pred o_col o_table`".into()
                    ));
                }
                let predicate = resolve_iri(Some(&tokens[4]), &prefixes)
                    .ok_or_else(|| err("cannot resolve relation predicate".into()))?;
                mapping.relation_maps.push(RelationMap {
                    table: tokens[1].clone(),
                    subject_column: tokens[2].clone(),
                    subject_table: tokens[3].clone(),
                    predicate,
                    object_column: tokens[5].clone(),
                    object_table: tokens[6].clone(),
                });
            }
            "agg" => {
                // agg <table> group=<col> master=<table> value=<col> -> <pred>
                let get_kv = |key: &str| {
                    tokens
                        .iter()
                        .find_map(|t| t.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
                };
                let table = tokens
                    .get(1)
                    .ok_or_else(|| err("expected table after `agg`".into()))?
                    .clone();
                let group = get_kv("group").ok_or_else(|| err("missing group=".into()))?;
                let master = get_kv("master").ok_or_else(|| err("missing master=".into()))?;
                let value = get_kv("value").ok_or_else(|| err("missing value=".into()))?;
                let arrow_pos = tokens
                    .iter()
                    .position(|t| t == "->")
                    .ok_or_else(|| err("missing `->` in agg".into()))?;
                let predicate = resolve_iri(tokens.get(arrow_pos + 1), &prefixes)
                    .ok_or_else(|| err("cannot resolve aggregate predicate".into()))?;
                mapping.aggregate_maps.push(AggregateMap {
                    table,
                    group_column: group.to_string(),
                    master_table: master.to_string(),
                    value_column: value.to_string(),
                    predicate,
                });
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    if let Some(done) = current.take() {
        mapping.class_maps.push(done);
    }
    Ok(mapping)
}

/// Serializes a mapping back to the file format (full IRIs are compacted
/// against the default namespace table where possible).
pub fn serialize(mapping: &Mapping) -> String {
    let prefixes = PrefixMap::with_defaults();
    let compact = |iri: &Iri| -> String {
        prefixes
            .compact(iri)
            .filter(|c| !c.ends_with(':') && !c.contains('/'))
            .unwrap_or_else(|| format!("<{}>", iri.as_str()))
    };
    let mut out = String::new();
    for map in &mapping.class_maps {
        let _ = writeln!(out, "map {} <{}>", map.table, map.uri_template);
        if let Some(class) = &map.class {
            let _ = writeln!(out, "  type {}", compact(class));
        }
        for bridge in &map.bridges {
            match bridge {
                Bridge::Column {
                    column,
                    predicate,
                    lang,
                } => {
                    let suffix = lang.as_ref().map(|l| format!(" @{l}")).unwrap_or_default();
                    let _ = writeln!(out, "  col {column} -> {}{suffix}", compact(predicate));
                }
                Bridge::Ref {
                    column,
                    predicate,
                    target_table,
                } => {
                    let _ = writeln!(
                        out,
                        "  ref {column} -> {} {target_table}",
                        compact(predicate)
                    );
                }
                Bridge::Split {
                    column,
                    predicate,
                    separator,
                } => {
                    let _ = writeln!(
                        out,
                        "  split {column} -> {} sep=\"{separator}\"",
                        compact(predicate)
                    );
                }
                Bridge::Geometry {
                    lon_column,
                    lat_column,
                    predicate,
                } => {
                    let _ = writeln!(
                        out,
                        "  geom {lon_column} {lat_column} -> {}",
                        compact(predicate)
                    );
                }
                Bridge::TemplateIri {
                    template,
                    predicate,
                } => {
                    let _ = writeln!(out, "  iri <{template}> -> {}", compact(predicate));
                }
                Bridge::Constant { predicate, object } => {
                    let obj = match object {
                        Term::Iri(iri) => compact(iri),
                        other => other.to_string(),
                    };
                    let _ = writeln!(out, "  const {} {obj}", compact(predicate));
                }
            }
        }
        out.push('\n');
    }
    for rel in &mapping.relation_maps {
        let _ = writeln!(
            out,
            "rel {} {} {} {} {} {}",
            rel.table,
            rel.subject_column,
            rel.subject_table,
            compact(&rel.predicate),
            rel.object_column,
            rel.object_table
        );
    }
    for agg in &mapping.aggregate_maps {
        let _ = writeln!(
            out,
            "agg {} group={} master={} value={} -> {}",
            agg.table,
            agg.group_column,
            agg.master_table,
            agg.value_column,
            compact(&agg.predicate)
        );
    }
    out
}

/// Splits a line into tokens; `<…>` and `"…"` groups stay intact.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '<' {
            let mut tok = String::new();
            for ch in chars.by_ref() {
                tok.push(ch);
                if ch == '>' {
                    break;
                }
            }
            if !tok.ends_with('>') {
                return Err("unterminated <...>".into());
            }
            tokens.push(tok);
        } else if c == '"' {
            let mut tok = String::new();
            tok.push(chars.next().expect("peeked"));
            for ch in chars.by_ref() {
                tok.push(ch);
                if ch == '"' {
                    break;
                }
            }
            if tok.len() < 2 || !tok.ends_with('"') {
                return Err("unterminated string".into());
            }
            // Attach to previous token if it was `sep=` style.
            if let Some(prev) = tokens.last_mut() {
                if prev.ends_with('=') {
                    prev.push_str(&tok);
                    continue;
                }
            }
            tokens.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                if ch == '"' && tok.ends_with('=') {
                    // sep=" " — pull the quoted part in.
                    chars.next();
                    tok.push('"');
                    for q in chars.by_ref() {
                        tok.push(q);
                        if q == '"' {
                            break;
                        }
                    }
                    break;
                }
                tok.push(ch);
                chars.next();
            }
            tokens.push(tok);
        }
    }
    if tokens.is_empty() {
        return Err("empty line".into());
    }
    Ok(tokens)
}

fn strip_angle(token: &str) -> Option<&str> {
    token.strip_prefix('<')?.strip_suffix('>')
}

fn expect_arrow(tokens: &[String], idx: usize) -> Result<(), String> {
    if tokens.get(idx).map(String::as_str) == Some("->") {
        Ok(())
    } else {
        Err(format!("expected `->` at position {idx}"))
    }
}

fn resolve_iri(token: Option<&String>, prefixes: &PrefixMap) -> Option<Iri> {
    let token = token?;
    if let Some(inner) = strip_angle(token) {
        return Iri::new(inner).ok();
    }
    prefixes.expand(token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::coppermine_mapping;

    const SAMPLE: &str = r#"
# sample mapping
prefix ex: <http://example.org/>

map users <http://example.org/u/{user_id}>
  type foaf:Person
  col name -> foaf:name
  col bio -> rdfs:comment @en

map pics <http://example.org/p/{pid}>
  type sioct:MicroblogPost
  col title -> rdfs:label
  ref owner -> foaf:maker users
  split kw -> ex:keyword sep=" "
  geom lon lat -> geo:geometry
  iri <http://example.org/media/{pid}.jpg> -> comm:image-data
  const ex:source "mobile"

rel follows a users foaf:knows b users
agg votes group=pid master=pics value=rating -> rev:rating
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.class_maps.len(), 2);
        assert_eq!(m.relation_maps.len(), 1);
        assert_eq!(m.aggregate_maps.len(), 1);
        let users = m.class_map("users").unwrap();
        assert_eq!(
            users.class.as_ref().unwrap().as_str(),
            "http://xmlns.com/foaf/0.1/Person"
        );
        assert!(matches!(&users.bridges[1], Bridge::Column { lang: Some(l), .. } if l == "en"));
        let pics = m.class_map("pics").unwrap();
        assert_eq!(pics.bridges.len(), 6);
        assert!(matches!(
            &pics.bridges[2],
            Bridge::Split { separator: ' ', .. }
        ));
    }

    #[test]
    fn round_trip_through_serializer() {
        let original = parse(SAMPLE).unwrap();
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(original, reparsed);
    }

    #[test]
    fn coppermine_default_round_trips() {
        let original = coppermine_mapping();
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(original, reparsed);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let bad = "map users <http://x/{id}>\n  bogus directive\n";
        match parse(bad) {
            Err(D2rError::Dsl { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected DSL error, got {other:?}"),
        }
        assert!(parse("col x -> rdfs:label").is_err()); // outside map
        assert!(parse("map t\n").is_err()); // missing template
        assert!(parse("rel t a b\n").is_err()); // wrong arity
    }
}
