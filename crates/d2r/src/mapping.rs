//! The declarative mapping model.

use lodify_rdf::{Iri, Term};
use lodify_relational::{Database, SqlValue};

use crate::error::D2rError;

/// A property bridge: how one (or two) columns of a row become a triple.
#[derive(Debug, Clone, PartialEq)]
pub enum Bridge {
    /// Column value → literal object. NULL cells emit nothing.
    /// Integer/real/bool columns produce typed literals; text columns
    /// produce plain literals (or language-tagged when `lang` is set).
    Column {
        /// Source column.
        column: String,
        /// Predicate IRI.
        predicate: Iri,
        /// Optional language tag for text columns.
        lang: Option<String>,
    },
    /// FK column → object IRI minted by the target table's class map.
    Ref {
        /// FK column (integer).
        column: String,
        /// Predicate IRI.
        predicate: Iri,
        /// Referenced table (must have a class map).
        target_table: String,
    },
    /// Space(or other separator)-separated column → one triple per
    /// piece. This is the paper's keyword un-packing: "we had to
    /// separate all keywords and make triples describing each one"
    /// (§2.1.1).
    Split {
        /// Source text column.
        column: String,
        /// Predicate IRI.
        predicate: Iri,
        /// Separator character.
        separator: char,
    },
    /// Two real columns (lon, lat) → one WKT `geo:geometry` literal.
    /// Rows with either column NULL emit nothing.
    Geometry {
        /// Longitude column.
        lon_column: String,
        /// Latitude column.
        lat_column: String,
        /// Predicate IRI (normally `geo:geometry`).
        predicate: Iri,
    },
    /// String template → object IRI (e.g. the media URL for
    /// `comm:image-data`). `{column}` placeholders are filled from the
    /// row; rows with referenced NULL cells emit nothing.
    TemplateIri {
        /// IRI template with `{column}` placeholders.
        template: String,
        /// Predicate IRI.
        predicate: Iri,
    },
    /// A constant triple emitted once per row.
    Constant {
        /// Predicate IRI.
        predicate: Iri,
        /// Fixed object term.
        object: Term,
    },
}

impl Bridge {
    /// The predicate this bridge emits.
    pub fn predicate(&self) -> &Iri {
        match self {
            Bridge::Column { predicate, .. }
            | Bridge::Ref { predicate, .. }
            | Bridge::Split { predicate, .. }
            | Bridge::Geometry { predicate, .. }
            | Bridge::TemplateIri { predicate, .. }
            | Bridge::Constant { predicate, .. } => predicate,
        }
    }
}

/// Maps one entity table to resources.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMap {
    /// Source table.
    pub table: String,
    /// URI template; `{column}` placeholders, normally just the PK
    /// ("every table has a primary key field … it can be used for
    /// constructing the URI", §2.1).
    pub uri_template: String,
    /// `rdf:type` to assert, if any.
    pub class: Option<Iri>,
    /// Property bridges.
    pub bridges: Vec<Bridge>,
}

/// Maps a join table to plain links (e.g. friendships → `foaf:knows`).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationMap {
    /// Source join table.
    pub table: String,
    /// FK column providing the subject.
    pub subject_column: String,
    /// Table the subject FK references (must have a class map).
    pub subject_table: String,
    /// Predicate IRI.
    pub predicate: Iri,
    /// FK column providing the object.
    pub object_column: String,
    /// Table the object FK references (must have a class map).
    pub object_table: String,
}

/// Aggregates a detail table onto its master's resource — the vote
/// average that becomes the paper's single `rev:rating` per picture.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateMap {
    /// Detail table (e.g. votes).
    pub table: String,
    /// FK column grouping rows to the master (e.g. `pid`).
    pub group_column: String,
    /// Master table (must have a class map).
    pub master_table: String,
    /// Numeric column to average.
    pub value_column: String,
    /// Predicate on the master resource.
    pub predicate: Iri,
}

/// A complete mapping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mapping {
    /// Entity table maps.
    pub class_maps: Vec<ClassMap>,
    /// Join-table maps.
    pub relation_maps: Vec<RelationMap>,
    /// Aggregate maps.
    pub aggregate_maps: Vec<AggregateMap>,
}

impl Mapping {
    /// The class map for a table, if any.
    pub fn class_map(&self, table: &str) -> Option<&ClassMap> {
        self.class_maps.iter().find(|m| m.table == table)
    }

    /// Validates the mapping against a database schema: tables and
    /// columns exist, every `Ref`/relation/aggregate target has a class
    /// map, templates reference real columns.
    pub fn validate(&self, db: &Database) -> Result<(), D2rError> {
        let check_column = |table: &str, column: &str| -> Result<(), D2rError> {
            let t = db
                .table(table)
                .map_err(|_| D2rError::UnknownTable(table.to_string()))?;
            if t.schema().column(column).is_none() {
                return Err(D2rError::UnknownColumn {
                    table: table.to_string(),
                    column: column.to_string(),
                });
            }
            Ok(())
        };
        for map in &self.class_maps {
            db.table(&map.table)
                .map_err(|_| D2rError::UnknownTable(map.table.clone()))?;
            for placeholder in template_placeholders(&map.uri_template) {
                check_column(&map.table, &placeholder)?;
            }
            for bridge in &map.bridges {
                match bridge {
                    Bridge::Column { column, .. } | Bridge::Split { column, .. } => {
                        check_column(&map.table, column)?;
                    }
                    Bridge::Ref {
                        column,
                        target_table,
                        ..
                    } => {
                        check_column(&map.table, column)?;
                        if self.class_map(target_table).is_none() {
                            return Err(D2rError::UnmappedRefTarget {
                                table: map.table.clone(),
                                target: target_table.clone(),
                            });
                        }
                    }
                    Bridge::Geometry {
                        lon_column,
                        lat_column,
                        ..
                    } => {
                        check_column(&map.table, lon_column)?;
                        check_column(&map.table, lat_column)?;
                    }
                    Bridge::TemplateIri { template, .. } => {
                        for placeholder in template_placeholders(template) {
                            check_column(&map.table, &placeholder)?;
                        }
                    }
                    Bridge::Constant { .. } => {}
                }
            }
        }
        for rel in &self.relation_maps {
            check_column(&rel.table, &rel.subject_column)?;
            check_column(&rel.table, &rel.object_column)?;
            for target in [&rel.subject_table, &rel.object_table] {
                if self.class_map(target).is_none() {
                    return Err(D2rError::UnmappedRefTarget {
                        table: rel.table.clone(),
                        target: target.clone(),
                    });
                }
            }
        }
        for agg in &self.aggregate_maps {
            check_column(&agg.table, &agg.group_column)?;
            check_column(&agg.table, &agg.value_column)?;
            if self.class_map(&agg.master_table).is_none() {
                return Err(D2rError::UnmappedRefTarget {
                    table: agg.table.clone(),
                    target: agg.master_table.clone(),
                });
            }
        }
        Ok(())
    }
}

/// The `{column}` placeholders of a template, in order.
pub fn template_placeholders(template: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        let Some(end_rel) = rest[start..].find('}') else {
            break;
        };
        out.push(rest[start + 1..start + end_rel].to_string());
        rest = &rest[start + end_rel + 1..];
    }
    out
}

/// Instantiates a URI template from a row; `None` when any referenced
/// cell is NULL.
pub fn fill_template(
    template: &str,
    row: &[SqlValue],
    column_index: impl Fn(&str) -> Option<usize>,
) -> Result<Option<String>, D2rError> {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let Some(end_rel) = rest[start..].find('}') else {
            return Err(D2rError::Template {
                template: template.to_string(),
                message: "unterminated placeholder".into(),
            });
        };
        let name = &rest[start + 1..start + end_rel];
        let idx = column_index(name).ok_or_else(|| D2rError::Template {
            template: template.to_string(),
            message: format!("unknown column {name:?}"),
        })?;
        match &row[idx] {
            SqlValue::Null => return Ok(None),
            SqlValue::Int(v) => out.push_str(&v.to_string()),
            SqlValue::Real(v) => out.push_str(&v.to_string()),
            SqlValue::Bool(v) => out.push_str(&v.to_string()),
            SqlValue::Text(v) => out.push_str(&encode_uri_component(v)),
        }
        rest = &rest[start + end_rel + 1..];
    }
    out.push_str(rest);
    Ok(Some(out))
}

/// Percent-encodes characters that would break an IRI.
pub fn encode_uri_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'A'..='Z' | 'a'..='z' | '0'..='9' | '-' | '_' | '.' | '~' | '/' => out.push(c),
            ' ' => out.push_str("%20"),
            _ => {
                let mut buf = [0u8; 4];
                for byte in c.encode_utf8(&mut buf).as_bytes() {
                    out.push_str(&format!("%{byte:02X}"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::ns;

    #[test]
    fn template_placeholder_extraction() {
        assert_eq!(
            template_placeholders("http://x/{pid}/y/{name}"),
            vec!["pid", "name"]
        );
        assert!(template_placeholders("http://x/plain").is_empty());
    }

    #[test]
    fn fill_template_with_encoding_and_null() {
        let row = vec![SqlValue::Int(7), SqlValue::text("a b/c"), SqlValue::Null];
        let idx = |name: &str| match name {
            "id" => Some(0),
            "path" => Some(1),
            "missing" => Some(2),
            _ => None,
        };
        assert_eq!(
            fill_template("http://x/{id}/{path}", &row, idx).unwrap(),
            Some("http://x/7/a%20b/c".to_string())
        );
        assert_eq!(
            fill_template("http://x/{missing}", &row, idx).unwrap(),
            None
        );
        assert!(fill_template("http://x/{nope}", &row, idx).is_err());
        assert!(fill_template("http://x/{broken", &row, idx).is_err());
    }

    #[test]
    fn encode_uri_component_covers_unicode() {
        assert_eq!(encode_uri_component("caffè"), "caff%C3%A8");
        assert_eq!(encode_uri_component("a b"), "a%20b");
        assert_eq!(encode_uri_component("x/y-z_1.jpg"), "x/y-z_1.jpg");
    }

    #[test]
    fn validate_catches_dangling_pieces() {
        use lodify_relational::{coppermine, Database};
        let mut db = Database::new();
        coppermine::create_schema(&mut db).unwrap();

        let bad_table = Mapping {
            class_maps: vec![ClassMap {
                table: "ghost".into(),
                uri_template: "http://x/{id}".into(),
                class: None,
                bridges: vec![],
            }],
            ..Default::default()
        };
        assert!(matches!(
            bad_table.validate(&db),
            Err(D2rError::UnknownTable(_))
        ));

        let bad_column = Mapping {
            class_maps: vec![ClassMap {
                table: coppermine::USERS.into(),
                uri_template: "http://x/{user_id}".into(),
                class: None,
                bridges: vec![Bridge::Column {
                    column: "ghost".into(),
                    predicate: ns::iri::rdfs_label(),
                    lang: None,
                }],
            }],
            ..Default::default()
        };
        assert!(matches!(
            bad_column.validate(&db),
            Err(D2rError::UnknownColumn { .. })
        ));

        let bad_ref = Mapping {
            class_maps: vec![ClassMap {
                table: coppermine::PICTURES.into(),
                uri_template: "http://x/{pid}".into(),
                class: None,
                bridges: vec![Bridge::Ref {
                    column: "owner_id".into(),
                    predicate: ns::iri::foaf_maker(),
                    target_table: coppermine::USERS.into(),
                }],
            }],
            ..Default::default()
        };
        assert!(matches!(
            bad_ref.validate(&db),
            Err(D2rError::UnmappedRefTarget { .. })
        ));
    }
}
