//! `dump-rdf`: database × mapping → triples.

use std::collections::BTreeMap;

use lodify_rdf::{ntriples, Iri, Literal, Point, Term, Triple};
use lodify_relational::{Database, SqlValue, Table};

use crate::error::D2rError;
use crate::mapping::{fill_template, Bridge, ClassMap, Mapping};

/// Per-dump statistics (experiment E9 reports these).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DumpStats {
    /// Rows visited across all mapped tables.
    pub rows: usize,
    /// Triples emitted.
    pub triples: usize,
    /// Per-table `(rows, triples)` in mapping order.
    pub per_table: Vec<(String, usize, usize)>,
}

/// Runs the dump, returning the triples and statistics.
pub fn dump_rdf(db: &Database, mapping: &Mapping) -> Result<(Vec<Triple>, DumpStats), D2rError> {
    mapping.validate(db)?;
    let mut triples = Vec::new();
    let mut stats = DumpStats::default();

    for map in &mapping.class_maps {
        let table = db
            .table(&map.table)
            .map_err(|e| D2rError::Relational(e.to_string()))?;
        let before = triples.len();
        let mut rows = 0usize;
        for (_, row) in table.scan() {
            rows += 1;
            dump_row(db, mapping, map, table, row, &mut triples)?;
        }
        stats.rows += rows;
        stats
            .per_table
            .push((map.table.clone(), rows, triples.len() - before));
    }

    for rel in &mapping.relation_maps {
        let table = db
            .table(&rel.table)
            .map_err(|e| D2rError::Relational(e.to_string()))?;
        let before = triples.len();
        let mut rows = 0usize;
        let s_idx = table
            .schema()
            .column_index(&rel.subject_column)
            .expect("validated");
        let o_idx = table
            .schema()
            .column_index(&rel.object_column)
            .expect("validated");
        for (_, row) in table.scan() {
            rows += 1;
            let (Some(s_key), Some(o_key)) = (row[s_idx].as_int(), row[o_idx].as_int()) else {
                continue;
            };
            let subject = uri_for_pk(db, mapping, &rel.subject_table, s_key)?;
            let object = uri_for_pk(db, mapping, &rel.object_table, o_key)?;
            triples.push(Triple::new_unchecked(
                Term::Iri(subject),
                rel.predicate.clone(),
                Term::Iri(object),
            ));
        }
        stats.rows += rows;
        stats
            .per_table
            .push((rel.table.clone(), rows, triples.len() - before));
    }

    for agg in &mapping.aggregate_maps {
        let table = db
            .table(&agg.table)
            .map_err(|e| D2rError::Relational(e.to_string()))?;
        let before = triples.len();
        let g_idx = table
            .schema()
            .column_index(&agg.group_column)
            .expect("validated");
        let v_idx = table
            .schema()
            .column_index(&agg.value_column)
            .expect("validated");
        let mut sums: BTreeMap<i64, (f64, usize)> = BTreeMap::new();
        let mut rows = 0usize;
        for (_, row) in table.scan() {
            rows += 1;
            let (Some(group), Some(value)) = (row[g_idx].as_int(), row[v_idx].as_real()) else {
                continue;
            };
            let entry = sums.entry(group).or_insert((0.0, 0));
            entry.0 += value;
            entry.1 += 1;
        }
        for (group, (sum, count)) in sums {
            let master = uri_for_pk(db, mapping, &agg.master_table, group)?;
            let avg = sum / count as f64;
            triples.push(Triple::new_unchecked(
                Term::Iri(master),
                agg.predicate.clone(),
                Term::Literal(Literal::double((avg * 100.0).round() / 100.0)),
            ));
        }
        stats.rows += rows;
        stats
            .per_table
            .push((agg.table.clone(), rows, triples.len() - before));
    }

    stats.triples = triples.len();
    Ok((triples, stats))
}

/// Runs the dump and serializes straight to N-Triples — the artifact
/// the paper loads into Virtuoso.
pub fn dump_to_ntriples(db: &Database, mapping: &Mapping) -> Result<(String, DumpStats), D2rError> {
    let (triples, stats) = dump_rdf(db, mapping)?;
    Ok((ntriples::to_string(&triples), stats))
}

fn dump_row(
    db: &Database,
    mapping: &Mapping,
    map: &ClassMap,
    table: &Table,
    row: &[SqlValue],
    out: &mut Vec<Triple>,
) -> Result<(), D2rError> {
    let index = |name: &str| table.schema().column_index(name);
    let Some(uri) = fill_template(&map.uri_template, row, index)? else {
        return Ok(()); // template hit a NULL — no resource for this row
    };
    let subject = Iri::new(uri).map_err(|e| D2rError::Rdf(e.to_string()))?;

    if let Some(class) = &map.class {
        out.push(Triple::new_unchecked(
            Term::Iri(subject.clone()),
            lodify_rdf::ns::iri::rdf_type(),
            Term::Iri(class.clone()),
        ));
    }

    for bridge in &map.bridges {
        match bridge {
            Bridge::Column {
                column,
                predicate,
                lang,
            } => {
                let idx = index(column).expect("validated");
                let literal = match &row[idx] {
                    SqlValue::Null => continue,
                    SqlValue::Int(v) => Literal::integer(*v),
                    SqlValue::Real(v) => Literal::double(*v),
                    SqlValue::Bool(v) => Literal::boolean(*v),
                    SqlValue::Text(v) => match lang {
                        Some(tag) => Literal::lang(v.clone(), tag)
                            .map_err(|e| D2rError::Rdf(e.to_string()))?,
                        None => Literal::simple(v.clone()),
                    },
                };
                out.push(Triple::new_unchecked(
                    Term::Iri(subject.clone()),
                    predicate.clone(),
                    Term::Literal(literal),
                ));
            }
            Bridge::Ref {
                column,
                predicate,
                target_table,
            } => {
                let idx = index(column).expect("validated");
                let Some(key) = row[idx].as_int() else {
                    continue;
                };
                let object = uri_for_pk(db, mapping, target_table, key)?;
                out.push(Triple::new_unchecked(
                    Term::Iri(subject.clone()),
                    predicate.clone(),
                    Term::Iri(object),
                ));
            }
            Bridge::Split {
                column,
                predicate,
                separator,
            } => {
                let idx = index(column).expect("validated");
                let Some(text) = row[idx].as_text() else {
                    continue;
                };
                for piece in text.split(*separator).filter(|p| !p.is_empty()) {
                    out.push(Triple::new_unchecked(
                        Term::Iri(subject.clone()),
                        predicate.clone(),
                        Term::Literal(Literal::simple(piece)),
                    ));
                }
            }
            Bridge::Geometry {
                lon_column,
                lat_column,
                predicate,
            } => {
                let lon_idx = index(lon_column).expect("validated");
                let lat_idx = index(lat_column).expect("validated");
                let (Some(lon), Some(lat)) = (row[lon_idx].as_real(), row[lat_idx].as_real())
                else {
                    continue;
                };
                let point = Point::new(lon, lat).map_err(|e| D2rError::Rdf(e.to_string()))?;
                out.push(Triple::new_unchecked(
                    Term::Iri(subject.clone()),
                    predicate.clone(),
                    Term::Literal(point.to_literal()),
                ));
            }
            Bridge::TemplateIri {
                template,
                predicate,
            } => {
                let Some(uri) = fill_template(template, row, index)? else {
                    continue;
                };
                let object = Iri::new(uri).map_err(|e| D2rError::Rdf(e.to_string()))?;
                out.push(Triple::new_unchecked(
                    Term::Iri(subject.clone()),
                    predicate.clone(),
                    Term::Iri(object),
                ));
            }
            Bridge::Constant { predicate, object } => {
                out.push(Triple::new_unchecked(
                    Term::Iri(subject.clone()),
                    predicate.clone(),
                    object.clone(),
                ));
            }
        }
    }
    Ok(())
}

/// Dumps the triples for a single row — the incremental path the
/// platform uses when new content is uploaded (the full `dump_rdf` is
/// the batch path for legacy data).
pub fn dump_resource(
    db: &Database,
    mapping: &Mapping,
    table: &str,
    pk: i64,
) -> Result<Vec<Triple>, D2rError> {
    let map = mapping
        .class_map(table)
        .ok_or_else(|| D2rError::UnknownTable(table.to_string()))?;
    let t = db
        .table(table)
        .map_err(|e| D2rError::Relational(e.to_string()))?;
    let row = t
        .get(pk)
        .ok_or_else(|| D2rError::Relational(format!("{table}: no row with pk {pk}")))?;
    let mut out = Vec::new();
    dump_row(db, mapping, map, t, row, &mut out)?;
    Ok(out)
}

/// Recomputes an aggregate for one master row (e.g. the `rev:rating`
/// average after a new vote) and returns the refreshed triple, if any
/// detail rows exist.
pub fn aggregate_for(
    db: &Database,
    mapping: &Mapping,
    agg: &crate::mapping::AggregateMap,
    master_pk: i64,
) -> Result<Option<Triple>, D2rError> {
    let table = db
        .table(&agg.table)
        .map_err(|e| D2rError::Relational(e.to_string()))?;
    let g_idx = table
        .schema()
        .column_index(&agg.group_column)
        .ok_or_else(|| D2rError::UnknownColumn {
            table: agg.table.clone(),
            column: agg.group_column.clone(),
        })?;
    let v_idx = table
        .schema()
        .column_index(&agg.value_column)
        .ok_or_else(|| D2rError::UnknownColumn {
            table: agg.table.clone(),
            column: agg.value_column.clone(),
        })?;
    let mut sum = 0.0;
    let mut count = 0usize;
    for (_, row) in table.scan() {
        if row[g_idx].as_int() == Some(master_pk) {
            if let Some(v) = row[v_idx].as_real() {
                sum += v;
                count += 1;
            }
        }
    }
    if count == 0 {
        return Ok(None);
    }
    let master = uri_for_pk(db, mapping, &agg.master_table, master_pk)?;
    let avg = sum / count as f64;
    Ok(Some(Triple::new_unchecked(
        Term::Iri(master),
        agg.predicate.clone(),
        Term::Literal(Literal::double((avg * 100.0).round() / 100.0)),
    )))
}

/// Mints the URI a class map gives to the row with primary key `pk`.
/// Requires the target's template to reference only its PK column
/// (true of every catalog mapping; validated here at use time).
pub fn uri_for_pk(db: &Database, mapping: &Mapping, table: &str, pk: i64) -> Result<Iri, D2rError> {
    let map = mapping
        .class_map(table)
        .ok_or_else(|| D2rError::UnmappedRefTarget {
            table: table.to_string(),
            target: table.to_string(),
        })?;
    let t = db
        .table(table)
        .map_err(|e| D2rError::Relational(e.to_string()))?;
    let row = t.get(pk).ok_or_else(|| {
        D2rError::Relational(format!("{table}: no row with pk {pk} while minting URI"))
    })?;
    let uri = fill_template(&map.uri_template, row, |name| t.schema().column_index(name))?
        .ok_or_else(|| D2rError::Template {
            template: map.uri_template.clone(),
            message: "URI template hit NULL for referenced row".into(),
        })?;
    Iri::new(uri).map_err(|e| D2rError::Rdf(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_rdf::ns;
    use lodify_relational::{Column, SqlType, TableSchema};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "users",
                vec![
                    Column::required("user_id", SqlType::Int),
                    Column::required("name", SqlType::Text),
                ],
                "user_id",
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "pics",
                vec![
                    Column::required("pid", SqlType::Int),
                    Column::required("owner", SqlType::Int),
                    Column::required("title", SqlType::Text),
                    Column::required("kw", SqlType::Text),
                    Column::nullable("lon", SqlType::Real),
                    Column::nullable("lat", SqlType::Real),
                ],
                "pid",
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("users", vec![1.into(), "oscar".into()]).unwrap();
        db.insert(
            "pics",
            vec![
                10.into(),
                1.into(),
                "Mole by night".into(),
                "mole torino night".into(),
                SqlValue::Real(7.69),
                SqlValue::Real(45.07),
            ],
        )
        .unwrap();
        db.insert(
            "pics",
            vec![
                11.into(),
                1.into(),
                "No GPS".into(),
                "indoor".into(),
                SqlValue::Null,
                SqlValue::Null,
            ],
        )
        .unwrap();
        db
    }

    fn sample_mapping() -> Mapping {
        Mapping {
            class_maps: vec![
                ClassMap {
                    table: "users".into(),
                    uri_template: "http://t/u/{user_id}".into(),
                    class: Some(lodify_rdf::ns::FOAF.iri("Person")),
                    bridges: vec![Bridge::Column {
                        column: "name".into(),
                        predicate: ns::iri::foaf_name(),
                        lang: None,
                    }],
                },
                ClassMap {
                    table: "pics".into(),
                    uri_template: "http://t/p/{pid}".into(),
                    class: Some(ns::iri::microblog_post()),
                    bridges: vec![
                        Bridge::Column {
                            column: "title".into(),
                            predicate: ns::iri::rdfs_label(),
                            lang: None,
                        },
                        Bridge::Ref {
                            column: "owner".into(),
                            predicate: ns::iri::foaf_maker(),
                            target_table: "users".into(),
                        },
                        Bridge::Split {
                            column: "kw".into(),
                            predicate: lodify_rdf::ns::TL.iri("keyword"),
                            separator: ' ',
                        },
                        Bridge::Geometry {
                            lon_column: "lon".into(),
                            lat_column: "lat".into(),
                            predicate: ns::iri::geo_geometry(),
                        },
                        Bridge::TemplateIri {
                            template: "http://t/media/{pid}.jpg".into(),
                            predicate: ns::iri::image_data(),
                        },
                    ],
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn dump_emits_expected_triples() {
        let db = sample_db();
        let (triples, stats) = dump_rdf(&db, &sample_mapping()).unwrap();

        // users: type + name = 2
        // pic 10: type + title + maker + 3 keywords + geometry + media = 8
        // pic 11: type + title + maker + 1 keyword + media (no geometry) = 5
        assert_eq!(triples.len(), 15);
        assert_eq!(stats.triples, 15);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.per_table.len(), 2);

        let nt = ntriples::to_string(&triples);
        assert!(nt.contains(
            "<http://t/p/10> <http://www.w3.org/2000/01/rdf-schema#label> \"Mole by night\""
        ));
        assert!(nt.contains("<http://t/p/10> <http://xmlns.com/foaf/0.1/maker> <http://t/u/1>"));
        assert!(nt.contains("\"mole\""));
        assert!(nt.contains("POINT(7.69 45.07)"));
        assert!(nt.contains("<http://t/media/10.jpg>"));
        // NULL geometry row must not emit geo:geometry.
        assert!(!nt.contains("<http://t/p/11> <http://www.w3.org/2003/01/geo/wgs84_pos#geometry>"));
    }

    #[test]
    fn keyword_splitting_per_keyword_triples() {
        let db = sample_db();
        let (triples, _) = dump_rdf(&db, &sample_mapping()).unwrap();
        let kw_pred = lodify_rdf::ns::TL.iri("keyword");
        let kws: Vec<&str> = triples
            .iter()
            .filter(|t| t.predicate == kw_pred && t.subject.lexical() == "http://t/p/10")
            .map(|t| t.object.lexical())
            .collect();
        assert_eq!(kws, vec!["mole", "torino", "night"]);
    }

    #[test]
    fn relation_and_aggregate_maps() {
        let mut db = sample_db();
        db.create_table(
            TableSchema::new(
                "votes",
                vec![
                    Column::required("vid", SqlType::Int),
                    Column::required("pid", SqlType::Int),
                    Column::required("rating", SqlType::Int),
                ],
                "vid",
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("votes", vec![1.into(), 10.into(), 5.into()])
            .unwrap();
        db.insert("votes", vec![2.into(), 10.into(), 2.into()])
            .unwrap();
        db.create_table(
            TableSchema::new(
                "follows",
                vec![
                    Column::required("fid", SqlType::Int),
                    Column::required("a", SqlType::Int),
                    Column::required("b", SqlType::Int),
                ],
                "fid",
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("users", vec![2.into(), "walter".into()]).unwrap();
        db.insert("follows", vec![1.into(), 1.into(), 2.into()])
            .unwrap();

        let mut mapping = sample_mapping();
        mapping.relation_maps.push(crate::mapping::RelationMap {
            table: "follows".into(),
            subject_column: "a".into(),
            subject_table: "users".into(),
            predicate: ns::iri::foaf_knows(),
            object_column: "b".into(),
            object_table: "users".into(),
        });
        mapping.aggregate_maps.push(crate::mapping::AggregateMap {
            table: "votes".into(),
            group_column: "pid".into(),
            master_table: "pics".into(),
            value_column: "rating".into(),
            predicate: ns::iri::rev_rating(),
        });

        let (triples, _) = dump_rdf(&db, &mapping).unwrap();
        let nt = ntriples::to_string(&triples);
        assert!(nt.contains("<http://t/u/1> <http://xmlns.com/foaf/0.1/knows> <http://t/u/2>"));
        assert!(nt.contains("<http://t/p/10> <http://purl.org/stuff/rev#rating> \"3.5\""));
    }

    #[test]
    fn dangling_aggregate_master_is_an_error() {
        let mut db = sample_db();
        db.create_table(
            TableSchema::new(
                "votes",
                vec![
                    Column::required("vid", SqlType::Int),
                    Column::required("pid", SqlType::Int),
                    Column::required("rating", SqlType::Int),
                ],
                "vid",
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("votes", vec![1.into(), 999.into(), 5.into()])
            .unwrap();
        let mut mapping = sample_mapping();
        mapping.aggregate_maps.push(crate::mapping::AggregateMap {
            table: "votes".into(),
            group_column: "pid".into(),
            master_table: "pics".into(),
            value_column: "rating".into(),
            predicate: ns::iri::rev_rating(),
        });
        assert!(dump_rdf(&db, &mapping).is_err());
    }
}
