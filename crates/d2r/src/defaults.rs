//! The default Coppermine → RDF mapping.
//!
//! Encodes the paper's design decisions:
//!
//! * resources are minted under the platform namespaces the paper's
//!   queries use (`tl-pid:` for pictures, `tl-uid:` for users);
//! * pictures are typed `sioct:MicroblogPost`, link their media URL via
//!   `comm:image-data`, carry a `geo:geometry` WKT point and per-keyword
//!   `tl:keyword` triples (the §2.1.1 keyword split);
//! * friendships become `foaf:knows`, vote averages become the single
//!   `rev:rating` the Q3 virtual album orders by;
//! * the **service tables** (`cpg148_sessions`, `cpg148_config`) are
//!   deliberately unmapped (§2.1 "avoiding service tables").

use lodify_rdf::ns;
use lodify_relational::coppermine as cpg;

use crate::mapping::{AggregateMap, Bridge, ClassMap, Mapping, RelationMap};

/// Base IRI for platform album resources.
pub const ALBUM_BASE: &str = "http://beta.teamlife.it/cpg148_albums/";
/// Base IRI for platform comment resources.
pub const COMMENT_BASE: &str = "http://beta.teamlife.it/cpg148_comments/";
/// Base IRI for platform POI-reference resources.
pub const POI_REF_BASE: &str = "http://beta.teamlife.it/cpg148_poi_refs/";
/// Base IRI for media files.
pub const MEDIA_BASE: &str = "http://beta.teamlife.it/";

/// Builds the default mapping.
pub fn coppermine_mapping() -> Mapping {
    let tl = |local: &str| ns::TL.iri(local);
    Mapping {
        class_maps: vec![
            ClassMap {
                table: cpg::USERS.into(),
                uri_template: format!("{}{{user_id}}", ns::TL_UID.base),
                class: Some(ns::FOAF.iri("Person")),
                bridges: vec![
                    Bridge::Column {
                        column: "user_name".into(),
                        predicate: ns::iri::foaf_name(),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "full_name".into(),
                        predicate: ns::FOAF.iri("fullName"),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "openid".into(),
                        predicate: ns::FOAF.iri("openid"),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "home_city".into(),
                        predicate: tl("homeCity"),
                        lang: None,
                    },
                ],
            },
            ClassMap {
                table: cpg::ALBUMS.into(),
                uri_template: format!("{ALBUM_BASE}{{album_id}}"),
                class: Some(ns::SIOC.iri("Container")),
                bridges: vec![
                    Bridge::Column {
                        column: "title".into(),
                        predicate: ns::DCTERMS.iri("title"),
                        lang: None,
                    },
                    Bridge::Ref {
                        column: "owner_id".into(),
                        predicate: ns::SIOC.iri("has_owner"),
                        target_table: cpg::USERS.into(),
                    },
                ],
            },
            ClassMap {
                table: cpg::PICTURES.into(),
                uri_template: format!("{}{{pid}}", ns::TL_PID.base),
                class: Some(ns::iri::microblog_post()),
                bridges: vec![
                    Bridge::Column {
                        column: "title".into(),
                        predicate: ns::iri::rdfs_label(),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "title".into(),
                        predicate: ns::DCTERMS.iri("title"),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "ctime".into(),
                        predicate: ns::DCTERMS.iri("created"),
                        lang: None,
                    },
                    Bridge::Split {
                        column: "keywords".into(),
                        predicate: tl("keyword"),
                        separator: ' ',
                    },
                    Bridge::Ref {
                        column: "owner_id".into(),
                        predicate: ns::iri::foaf_maker(),
                        target_table: cpg::USERS.into(),
                    },
                    Bridge::Ref {
                        column: "aid".into(),
                        predicate: ns::SIOC.iri("has_container"),
                        target_table: cpg::ALBUMS.into(),
                    },
                    Bridge::Geometry {
                        lon_column: "lon".into(),
                        lat_column: "lat".into(),
                        predicate: ns::iri::geo_geometry(),
                    },
                    Bridge::TemplateIri {
                        template: format!("{MEDIA_BASE}{{filepath}}"),
                        predicate: ns::iri::image_data(),
                    },
                ],
            },
            ClassMap {
                table: cpg::COMMENTS.into(),
                uri_template: format!("{COMMENT_BASE}{{comment_id}}"),
                class: Some(ns::SIOC.iri("Post")),
                bridges: vec![
                    Bridge::Column {
                        column: "body".into(),
                        predicate: ns::SIOC.iri("content"),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "ctime".into(),
                        predicate: ns::DCTERMS.iri("created"),
                        lang: None,
                    },
                    Bridge::Ref {
                        column: "pid".into(),
                        predicate: ns::SIOC.iri("reply_of"),
                        target_table: cpg::PICTURES.into(),
                    },
                    Bridge::Ref {
                        column: "author_id".into(),
                        predicate: ns::iri::foaf_maker(),
                        target_table: cpg::USERS.into(),
                    },
                ],
            },
            ClassMap {
                table: cpg::POI_REFS.into(),
                uri_template: format!("{POI_REF_BASE}{{ref_id}}"),
                class: Some(tl("PoiReference")),
                bridges: vec![
                    Bridge::Column {
                        column: "poi_name".into(),
                        predicate: ns::iri::rdfs_label(),
                        lang: None,
                    },
                    Bridge::Column {
                        column: "poi_category".into(),
                        predicate: tl("category"),
                        lang: None,
                    },
                    Bridge::Geometry {
                        lon_column: "lon".into(),
                        lat_column: "lat".into(),
                        predicate: ns::iri::geo_geometry(),
                    },
                    Bridge::Ref {
                        column: "pid".into(),
                        predicate: tl("poiOf"),
                        target_table: cpg::PICTURES.into(),
                    },
                ],
            },
        ],
        relation_maps: vec![RelationMap {
            table: cpg::FRIENDS.into(),
            subject_column: "user_id".into(),
            subject_table: cpg::USERS.into(),
            predicate: ns::iri::foaf_knows(),
            object_column: "buddy_id".into(),
            object_table: cpg::USERS.into(),
        }],
        aggregate_maps: vec![AggregateMap {
            table: cpg::VOTES.into(),
            group_column: "pid".into(),
            master_table: cpg::PICTURES.into(),
            value_column: "rating".into(),
            predicate: ns::iri::rev_rating(),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::dump_rdf;
    use lodify_relational::workload::{generate, WorkloadConfig};

    #[test]
    fn default_mapping_validates_and_dumps_workload() {
        let w = generate(WorkloadConfig::small(13));
        let mapping = coppermine_mapping();
        mapping.validate(&w.db).unwrap();
        let (triples, stats) = dump_rdf(&w.db, &mapping).unwrap();
        assert!(!triples.is_empty());
        assert_eq!(stats.triples, triples.len());
        // Every non-service table except none should appear; service
        // tables must NOT appear.
        let tables: Vec<&str> = stats.per_table.iter().map(|(t, _, _)| t.as_str()).collect();
        assert!(tables.contains(&cpg::PICTURES));
        assert!(tables.contains(&cpg::FRIENDS));
        assert!(tables.contains(&cpg::VOTES));
        assert!(!tables.contains(&cpg::SESSIONS));
        assert!(!tables.contains(&cpg::CONFIG));
    }

    #[test]
    fn no_service_table_uris_leak_into_the_dump() {
        let w = generate(WorkloadConfig::small(17));
        let (triples, _) = dump_rdf(&w.db, &coppermine_mapping()).unwrap();
        for t in &triples {
            let s = t.subject.lexical();
            assert!(
                !s.contains("session") && !s.contains("config"),
                "service data leaked: {t}"
            );
        }
    }

    #[test]
    fn pictures_get_the_paper_shape() {
        let w = generate(WorkloadConfig::small(19));
        let (triples, _) = dump_rdf(&w.db, &coppermine_mapping()).unwrap();
        let pid1 = format!("{}1", ns::TL_PID.base);
        let mine: Vec<&lodify_rdf::Triple> = triples
            .iter()
            .filter(|t| t.subject.lexical() == pid1)
            .collect();
        let has_pred = |iri: &lodify_rdf::Iri| mine.iter().any(|t| &t.predicate == iri);
        assert!(has_pred(&ns::iri::rdf_type()));
        assert!(has_pred(&ns::iri::rdfs_label()));
        assert!(has_pred(&ns::iri::image_data()));
        assert!(has_pred(&ns::iri::foaf_maker()));
        assert!(has_pred(&ns::TL.iri("keyword")));
    }

    #[test]
    fn keyword_triples_match_source_keywords() {
        let w = generate(WorkloadConfig::small(23));
        let (triples, _) = dump_rdf(&w.db, &coppermine_mapping()).unwrap();
        let kw_pred = ns::TL.iri("keyword");
        for truth in &w.truth {
            let uri = format!("{}{}", ns::TL_PID.base, truth.pid);
            let dumped: Vec<&str> = triples
                .iter()
                .filter(|t| t.predicate == kw_pred && t.subject.lexical() == uri)
                .map(|t| t.object.lexical())
                .collect();
            assert_eq!(
                dumped,
                truth
                    .keywords
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
            );
        }
    }
}
