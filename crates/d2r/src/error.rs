//! Mapping and dump errors.

use std::fmt;

/// Errors from mapping validation, the DSL parser, or the dump.
#[derive(Debug, Clone, PartialEq)]
pub enum D2rError {
    /// The mapping references a table the database doesn't have.
    UnknownTable(String),
    /// The mapping references a column the table doesn't have.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A URI template placeholder couldn't be filled.
    Template {
        /// The template text.
        template: String,
        /// What went wrong.
        message: String,
    },
    /// A `Ref` bridge points at a table that has no class map.
    UnmappedRefTarget {
        /// Referencing table.
        table: String,
        /// Target table without a class map.
        target: String,
    },
    /// Mapping-file (DSL) syntax error.
    Dsl {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Underlying relational error.
    Relational(String),
    /// Produced an invalid RDF term.
    Rdf(String),
}

impl fmt::Display for D2rError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            D2rError::UnknownTable(t) => write!(f, "mapping references unknown table {t:?}"),
            D2rError::UnknownColumn { table, column } => {
                write!(f, "mapping references unknown column {table}.{column}")
            }
            D2rError::Template { template, message } => {
                write!(f, "cannot instantiate template {template:?}: {message}")
            }
            D2rError::UnmappedRefTarget { table, target } => {
                write!(f, "{table}: ref bridge targets unmapped table {target:?}")
            }
            D2rError::Dsl { line, message } => write!(f, "mapping file line {line}: {message}"),
            D2rError::Relational(m) => write!(f, "relational error: {m}"),
            D2rError::Rdf(m) => write!(f, "rdf error: {m}"),
        }
    }
}

impl std::error::Error for D2rError {}
