//! Semantic filtering and disambiguation.
//!
//! §2.2.2, reproduced rule for rule:
//!
//! 1. **Graph priority** — "resources referring to Geonames graph have
//!    higher priority than the ones related to DBpedia, followed by
//!    Evri types of resources. At this time all candidate resources
//!    pointing to other graphs are discarded."
//! 2. **Validation** — "a validation is performed to check whether the
//!    resource itself is valid. This step depends on the single
//!    ontology": DBpedia resources must have an actual binding and must
//!    not be disambiguation pages; Geonames resources must exist; Evri
//!    resources are external and pass.
//! 3. **String similarity** — "candidates with Jaro-Winkler distance
//!    lower than 0.8 are discarded at this stage unless their DBpedia
//!    score is maximum."
//! 4. **Single-candidate rule** — "Automatic annotation is performed
//!    only in case a single candidate remains after this step, to avoid
//!    ambiguity and limit errors."

use lodify_rdf::Term;
use lodify_store::Store;
use lodify_text::distance::jaro_winkler_ci;

use crate::resolvers::{Candidate, SourceGraph};

/// Why a candidate was discarded.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscardReason {
    /// Graph not in the priority list ("all candidate resources
    /// pointing to other graphs are discarded").
    UnknownGraph,
    /// A higher-priority graph had surviving candidates.
    LowerPriorityGraph,
    /// Resource has no binding in the store.
    NoBinding,
    /// Resource is a disambiguation page.
    DisambiguationPage,
    /// Jaro–Winkler similarity below threshold.
    JaroWinkler(f64),
    /// More than one candidate survived — no automatic annotation.
    Ambiguous,
}

/// Filter configuration (every §2.2.2 knob, for the ablation benches).
#[derive(Debug, Clone)]
pub struct FilterConfig {
    /// Graph priority order; graphs not listed are discarded.
    pub graph_priority: Vec<SourceGraph>,
    /// Jaro–Winkler threshold (paper: 0.8).
    pub jw_threshold: f64,
    /// Whether the max-DBpedia-score exemption from the JW rule applies.
    pub max_score_exemption: bool,
    /// Whether per-ontology validation runs.
    pub validate: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            graph_priority: vec![
                SourceGraph::Geonames,
                SourceGraph::DBpedia,
                SourceGraph::Evri,
            ],
            jw_threshold: 0.8,
            max_score_exemption: true,
            validate: true,
        }
    }
}

/// Outcome of filtering one term's candidates.
#[derive(Debug, Clone)]
pub struct FilterOutcome {
    /// The term.
    pub term: String,
    /// The automatic annotation, when exactly one candidate survived.
    pub chosen: Option<Candidate>,
    /// Candidates that survived every rule (more than one ⇒ ambiguous,
    /// surfaced to the user-assisted UI instead of auto-annotation).
    pub survivors: Vec<Candidate>,
    /// Discarded candidates with reasons (diagnostics + experiments).
    pub discarded: Vec<(Candidate, DiscardReason)>,
}

/// The semantic filter.
#[derive(Debug, Clone, Default)]
pub struct SemanticFilter {
    config: FilterConfig,
}

impl SemanticFilter {
    /// A filter with the paper's configuration.
    pub fn standard() -> SemanticFilter {
        SemanticFilter {
            config: FilterConfig::default(),
        }
    }

    /// A filter with a custom configuration.
    pub fn with_config(config: FilterConfig) -> SemanticFilter {
        SemanticFilter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Runs the full §2.2.2 pipeline over one term's candidates.
    pub fn filter(&self, store: &Store, term: &str, candidates: &[Candidate]) -> FilterOutcome {
        let mut discarded: Vec<(Candidate, DiscardReason)> = Vec::new();

        // Deduplicate by resource IRI, keeping the best-scored copy.
        let mut unique: Vec<Candidate> = Vec::new();
        for candidate in candidates {
            match unique.iter_mut().find(|c| c.resource == candidate.resource) {
                Some(existing) => {
                    if candidate.score > existing.score {
                        *existing = candidate.clone();
                    }
                }
                None => unique.push(candidate.clone()),
            }
        }

        // 1. Graph membership.
        let mut pool: Vec<Candidate> = Vec::new();
        for candidate in unique {
            if self.config.graph_priority.contains(&candidate.graph) {
                pool.push(candidate);
            } else {
                discarded.push((candidate, DiscardReason::UnknownGraph));
            }
        }

        // 2. Per-ontology validation (may normalize redirect pages,
        //    so dedup again afterwards).
        if self.config.validate {
            let mut valid: Vec<Candidate> = Vec::new();
            for mut candidate in pool {
                match self.validate(store, &mut candidate) {
                    Ok(()) => match valid.iter_mut().find(|c| c.resource == candidate.resource) {
                        Some(existing) => {
                            if candidate.score > existing.score {
                                *existing = candidate;
                            }
                        }
                        None => valid.push(candidate),
                    },
                    Err(reason) => discarded.push((candidate, reason)),
                }
            }
            pool = valid;
        }

        // 3. Jaro–Winkler vs the original word.
        let mut similar = Vec::new();
        for candidate in pool {
            let jw = jaro_winkler_ci(term, &candidate.label);
            let exempt = self.config.max_score_exemption
                && candidate.graph == SourceGraph::DBpedia
                && candidate.score >= 1.0;
            if jw >= self.config.jw_threshold || exempt {
                similar.push(candidate);
            } else {
                discarded.push((candidate, DiscardReason::JaroWinkler(jw)));
            }
        }

        // 4. Highest-priority graph wins; the rest are discarded.
        let mut survivors: Vec<Candidate> = Vec::new();
        for graph in &self.config.graph_priority {
            let (mine, rest): (Vec<Candidate>, Vec<Candidate>) =
                similar.drain(..).partition(|c| c.graph == *graph);
            if !mine.is_empty() {
                survivors = mine;
                for c in rest {
                    discarded.push((c, DiscardReason::LowerPriorityGraph));
                }
                break;
            }
            similar = rest;
        }

        // 5. Single-candidate auto-annotation.
        let chosen = if survivors.len() == 1 {
            Some(survivors[0].clone())
        } else {
            for c in &survivors {
                discarded.push((c.clone(), DiscardReason::Ambiguous));
            }
            None
        };

        FilterOutcome {
            term: term.to_string(),
            chosen,
            survivors,
            discarded,
        }
    }

    /// Per-ontology validation; normalizes DBpedia redirect pages to
    /// their targets (mutating the candidate).
    fn validate(&self, store: &Store, candidate: &mut Candidate) -> Result<(), DiscardReason> {
        match candidate.graph {
            // Evri resources are external; no local validation possible.
            SourceGraph::Evri => Ok(()),
            SourceGraph::DBpedia | SourceGraph::Geonames | SourceGraph::Other => {
                let Some(subject) = store.id_of(&Term::Iri(candidate.resource.clone())) else {
                    return Err(DiscardReason::NoBinding);
                };
                if store.match_ids(Some(subject), None, None).next().is_none() {
                    return Err(DiscardReason::NoBinding);
                }
                if candidate.graph == SourceGraph::DBpedia {
                    // Normalize redirect pages (Sindice hands them over
                    // raw; the DBpedia resolver already followed them).
                    let canonical = crate::resolvers::follow_redirect(store, subject);
                    if canonical != subject {
                        if let Some(iri) = store.term_of(canonical).and_then(|t| t.as_iri()) {
                            candidate.resource = iri.clone();
                        }
                    }
                    if crate::resolvers::is_disambiguation(store, canonical) {
                        return Err(DiscardReason::DisambiguationPage);
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::SemanticBroker;
    use crate::datasets::{dbp, load_lod};
    use lodify_context::gazetteer::Gazetteer;

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    fn candidates_for(s: &Store, term: &str, title: &str) -> Vec<Candidate> {
        let broker = SemanticBroker::standard();
        let out = broker.resolve(s, &[term.to_string()], title, None);
        out.terms.into_iter().next().unwrap().candidates
    }

    #[test]
    fn geonames_outranks_dbpedia_for_city_terms() {
        let s = store();
        let cands = candidates_for(&s, "Torino", "");
        let outcome = SemanticFilter::standard().filter(&s, "Torino", &cands);
        let chosen = outcome.chosen.expect("city resolves");
        assert_eq!(chosen.graph, SourceGraph::Geonames);
        assert!(chosen
            .resource
            .as_str()
            .starts_with("http://sws.geonames.org/"));
        // The DBpedia copy was discarded as lower priority.
        assert!(outcome.discarded.iter().any(
            |(c, r)| c.graph == SourceGraph::DBpedia && *r == DiscardReason::LowerPriorityGraph
        ));
    }

    #[test]
    fn monument_terms_resolve_via_dbpedia() {
        let s = store();
        let cands = candidates_for(&s, "Mole Antonelliana", "Tramonto alla Mole Antonelliana");
        let outcome = SemanticFilter::standard().filter(&s, "Mole Antonelliana", &cands);
        let chosen = outcome.chosen.expect("monument resolves");
        assert_eq!(chosen.resource, dbp("Mole_Antonelliana"));
    }

    #[test]
    fn ambiguous_homonyms_block_auto_annotation_unless_score_breaks_tie() {
        let s = store();
        let cands = candidates_for(&s, "Mole", "");
        let outcome = SemanticFilter::standard().filter(&s, "Mole", &cands);
        // All three Mole candidates pass JW=1.0; the monument's max
        // score doesn't reduce the set — more than one survivor means
        // no automatic annotation (the paper's single-candidate rule).
        assert!(outcome.chosen.is_none());
        assert!(outcome.survivors.len() > 1);
        assert!(outcome
            .discarded
            .iter()
            .any(|(_, r)| *r == DiscardReason::Ambiguous));
    }

    #[test]
    fn jw_rule_discards_weak_labels_with_exemption_for_max_dbpedia_score() {
        let s = store();
        // "Coliseum" resolves to Colosseum via redirect: label "Coliseum",
        // JW("Coliseum","Coliseum")=1 — fine. Now force a weak term.
        let cands = candidates_for(&s, "Colosseum", "");
        let filter = SemanticFilter::standard();
        // Filter the same candidates against a dissimilar term.
        let outcome = filter.filter(&s, "amphitheatre", &cands);
        // The Colosseum monument has max DBpedia score → exempt; the
        // band (lower score) is discarded by JW.
        assert!(outcome
            .discarded
            .iter()
            .any(|(_, r)| matches!(r, DiscardReason::JaroWinkler(_))));
        assert_eq!(outcome.chosen.map(|c| c.resource), Some(dbp("Colosseum")));

        // Without the exemption nothing survives.
        let strict = SemanticFilter::with_config(FilterConfig {
            max_score_exemption: false,
            ..FilterConfig::default()
        });
        let outcome = strict.filter(&s, "amphitheatre", &cands);
        assert!(outcome.chosen.is_none());
        assert!(outcome.survivors.is_empty());
    }

    #[test]
    fn validation_discards_unbound_and_disambiguation_resources() {
        let s = store();
        let ghost = Candidate {
            resource: dbp("Completely_Absent_Resource"),
            label: "Ghost".into(),
            graph: SourceGraph::DBpedia,
            score: 0.9,
            types: vec![],
            resolver: "test",
        };
        let disamb = Candidate {
            resource: dbp("Mole_(disambiguation)"),
            label: "Mole".into(),
            graph: SourceGraph::DBpedia,
            score: 0.9,
            types: vec![],
            resolver: "test",
        };
        let outcome = SemanticFilter::standard().filter(&s, "Ghost", std::slice::from_ref(&ghost));
        assert!(outcome
            .discarded
            .iter()
            .any(|(_, r)| *r == DiscardReason::NoBinding));
        let outcome = SemanticFilter::standard().filter(&s, "Mole", &[disamb]);
        assert!(outcome
            .discarded
            .iter()
            .any(|(_, r)| *r == DiscardReason::DisambiguationPage));

        // With validation off, the ghost sails through.
        let lax = SemanticFilter::with_config(FilterConfig {
            validate: false,
            ..FilterConfig::default()
        });
        let outcome = lax.filter(&s, "Ghost", &[ghost]);
        assert!(outcome.chosen.is_some());
    }

    #[test]
    fn other_graph_candidates_are_always_discarded() {
        let s = store();
        let lgd_candidate = Candidate {
            resource: crate::datasets::lgd("Ristorante_Del_Cambio"),
            label: "Del Cambio".into(),
            graph: SourceGraph::Other,
            score: 0.5,
            types: vec![],
            resolver: "sindice",
        };
        let outcome = SemanticFilter::standard().filter(&s, "Del Cambio", &[lgd_candidate]);
        assert!(outcome.chosen.is_none());
        assert_eq!(outcome.discarded[0].1, DiscardReason::UnknownGraph);
    }

    #[test]
    fn duplicate_candidates_collapse_keeping_best_score() {
        let s = store();
        let a = Candidate {
            resource: dbp("Turin"),
            label: "Turin".into(),
            graph: SourceGraph::DBpedia,
            score: 0.4,
            types: vec![],
            resolver: "zemanta",
        };
        let b = Candidate {
            score: 1.0,
            resolver: "dbpedia",
            ..a.clone()
        };
        let outcome = SemanticFilter::standard().filter(&s, "Turin", &[a, b]);
        let chosen = outcome.chosen.expect("deduped to one");
        assert_eq!(chosen.score, 1.0);
    }

    #[test]
    fn custom_priority_order_changes_winner() {
        let s = store();
        let cands = candidates_for(&s, "Torino", "");
        let dbp_first = SemanticFilter::with_config(FilterConfig {
            graph_priority: vec![SourceGraph::DBpedia, SourceGraph::Geonames],
            ..FilterConfig::default()
        });
        let outcome = dbp_first.filter(&s, "Torino", &cands);
        let chosen = outcome.chosen.expect("resolves");
        assert_eq!(chosen.graph, SourceGraph::DBpedia);
    }
}
