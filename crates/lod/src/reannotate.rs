//! Graceful degradation for the annotation pipeline.
//!
//! When resolvers are unavailable, [`Annotator::annotate`] still
//! completes — the item gets whatever the healthy resolvers produced,
//! and [`AnnotationResult::degraded`] names the ones that answered
//! nothing. This module closes the loop: degraded items are parked in
//! a dead-letter queue and replayed once the outage clears (breakers
//! half-open, probe, close), so every item eventually receives its
//! full annotation without any wall-clock waiting.

use lodify_context::ContextSnapshot;
use lodify_resilience::{DeadLetterQueue, ReplayReport, Telemetry};
use lodify_store::Store;

use crate::annotator::{AnnotationResult, Annotator, ContentInput, PoiRefInput};

/// An owned copy of one content item's annotation inputs
/// ([`ContentInput`] borrows; parked items must outlive the caller).
#[derive(Debug, Clone)]
pub struct OwnedContent {
    /// Content identifier in the host platform (picture id, post id…).
    pub content_id: u64,
    /// The user-supplied title.
    pub title: String,
    /// User-supplied plain tags.
    pub tags: Vec<String>,
    /// Context snapshot at capture time, if any.
    pub context: Option<ContextSnapshot>,
    /// Explicit POI reference, if any.
    pub poi_ref: Option<PoiRefInput>,
}

impl OwnedContent {
    /// Captures the inputs of one annotation run.
    pub fn from_input(content_id: u64, input: &ContentInput<'_>) -> OwnedContent {
        OwnedContent {
            content_id,
            title: input.title.to_string(),
            tags: input.tags.to_vec(),
            context: input.context.cloned(),
            poi_ref: input.poi_ref.clone(),
        }
    }

    /// Borrows the owned copy back as pipeline input.
    pub fn as_input(&self) -> ContentInput<'_> {
        ContentInput {
            title: &self.title,
            tags: &self.tags,
            context: self.context.as_ref(),
            poi_ref: self.poi_ref.clone(),
        }
    }
}

/// The dead-letter queue of degraded annotations.
pub struct ReAnnotator {
    dlq: DeadLetterQueue<OwnedContent>,
    telemetry: Telemetry,
}

impl ReAnnotator {
    /// A queue that abandons an item (into the exhausted bucket, still
    /// inspectable) after `max_attempts` degraded annotation passes.
    pub fn new(max_attempts: u32) -> ReAnnotator {
        ReAnnotator {
            dlq: DeadLetterQueue::new(max_attempts),
            telemetry: Telemetry::new(),
        }
    }

    /// Parks a degraded item for later re-annotation. No-op when the
    /// result is complete; returns whether the item was parked.
    pub fn observe(
        &mut self,
        content: OwnedContent,
        result: &AnnotationResult,
        now_ms: u64,
    ) -> bool {
        if !result.is_degraded() {
            return false;
        }
        self.dlq.push(
            content,
            format!("resolvers unavailable: {}", result.degraded.join(", ")),
            now_ms,
        );
        self.telemetry.incr("reannotate.parked");
        self.telemetry
            .set_gauge("reannotate.dlq.depth", self.dlq.depth() as u64);
        true
    }

    /// Re-annotates every parked item. Items whose new result is
    /// complete are handed to `accept` (store the refreshed
    /// annotations) and leave the queue; still-degraded items are
    /// re-parked until the attempt cap exhausts them.
    pub fn replay(
        &mut self,
        store: &Store,
        annotator: &Annotator,
        mut accept: impl FnMut(&OwnedContent, AnnotationResult),
    ) -> ReplayReport {
        let report = self.dlq.replay(|content| {
            let result = annotator.annotate(store, &content.as_input());
            if result.is_degraded() {
                Err(format!("still degraded: {}", result.degraded.join(", ")))
            } else {
                accept(content, result);
                Ok(())
            }
        });
        self.telemetry
            .add("reannotate.replayed", report.replayed as u64);
        self.telemetry
            .set_gauge("reannotate.dlq.depth", self.dlq.depth() as u64);
        self.telemetry.set_gauge(
            "reannotate.dlq.exhausted",
            self.dlq.exhausted().len() as u64,
        );
        report
    }

    /// Parked items awaiting re-annotation.
    pub fn depth(&self) -> usize {
        self.dlq.depth()
    }

    /// The underlying queue (inspection; exhausted bucket).
    pub fn queue(&self) -> &DeadLetterQueue<OwnedContent> {
        &self.dlq
    }

    /// Telemetry: `reannotate.parked` / `reannotate.replayed` counters,
    /// `reannotate.dlq.depth` / `reannotate.dlq.exhausted` gauges.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::AnnotatorConfig;
    use crate::broker::{BrokerResilienceConfig, SemanticBroker};
    use crate::datasets::load_lod;
    use crate::filter::SemanticFilter;
    use crate::resolvers::{
        DbpediaResolver, FaultInjectedResolver, GeonamesResolver, SindiceResolver,
    };
    use lodify_context::gazetteer::Gazetteer;
    use lodify_resilience::{FaultPlan, VirtualClock};

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    /// Annotator whose DBpedia resolver is down for `[0, until_ms)`
    /// (healthy when `until_ms == 0`).
    fn annotator_with_outage(clock: &VirtualClock, until_ms: u64) -> Annotator {
        let mut builder = FaultPlan::builder();
        if until_ms > 0 {
            builder = builder.outage("resolver:dbpedia", 0, until_ms);
        }
        let plan = builder.build(clock.clone());
        let broker = SemanticBroker::new(vec![
            Box::new(FaultInjectedResolver::new(DbpediaResolver, plan)),
            Box::new(GeonamesResolver),
            Box::new(SindiceResolver),
        ])
        .with_resilience(clock.clone(), BrokerResilienceConfig::default());
        Annotator::new(
            broker,
            SemanticFilter::standard(),
            AnnotatorConfig::default(),
        )
    }

    #[test]
    fn degraded_items_are_parked_and_replayed_to_completion() {
        let s = store();
        let clock = VirtualClock::new();
        let annotator = annotator_with_outage(&clock, 5_000);
        let mut requeue = ReAnnotator::new(5);

        let tags = vec!["torino".to_string()];
        let input = ContentInput {
            title: "Mole Antonelliana",
            tags: &tags,
            context: None,
            poi_ref: None,
        };
        let result = annotator.annotate(&s, &input);
        assert!(result.is_degraded());
        assert!(result.degraded.contains(&"dbpedia"));
        assert!(requeue.observe(OwnedContent::from_input(9, &input), &result, clock.now_ms()));
        assert_eq!(requeue.depth(), 1);

        // Replaying during the outage keeps the item parked (the
        // breaker is open, so the resolver stays unavailable).
        let report = requeue.replay(&s, &annotator, |_, _| panic!("not complete yet"));
        assert_eq!(report.requeued, 1);
        assert_eq!(requeue.depth(), 1);

        // Outage + breaker cooldown pass → replay completes the item.
        clock.set(10_000);
        let mut accepted = Vec::new();
        let report = requeue.replay(&s, &annotator, |content, result| {
            accepted.push((content.content_id, result));
        });
        assert_eq!(report.replayed, 1);
        assert_eq!(requeue.depth(), 0);
        let (id, refreshed) = &accepted[0];
        assert_eq!(*id, 9);
        assert!(!refreshed.is_degraded());
        assert!(
            refreshed.terms.iter().any(|t| t.resource.is_some()),
            "full annotation after recovery"
        );
        assert_eq!(requeue.telemetry().gauge("reannotate.dlq.depth"), Some(0));
    }

    #[test]
    fn complete_results_are_not_parked() {
        let s = store();
        let clock = VirtualClock::new();
        let annotator = annotator_with_outage(&clock, 0);
        let mut requeue = ReAnnotator::new(3);
        let input = ContentInput {
            title: "Torino",
            tags: &[],
            context: None,
            poi_ref: None,
        };
        let result = annotator.annotate(&s, &input);
        assert!(!result.is_degraded());
        assert!(!requeue.observe(OwnedContent::from_input(1, &input), &result, 0));
        assert_eq!(requeue.depth(), 0);
    }

    #[test]
    fn permanently_degraded_items_exhaust_into_the_bucket() {
        let s = store();
        let clock = VirtualClock::new();
        // Outage never ends; cooldowns elapse so every replay re-probes
        // (half-open) and fails again.
        let annotator = annotator_with_outage(&clock, u64::MAX);
        let mut requeue = ReAnnotator::new(3);
        let input = ContentInput {
            title: "Mole Antonelliana",
            tags: &[],
            context: None,
            poi_ref: None,
        };
        let result = annotator.annotate(&s, &input);
        assert!(requeue.observe(OwnedContent::from_input(2, &input), &result, 0));
        for i in 0..2 {
            clock.advance(100_000);
            requeue.replay(&s, &annotator, |_, _| panic!("never completes"));
            let _ = i;
        }
        assert_eq!(requeue.depth(), 0);
        assert_eq!(
            requeue.queue().exhausted().len(),
            1,
            "surfaced, not dropped"
        );
        assert_eq!(
            requeue.telemetry().gauge("reannotate.dlq.exhausted"),
            Some(1)
        );
    }
}
