//! The automatic semantic annotation pipeline (Figure 1).
//!
//! Combines the three analyses of §2.2:
//!
//! * **Location analysis** (§2.2.1): context snapshot → the Geonames
//!   city resource ("the (nearest) city-level resource is returned"),
//!   nearby friends → **local** RDF resources only — the Sindice-based
//!   external linking "was turned off and only local linking was
//!   retained" for privacy, which we model with an off-by-default
//!   switch;
//! * **POI analysis** (§2.2.1): explicit `poi:recs_id` references are
//!   matched to DBpedia via SPARQL on name + location, with
//!   "commercial categories such as restaurants, hotels, etc …
//!   excluded from this analysis";
//! * **Text analysis** (§2.2.2): language identification →
//!   morphological analysis → NP-lemma extraction → semantic broker →
//!   semantic filter → automatic annotation.

use lodify_context::ContextSnapshot;
use lodify_obs::Metrics;
use lodify_rdf::{ns, Iri, Point};
use lodify_store::Store;
use lodify_text::pipeline::{extract_terms, TermList};

use crate::broker::SemanticBroker;
use crate::datasets::{gnr, GRAPH_DBPEDIA};
use crate::filter::{FilterOutcome, SemanticFilter};
use crate::resolvers::{Candidate, Resolver, SindiceResolver, SourceGraph};

/// Annotation of one extracted term.
#[derive(Debug, Clone, PartialEq)]
pub struct TermAnnotation {
    /// The term.
    pub term: String,
    /// The chosen LOD resource, when auto-annotation fired.
    pub resource: Option<Iri>,
    /// Which graph the chosen resource came from.
    pub graph: Option<SourceGraph>,
    /// How many raw candidates the broker produced.
    pub candidates_considered: usize,
    /// Survivors after filtering (>1 means ambiguous, no annotation).
    pub survivors: usize,
}

/// External-identity candidates for one nearby buddy (only populated
/// when the privacy switch is ON).
#[derive(Debug, Clone, PartialEq)]
pub struct BuddyExternalLink {
    /// The buddy's full name as queried.
    pub full_name: String,
    /// Sindice candidates (ambiguous by nature — the reason the paper
    /// turned this off).
    pub candidates: Vec<Candidate>,
}

/// The complete annotation result for one content item.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationResult {
    /// Detected title language.
    pub language: Option<&'static str>,
    /// Geonames city resource from location analysis.
    pub location: Option<Iri>,
    /// Local user resources for nearby buddies.
    pub buddies: Vec<Iri>,
    /// External-identity candidates (empty unless the switch is on).
    pub buddy_external: Vec<BuddyExternalLink>,
    /// DBpedia resource for the explicit POI reference.
    pub poi: Option<Iri>,
    /// Per-term annotations from text analysis.
    pub terms: Vec<TermAnnotation>,
    /// Resolver failures survived during brokering.
    pub resolver_failures: usize,
    /// Resolvers that were unavailable while this item was annotated
    /// (breaker open or retries exhausted). Non-empty means the
    /// annotation is *degraded*: it completed, but with fewer
    /// candidates than a healthy run would have produced.
    pub degraded: Vec<&'static str>,
}

impl AnnotationResult {
    /// All auto-annotated LOD resources (location, POI, term hits).
    pub fn resources(&self) -> Vec<&Iri> {
        self.location
            .iter()
            .chain(self.poi.iter())
            .chain(self.terms.iter().filter_map(|t| t.resource.as_ref()))
            .collect()
    }

    /// Whether any resolver was unavailable during annotation.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// An explicit POI reference attached by the user (`poi:recs_id`).
#[derive(Debug, Clone)]
pub struct PoiRefInput {
    /// POI name from the search provider.
    pub name: String,
    /// Category label ("monument", "restaurant", …).
    pub category: String,
    /// POI location.
    pub point: Point,
}

/// Everything the pipeline needs about one content item.
#[derive(Debug, Clone)]
pub struct ContentInput<'a> {
    /// The user-supplied title.
    pub title: &'a str,
    /// User-supplied plain tags.
    pub tags: &'a [String],
    /// Context snapshot at capture time, if any.
    pub context: Option<&'a ContextSnapshot>,
    /// Explicit POI reference, if any.
    pub poi_ref: Option<PoiRefInput>,
}

/// Annotator configuration.
#[derive(Debug, Clone)]
pub struct AnnotatorConfig {
    /// Link nearby buddies to external identities via Sindice. The
    /// paper turned this off ("the results may be ambiguous and may
    /// trigger privacy concerns") — off by default.
    pub link_buddies_externally: bool,
    /// Exclude commercial POI categories from DBpedia linking (§2.2.1).
    pub exclude_commercial_pois: bool,
}

impl Default for AnnotatorConfig {
    fn default() -> Self {
        AnnotatorConfig {
            link_buddies_externally: false,
            exclude_commercial_pois: true,
        }
    }
}

/// The Figure-1 pipeline.
pub struct Annotator {
    broker: SemanticBroker,
    filter: SemanticFilter,
    config: AnnotatorConfig,
    observability: Option<Metrics>,
}

impl Annotator {
    /// The paper's configuration.
    pub fn standard() -> Annotator {
        Annotator {
            broker: SemanticBroker::standard(),
            filter: SemanticFilter::standard(),
            config: AnnotatorConfig::default(),
            observability: None,
        }
    }

    /// Custom components (ablations, fault injection).
    pub fn new(broker: SemanticBroker, filter: SemanticFilter, config: AnnotatorConfig) -> Self {
        Annotator {
            broker,
            filter,
            config,
            observability: None,
        }
    }

    /// Attaches a metrics registry: the three analyses are timed into
    /// `annotate.location` / `annotate.poi` / `annotate.text`
    /// histograms, and the registry is forwarded to the broker for
    /// per-resolver `broker.call.<name>` timing.
    pub fn set_observability(&mut self, metrics: Metrics) {
        self.broker.set_observability(metrics.clone());
        self.observability = Some(metrics);
    }

    /// Installs a semantic-resolution cache on the backing broker
    /// (see [`crate::cache::SemanticCache`]): repeated terms skip the
    /// resolver fan-out until the store epoch changes.
    pub fn set_semantic_cache(&mut self, cache: std::sync::Arc<crate::cache::SemanticCache>) {
        self.broker.set_cache(cache);
    }

    /// Times `f` into the named histogram when observability is on.
    fn timed<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        match &self.observability {
            Some(metrics) if metrics.is_enabled() => {
                let started = metrics.now_micros();
                let out = f();
                metrics.observe(name, metrics.now_micros().saturating_sub(started));
                out
            }
            _ => f(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnnotatorConfig {
        &self.config
    }

    /// Runs the full pipeline over one content item.
    pub fn annotate(&self, store: &Store, input: &ContentInput<'_>) -> AnnotationResult {
        let (location, buddies, buddy_external) =
            self.timed("annotate.location", || self.location_analysis(store, input));
        let poi = self.timed("annotate.poi", || {
            input
                .poi_ref
                .as_ref()
                .and_then(|poi_ref| self.poi_analysis(store, poi_ref))
        });
        let (language, terms, resolver_failures, degraded) =
            self.timed("annotate.text", || self.text_analysis(store, input));

        AnnotationResult {
            language,
            location,
            buddies,
            buddy_external,
            poi,
            terms,
            resolver_failures,
            degraded,
        }
    }

    /// The broker backing this annotator (breaker state, telemetry).
    pub fn broker(&self) -> &SemanticBroker {
        &self.broker
    }

    /// Location analysis (§2.2.1).
    fn location_analysis(
        &self,
        store: &Store,
        input: &ContentInput<'_>,
    ) -> (Option<Iri>, Vec<Iri>, Vec<BuddyExternalLink>) {
        let Some(context) = input.context else {
            return (None, Vec::new(), Vec::new());
        };
        let location = context.location.as_ref().map(|loc| gnr(loc.geonames_id));
        let buddies: Vec<Iri> = context
            .nearby
            .iter()
            .map(|b| ns::TL_UID.iri(&b.user_id.to_string()))
            .collect();
        let mut external = Vec::new();
        if self.config.link_buddies_externally {
            for buddy in &context.nearby {
                let candidates = SindiceResolver
                    .resolve_term(store, &buddy.full_name, None)
                    .unwrap_or_default();
                external.push(BuddyExternalLink {
                    full_name: buddy.full_name.clone(),
                    candidates,
                });
            }
        }
        (location, buddies, external)
    }

    /// POI analysis (§2.2.1): DBpedia lookup via SPARQL on name,
    /// category and location.
    fn poi_analysis(&self, store: &Store, poi_ref: &PoiRefInput) -> Option<Iri> {
        if self.config.exclude_commercial_pois
            && matches!(poi_ref.category.as_str(), "restaurant" | "hotel" | "cafe")
        {
            return None;
        }
        // The paper: "based on the POI name, category and location
        // derived from the platform, tries to identify the related
        // DBpedia resource using SPARQL".
        let query = format!(
            r#"SELECT DISTINCT ?poi WHERE {{
                 ?poi rdfs:label ?lbl .
                 ?poi geo:geometry ?g .
                 FILTER(str(?lbl) = "{}") .
                 FILTER(bif:st_intersects(?g, "{}", 1.0)) .
               }}"#,
            poi_ref.name.replace('"', "\\\""),
            poi_ref.point.to_wkt(),
        );
        let results = lodify_sparql::execute(store, &query).ok()?;
        results
            .column("poi")
            .into_iter()
            .filter_map(|t| t.as_iri())
            .find(|iri| {
                store.graph_of_term(&lodify_rdf::Term::Iri((*iri).clone())) == Some(GRAPH_DBPEDIA)
            })
            .cloned()
    }

    /// Text analysis (§2.2.2): terms → broker → filter.
    fn text_analysis(
        &self,
        store: &Store,
        input: &ContentInput<'_>,
    ) -> (
        Option<&'static str>,
        Vec<TermAnnotation>,
        usize,
        Vec<&'static str>,
    ) {
        let term_list: TermList = extract_terms(input.title, input.tags);
        let terms: Vec<String> = term_list.terms.iter().map(|t| t.text.clone()).collect();
        let output = self
            .broker
            .resolve(store, &terms, input.title, term_list.language);
        let failures = output.failures.len();
        let annotations = output
            .terms
            .iter()
            .map(|tc| {
                let outcome: FilterOutcome = self.filter.filter(store, &tc.term, &tc.candidates);
                TermAnnotation {
                    term: tc.term.clone(),
                    resource: outcome.chosen.as_ref().map(|c| c.resource.clone()),
                    graph: outcome.chosen.as_ref().map(|c| c.graph),
                    candidates_considered: tc.candidates.len(),
                    survivors: outcome.survivors.len(),
                }
            })
            .collect();
        (
            term_list.language,
            annotations,
            failures,
            output.unavailable,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dbp, load_lod};
    use lodify_context::gazetteer::Gazetteer;
    use lodify_context::ContextPlatform;

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    fn mole_point() -> Point {
        let gaz = Gazetteer::global();
        gaz.poi("Mole_Antonelliana").unwrap().point(gaz)
    }

    fn context_at_mole() -> ContextSnapshot {
        let mut platform = ContextPlatform::new();
        platform
            .buddies_mut()
            .add_user(1, "oscar", "Oscar Rodriguez");
        platform.buddies_mut().add_user(2, "walter", "Walter Goix");
        platform.buddies_mut().add_friend(1, 2);
        platform.buddies_mut().update_position(2, mole_point());
        platform.contextualize(1, 100, Some(mole_point()))
    }

    #[test]
    fn full_pipeline_on_the_paper_example() {
        let s = store();
        let context = context_at_mole();
        let tags = vec!["torino".to_string(), "tramonto".to_string()];
        let input = ContentInput {
            title: "Tramonto alla Mole Antonelliana",
            tags: &tags,
            context: Some(&context),
            poi_ref: Some(PoiRefInput {
                name: "Mole Antonelliana".into(),
                category: "monument".into(),
                point: mole_point(),
            }),
        };
        let result = Annotator::standard().annotate(&s, &input);

        assert_eq!(result.language, Some("it"));
        // Location → Geonames Turin.
        let turin_gn = gnr(Gazetteer::global().city("Turin").unwrap().geonames_id());
        assert_eq!(result.location, Some(turin_gn));
        // Buddy → local resource only.
        assert_eq!(result.buddies.len(), 1);
        assert!(result.buddies[0].as_str().starts_with(ns::TL_UID.base));
        assert!(result.buddy_external.is_empty());
        // POI → DBpedia monument.
        assert_eq!(result.poi, Some(dbp("Mole_Antonelliana")));
        // Term "Mole Antonelliana" auto-annotates; "torino" resolves to
        // Geonames (graph priority).
        let mole = result
            .terms
            .iter()
            .find(|t| t.term == "Mole Antonelliana")
            .expect("term present");
        assert_eq!(mole.resource, Some(dbp("Mole_Antonelliana")));
        let torino = result.terms.iter().find(|t| t.term == "torino").unwrap();
        assert_eq!(torino.graph, Some(SourceGraph::Geonames));
        assert_eq!(result.resolver_failures, 0);
        assert!(result.resources().len() >= 3);
    }

    #[test]
    fn commercial_poi_refs_are_excluded() {
        let s = store();
        let gaz = Gazetteer::global();
        let cambio = gaz.poi("Ristorante_Del_Cambio").unwrap();
        let input = ContentInput {
            title: "",
            tags: &[],
            context: None,
            poi_ref: Some(PoiRefInput {
                name: cambio.name.into(),
                category: "restaurant".into(),
                point: cambio.point(gaz),
            }),
        };
        let result = Annotator::standard().annotate(&s, &input);
        assert_eq!(result.poi, None);

        // With the exclusion off the lookup still finds nothing in
        // DBpedia (commercial POIs only live in LinkedGeoData).
        let lax = Annotator::new(
            SemanticBroker::standard(),
            SemanticFilter::standard(),
            AnnotatorConfig {
                exclude_commercial_pois: false,
                ..AnnotatorConfig::default()
            },
        );
        let result = lax.annotate(&s, &input);
        assert_eq!(result.poi, None);
    }

    #[test]
    fn poi_lookup_requires_colocation() {
        let s = store();
        // Right name, wrong city: no link.
        let paris = Gazetteer::global().city("Paris").unwrap().point();
        let input = ContentInput {
            title: "",
            tags: &[],
            context: None,
            poi_ref: Some(PoiRefInput {
                name: "Mole Antonelliana".into(),
                category: "monument".into(),
                point: paris,
            }),
        };
        let result = Annotator::standard().annotate(&s, &input);
        assert_eq!(result.poi, None);
    }

    #[test]
    fn ambiguous_tag_does_not_auto_annotate() {
        let s = store();
        let tags = vec!["mole".to_string()];
        let input = ContentInput {
            title: "",
            tags: &tags,
            context: None,
            poi_ref: None,
        };
        let result = Annotator::standard().annotate(&s, &input);
        let mole = result.terms.iter().find(|t| t.term == "mole").unwrap();
        assert_eq!(mole.resource, None, "homonyms must block auto-annotation");
        assert!(mole.survivors > 1);
    }

    #[test]
    fn buddy_external_linking_switch() {
        let s = store();
        let context = context_at_mole();
        let input = ContentInput {
            title: "",
            tags: &[],
            context: Some(&context),
            poi_ref: None,
        };
        let on = Annotator::new(
            SemanticBroker::standard(),
            SemanticFilter::standard(),
            AnnotatorConfig {
                link_buddies_externally: true,
                ..AnnotatorConfig::default()
            },
        );
        let result = on.annotate(&s, &input);
        assert_eq!(result.buddy_external.len(), 1);
        assert_eq!(result.buddy_external[0].full_name, "Walter Goix");
    }

    #[test]
    fn no_context_no_location() {
        let s = store();
        let input = ContentInput {
            title: "Weekend in Paris",
            tags: &[],
            context: None,
            poi_ref: None,
        };
        let result = Annotator::standard().annotate(&s, &input);
        assert!(result.location.is_none());
        assert!(result.buddies.is_empty());
        // "Paris" is ambiguous in DBpedia (city vs mythology) but the
        // Geonames graph wins priority and has exactly one Paris.
        let paris = result.terms.iter().find(|t| t.term == "Paris").unwrap();
        assert_eq!(paris.graph, Some(SourceGraph::Geonames));
    }
}
