//! Sharded memoization of semantic-broker resolutions.
//!
//! Slimani's semantic-annotation survey observes that term-level
//! annotation results are highly reusable across documents, and the
//! platform's uploads are exactly that workload: the same city names,
//! POIs and friends recur across most pictures. [`SemanticCache`]
//! memoizes the per-term resolver fan-out of
//! [`crate::broker::SemanticBroker::resolve`] — the candidate set
//! gathered for one `(lowercased term, lang)` pair — so repeated terms
//! skip every resolver call.
//!
//! Staleness is governed the same way as the materialized-album cache
//! in the core crate: every entry remembers the [`lodify_store::Store`]
//! mutation epoch it was resolved against, and a lookup only hits when
//! that epoch still matches. Any store mutation — a fresh LOD snapshot
//! load, an upload's semanticization, a recorded annotation — bumps the
//! epoch and implicitly invalidates every cached candidate set, so the
//! broker can never serve candidates computed against data that has
//! since changed. Because WAL recovery replays inserts, epochs (and
//! with them cache validity semantics) survive a reboot.
//!
//! The cache is sharded: keys hash to one of a fixed set of
//! mutex-guarded shards, so concurrent prepare-stage workers contend
//! only when they resolve terms landing in the same shard. Each shard
//! is a small LRU — admission beyond capacity evicts the least
//! recently used entry of that shard.
//!
//! # Example
//!
//! ```
//! use lodify_lod::cache::SemanticCache;
//!
//! let cache = SemanticCache::new();
//! assert!(cache.lookup("torino", Some("it"), 7).is_none()); // cold
//! cache.admit("torino".into(), Some("it"), 7, Vec::new());
//! assert!(cache.lookup("torino", Some("it"), 7).is_some()); // warm
//! // A store mutation bumped the epoch: the entry is stale.
//! assert!(cache.lookup("torino", Some("it"), 8).is_none());
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 2, 1));
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::resolvers::Candidate;

/// Default total entry capacity of [`SemanticCache::new`], spread
/// across the shards. Generous for the paper's vocabulary (cities,
/// POIs, folksonomy tags) while bounding memory on adversarial input.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Number of independently locked shards. A power of two, so the shard
/// index is a cheap mask of the key hash.
const SHARDS: usize = 16;

/// One memoized resolution: the candidate set plus the store epoch it
/// was computed against and an LRU tick.
struct Entry {
    candidates: Vec<Candidate>,
    epoch: u64,
    last_used: u64,
}

/// One mutex-guarded shard: a keyed entry map plus its LRU clock.
#[derive(Default)]
struct Shard {
    entries: HashMap<(String, Option<String>), Entry>,
    tick: u64,
}

/// Counter snapshot of a [`SemanticCache`] (all monotonic except
/// `entries`, the current population).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemanticCacheStats {
    /// Lookups answered from a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing usable (cold or stale).
    pub misses: u64,
    /// Entries dropped because their epoch no longer matched.
    pub invalidations: u64,
    /// Entries dropped by LRU pressure on admission.
    pub evictions: u64,
    /// Entries currently cached across all shards.
    pub entries: usize,
}

impl SemanticCacheStats {
    /// Hit ratio over all lookups so far (0.0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded LRU memoizing broker candidate sets per
/// `(lowercased term, lang)`, invalidated by store-epoch mismatch.
///
/// All methods take `&self`; shards are internally locked, so one
/// cache instance can serve many concurrent prepare-stage workers.
pub struct SemanticCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SemanticCache {
    fn default() -> Self {
        SemanticCache::new()
    }
}

impl SemanticCache {
    /// A cache with the default capacity ([`DEFAULT_CAPACITY`]).
    pub fn new() -> SemanticCache {
        SemanticCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounding the total entry count to `capacity` (rounded
    /// up to at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> SemanticCache {
        SemanticCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, term_lower: &str, lang: Option<&str>) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        term_lower.hash(&mut hasher);
        lang.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns the memoized candidate set for the term iff it was
    /// resolved against exactly `epoch`. A stale entry is removed
    /// (counted as an invalidation) and the lookup is a miss.
    pub fn lookup(
        &self,
        term_lower: &str,
        lang: Option<&str>,
        epoch: u64,
    ) -> Option<Vec<Candidate>> {
        let mut shard = lock(self.shard(term_lower, lang));
        shard.tick += 1;
        let tick = shard.tick;
        let key = (term_lower.to_string(), lang.map(str::to_string));
        if let Some(entry) = shard.entries.get_mut(&key) {
            if entry.epoch == epoch {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.candidates.clone());
            }
            shard.entries.remove(&key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Admits a candidate set resolved against `epoch`, evicting the
    /// shard's least recently used entry when the shard is full. The
    /// broker only admits *complete* resolutions — terms whose fan-out
    /// saw a resolver failure or an open breaker are never cached, so a
    /// degraded answer cannot outlive the outage that produced it.
    pub fn admit(
        &self,
        term_lower: String,
        lang: Option<&str>,
        epoch: u64,
        candidates: Vec<Candidate>,
    ) {
        let mut shard = lock(self.shard(&term_lower, lang));
        shard.tick += 1;
        let tick = shard.tick;
        let key = (term_lower, lang.map(str::to_string));
        if shard.entries.len() >= self.capacity_per_shard && !shard.entries.contains_key(&key) {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                candidates,
                epoch,
                last_used: tick,
            },
        );
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock(shard).entries.clear();
        }
    }

    /// Counter snapshot plus current population.
    pub fn stats(&self) -> SemanticCacheStats {
        SemanticCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| lock(s).entries.len()).sum(),
        }
    }
}

impl std::fmt::Debug for SemanticCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SemanticCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// Poison-tolerant lock (a panicking worker must not wedge the cache).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolvers::SourceGraph;
    use lodify_rdf::Iri;

    fn candidate(label: &str) -> Candidate {
        Candidate {
            resource: Iri::new(format!("http://dbpedia.org/resource/{label}")).unwrap(),
            label: label.to_string(),
            graph: SourceGraph::DBpedia,
            score: 1.0,
            types: Vec::new(),
            resolver: "dbpedia",
        }
    }

    #[test]
    fn warm_lookup_returns_the_admitted_candidates() {
        let cache = SemanticCache::new();
        assert!(cache.lookup("torino", Some("it"), 3).is_none());
        cache.admit("torino".into(), Some("it"), 3, vec![candidate("Turin")]);
        let hit = cache.lookup("torino", Some("it"), 3).unwrap();
        assert_eq!(hit, vec![candidate("Turin")]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn language_is_part_of_the_key() {
        let cache = SemanticCache::new();
        cache.admit("torino".into(), Some("it"), 0, vec![candidate("Turin")]);
        assert!(cache.lookup("torino", Some("en"), 0).is_none());
        assert!(cache.lookup("torino", None, 0).is_none());
        assert!(cache.lookup("torino", Some("it"), 0).is_some());
    }

    #[test]
    fn epoch_bump_invalidates_and_recovers() {
        let cache = SemanticCache::new();
        cache.admit("torino".into(), Some("it"), 5, vec![candidate("Turin")]);
        // The store mutated: the entry must not be served.
        assert!(cache.lookup("torino", Some("it"), 6).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().entries, 0);
        // Re-resolution at the new epoch re-warms the slot.
        cache.admit("torino".into(), Some("it"), 6, vec![candidate("Turin")]);
        assert!(cache.lookup("torino", Some("it"), 6).is_some());
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        // One entry per shard: any second admission to a shard evicts.
        let cache = SemanticCache::with_capacity(SHARDS);
        let mut colliding: Vec<String> = Vec::new();
        // Find three keys landing in the same shard.
        let target = {
            let mut hasher = DefaultHasher::new();
            "k0".hash(&mut hasher);
            Option::<&str>::None.hash(&mut hasher);
            (hasher.finish() as usize) & (SHARDS - 1)
        };
        for i in 0.. {
            let key = format!("k{i}");
            let mut hasher = DefaultHasher::new();
            key.hash(&mut hasher);
            Option::<&str>::None.hash(&mut hasher);
            if (hasher.finish() as usize) & (SHARDS - 1) == target {
                colliding.push(key);
                if colliding.len() == 3 {
                    break;
                }
            }
        }
        cache.admit(colliding[0].clone(), None, 0, Vec::new());
        cache.admit(colliding[1].clone(), None, 0, Vec::new());
        assert_eq!(cache.stats().evictions, 1, "first key evicted");
        assert!(cache.lookup(&colliding[0], None, 0).is_none());
        assert!(cache.lookup(&colliding[1], None, 0).is_some());
        // Touch [1], admit [2]: LRU victim would still be [1]'s slot
        // only if untouched — the recently used entry must survive.
        cache.admit(colliding[2].clone(), None, 0, Vec::new());
        assert!(cache.lookup(&colliding[2], None, 0).is_some());
    }

    #[test]
    fn clear_empties_without_resetting_counters() {
        let cache = SemanticCache::new();
        cache.admit("a".into(), None, 0, Vec::new());
        cache.lookup("a", None, 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }
}
