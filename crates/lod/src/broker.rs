//! The semantic brokering component.
//!
//! "The next step involves a semantic brokering component. This
//! component is assisted by a set of resolvers … For term-based
//! analysis, each word of the previously-computed list is individually
//! processed to identify a list of candidate LOD resources … we also
//! rely on full-text based resolvers such as Evri and Zemanta to
//! derive additional candidates." (§2.2.2)

use std::sync::{Arc, Mutex};

use lodify_obs::Metrics;
use lodify_resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, DetRng, RetryPolicy, Telemetry, VirtualClock,
};
use lodify_store::Store;

use crate::cache::SemanticCache;
use crate::resolvers::{
    Candidate, DbpediaResolver, EvriResolver, GeonamesResolver, Resolver, ResolverError,
    SindiceResolver, ZemantaResolver,
};

/// Candidates gathered for one term.
#[derive(Debug, Clone)]
pub struct TermCandidates {
    /// The (multi)word as extracted by text analysis.
    pub term: String,
    /// All candidates from every resolver (deduplication happens in
    /// the semantic filter).
    pub candidates: Vec<Candidate>,
}

/// Broker output for one content item.
#[derive(Debug, Clone)]
pub struct BrokerOutput {
    /// Per-term candidate lists, in term order.
    pub terms: Vec<TermCandidates>,
    /// Resolver failures encountered (the broker never fails whole).
    pub failures: Vec<ResolverError>,
    /// Resolvers that contributed nothing to this item: their breaker
    /// was open, or every retried call failed. Items annotated with a
    /// non-empty list are *degraded* and eligible for re-annotation.
    pub unavailable: Vec<&'static str>,
    /// Full-text candidates whose label matched no extracted term.
    /// They still carry no annotation, but the count is surfaced
    /// instead of silently dropping them.
    pub fulltext_unattached: usize,
}

/// Retry/breaker tuning for a resilient broker.
#[derive(Debug, Clone, Default)]
pub struct BrokerResilienceConfig {
    /// Retry policy applied to each resolver call.
    pub retry: RetryPolicy,
    /// Breaker tuning applied per resolver.
    pub breaker: BreakerConfig,
    /// Seed for the retry-jitter RNG.
    pub seed: u64,
}

/// Per-resolver breakers + retry machinery, over virtual time.
///
/// `resolve` takes `&self`, so the mutable pieces (breakers, the
/// jitter RNG) live behind mutexes; the broker is still `Send + Sync`.
struct Resilience {
    clock: VirtualClock,
    retry: RetryPolicy,
    breakers: Vec<Mutex<CircuitBreaker>>,
    rng: Mutex<DetRng>,
    telemetry: Telemetry,
}

/// Fans terms out to a resolver set and collects candidates.
pub struct SemanticBroker {
    resolvers: Vec<Box<dyn Resolver>>,
    resilience: Option<Resilience>,
    observability: Option<Metrics>,
    /// Precomputed `broker.call.<name>` histogram keys, one per
    /// resolver — the call hot path must not allocate per timing.
    call_metric_names: Vec<String>,
    /// Optional memoization of per-term fan-outs (off by default so
    /// resolver-call telemetry stays exact for tests that count calls).
    cache: Option<Arc<SemanticCache>>,
}

impl SemanticBroker {
    /// The paper's resolver set: DBpedia, Geonames, Sindice (term),
    /// Evri, Zemanta (full-text).
    pub fn standard() -> SemanticBroker {
        SemanticBroker::new(vec![
            Box::new(DbpediaResolver),
            Box::new(GeonamesResolver),
            Box::new(SindiceResolver),
            Box::new(EvriResolver),
            Box::new(ZemantaResolver),
        ])
    }

    /// A broker over a custom resolver set (ablations, fault injection).
    pub fn new(resolvers: Vec<Box<dyn Resolver>>) -> SemanticBroker {
        let call_metric_names = resolvers
            .iter()
            .map(|r| format!("broker.call.{}", r.name()))
            .collect();
        SemanticBroker {
            resolvers,
            resilience: None,
            observability: None,
            call_metric_names,
            cache: None,
        }
    }

    /// Installs a semantic-resolution cache: per-term fan-outs are
    /// memoized by `(lowercased term, lang)` and served back as long
    /// as the store epoch they were resolved against is unchanged.
    /// Degraded resolutions (any failure or open breaker during the
    /// term's fan-out) are never admitted.
    pub fn set_cache(&mut self, cache: Arc<SemanticCache>) {
        self.cache = Some(cache);
    }

    /// Builder form of [`SemanticBroker::set_cache`].
    pub fn with_cache(mut self, cache: Arc<SemanticCache>) -> SemanticBroker {
        self.set_cache(cache);
        self
    }

    /// The installed semantic-resolution cache, if any.
    pub fn cache(&self) -> Option<&Arc<SemanticCache>> {
        self.cache.as_ref()
    }

    /// Attaches a metrics registry: every guarded resolver call (with
    /// or without resilience) is timed into a `broker.call.<name>`
    /// histogram.
    pub fn set_observability(&mut self, metrics: Metrics) {
        self.observability = Some(metrics);
    }

    /// Builder form of [`SemanticBroker::set_observability`].
    pub fn with_observability(mut self, metrics: Metrics) -> SemanticBroker {
        self.set_observability(metrics);
        self
    }

    /// Adds retry + per-resolver circuit breakers over `clock`. A
    /// resolver whose breaker is open is skipped for every remaining
    /// term instead of being re-polled (and re-timed-out) per term.
    pub fn with_resilience(
        mut self,
        clock: VirtualClock,
        config: BrokerResilienceConfig,
    ) -> SemanticBroker {
        let breakers = self
            .resolvers
            .iter()
            .map(|_| Mutex::new(CircuitBreaker::new(config.breaker.clone())))
            .collect();
        self.resilience = Some(Resilience {
            clock,
            retry: config.retry,
            breakers,
            rng: Mutex::new(DetRng::seed_from_u64(config.seed).fork("broker-retry")),
            telemetry: Telemetry::new(),
        });
        self
    }

    /// Resolver names, in order.
    pub fn resolver_names(&self) -> Vec<&'static str> {
        self.resolvers.iter().map(|r| r.name()).collect()
    }

    /// Breaker state for a resolver (`None` without resilience or for
    /// unknown names).
    pub fn breaker_state(&self, resolver: &str) -> Option<BreakerState> {
        let resilience = self.resilience.as_ref()?;
        let idx = self.resolvers.iter().position(|r| r.name() == resolver)?;
        Some(lock(&resilience.breakers[idx]).state())
    }

    /// Telemetry written by the resilient call path (`None` without
    /// resilience): `broker.calls.*`, `broker.retries.*`,
    /// `broker.failures.*`, `broker.skipped.*` counters and
    /// `breaker.<name>.state` / `breaker.<name>.opened` gauges.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.resilience.as_ref().map(|r| &r.telemetry)
    }

    /// The virtual clock driving breaker cooldowns (`None` without
    /// resilience).
    pub fn clock(&self) -> Option<&VirtualClock> {
        self.resilience.as_ref().map(|r| &r.clock)
    }

    /// Mirrors a cache hit/miss into the metrics registry, when one is
    /// attached (the cache keeps its own exact counters regardless).
    fn count_cache(&self, name: &str) {
        if let Some(metrics) = &self.observability {
            if metrics.is_enabled() {
                metrics.incr(name);
            }
        }
    }

    /// One guarded resolver call, timed into `broker.call.<name>` when
    /// a metrics registry is attached.
    fn call(
        &self,
        idx: usize,
        failures: &mut Vec<ResolverError>,
        unavailable: &mut Vec<&'static str>,
        op: impl FnMut() -> Result<Vec<Candidate>, ResolverError>,
    ) -> Vec<Candidate> {
        let timed = match &self.observability {
            Some(metrics) if metrics.is_enabled() => Some((metrics, metrics.now_micros())),
            _ => None,
        };
        let hits = self.call_guarded(idx, failures, unavailable, op);
        if let Some((metrics, started)) = timed {
            metrics.observe(
                &self.call_metric_names[idx],
                metrics.now_micros().saturating_sub(started),
            );
        }
        hits
    }

    /// The guard itself: breaker check, retries with virtual backoff,
    /// telemetry. Without resilience this is a single bare call,
    /// preserving the original broker behaviour.
    fn call_guarded(
        &self,
        idx: usize,
        failures: &mut Vec<ResolverError>,
        unavailable: &mut Vec<&'static str>,
        mut op: impl FnMut() -> Result<Vec<Candidate>, ResolverError>,
    ) -> Vec<Candidate> {
        let name = self.resolvers[idx].name();
        let Some(res) = &self.resilience else {
            return match op() {
                Ok(hits) => hits,
                Err(e) => {
                    failures.push(e);
                    Vec::new()
                }
            };
        };

        let mut breaker = lock(&res.breakers[idx]);
        if !breaker.allow(res.clock.now_ms()) {
            res.telemetry.incr(&format!("broker.skipped.{name}"));
            if !unavailable.contains(&name) {
                unavailable.push(name);
            }
            return Vec::new();
        }

        let mut rng = lock(&res.rng);
        let result = res.retry.run(&res.clock, &mut rng, |attempt| {
            res.telemetry.incr(&format!("broker.calls.{name}"));
            if attempt > 1 {
                res.telemetry.incr(&format!("broker.retries.{name}"));
            }
            if !breaker.allow(res.clock.now_ms()) {
                // Tripped open mid-retry (or by a concurrent item):
                // stop hammering the dependency.
                return Err(ResolverError {
                    resolver: name,
                    message: "circuit open".into(),
                });
            }
            match op() {
                Ok(hits) => {
                    breaker.on_success(res.clock.now_ms());
                    Ok(hits)
                }
                Err(e) => {
                    res.telemetry.incr(&format!("broker.failures.{name}"));
                    breaker.on_failure(res.clock.now_ms());
                    Err(e)
                }
            }
        });
        res.telemetry.set_gauge(
            &format!("breaker.{name}.state"),
            breaker_gauge(breaker.state()),
        );
        res.telemetry
            .set_gauge(&format!("breaker.{name}.opened"), breaker.times_opened());
        match result {
            Ok(outcome) => outcome.value,
            Err(err) => {
                if !unavailable.contains(&name) {
                    unavailable.push(name);
                }
                failures.push(err.error);
                Vec::new()
            }
        }
    }

    /// Resolves each term individually, then runs full-text resolution
    /// over the whole title and attaches those extra candidates to the
    /// term whose text matches the candidate's label (context-assisted
    /// NER, §2.2.2).
    pub fn resolve(
        &self,
        store: &Store,
        terms: &[String],
        title: &str,
        lang: Option<&str>,
    ) -> BrokerOutput {
        let mut failures = Vec::new();
        let mut unavailable = Vec::new();
        // Lowercase every term once up front; the fulltext attach loop
        // below compares against these instead of re-lowercasing the
        // term for every candidate.
        let lowered: Vec<String> = terms.iter().map(|t| t.to_lowercase()).collect();
        // The cache key includes the store mutation epoch the fan-out
        // ran against: any store change between resolutions makes every
        // older entry stale, so candidates never outlive the data they
        // were derived from.
        let epoch = store.epoch();
        let mut out: Vec<TermCandidates> = Vec::with_capacity(terms.len());
        for (term, term_lower) in terms.iter().zip(&lowered) {
            if let Some(cache) = &self.cache {
                if let Some(candidates) = cache.lookup(term_lower, lang, epoch) {
                    self.count_cache("semantic.cache.hits");
                    out.push(TermCandidates {
                        term: term.clone(),
                        candidates,
                    });
                    continue;
                }
                self.count_cache("semantic.cache.misses");
            }
            let failures_before = failures.len();
            let mut candidates = Vec::new();
            for idx in 0..self.resolvers.len() {
                let mut hits = self.call(idx, &mut failures, &mut unavailable, || {
                    self.resolvers[idx].resolve_term(store, term, lang)
                });
                candidates.append(&mut hits);
            }
            if let Some(cache) = &self.cache {
                // Only complete fan-outs are admitted: a term resolved
                // while a resolver was failing or skipped would pin its
                // degraded candidate set past the outage.
                if failures.len() == failures_before && unavailable.is_empty() {
                    cache.admit(term_lower.clone(), lang, epoch, candidates.clone());
                }
            }
            out.push(TermCandidates {
                term: term.clone(),
                candidates,
            });
        }

        let mut fulltext_unattached = 0;
        if !title.is_empty() {
            for idx in 0..self.resolvers.len() {
                let hits = self.call(idx, &mut failures, &mut unavailable, || {
                    self.resolvers[idx].resolve_fulltext(store, title, lang)
                });
                for candidate in hits {
                    let label_lower = candidate.label.to_lowercase();
                    match lowered.iter().position(|t| *t == label_lower) {
                        Some(pos) => {
                            if !out[pos].candidates.contains(&candidate) {
                                out[pos].candidates.push(candidate);
                            }
                        }
                        None => fulltext_unattached += 1,
                    }
                }
            }
        }
        BrokerOutput {
            terms: out,
            failures,
            unavailable,
            fulltext_unattached,
        }
    }
}

/// Poison-tolerant lock (a panicking caller must not wedge the broker).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Breaker state as a gauge value: 0 closed, 1 half-open, 2 open.
fn breaker_gauge(state: BreakerState) -> u64 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_lod;
    use crate::resolvers::{FaultInjectedResolver, FlakyResolver};
    use lodify_context::gazetteer::Gazetteer;
    use lodify_resilience::FaultPlan;

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    #[test]
    fn standard_broker_gathers_candidates_per_term() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(
            &s,
            &["Mole Antonelliana".into(), "torino".into()],
            "Tramonto alla Mole Antonelliana",
            Some("it"),
        );
        assert!(output.failures.is_empty());
        assert_eq!(output.terms.len(), 2);
        assert!(
            !output.terms[0].candidates.is_empty(),
            "monument candidates"
        );
        assert!(!output.terms[1].candidates.is_empty(), "city candidates");
        // City term collects both Geonames and DBpedia candidates.
        let graphs: std::collections::HashSet<_> =
            output.terms[1].candidates.iter().map(|c| c.graph).collect();
        assert!(graphs.contains(&crate::resolvers::SourceGraph::Geonames));
        assert!(graphs.contains(&crate::resolvers::SourceGraph::DBpedia));
    }

    #[test]
    fn fulltext_candidates_attach_to_matching_terms() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(
            &s,
            &["Mole Antonelliana".into()],
            "Tramonto alla Mole Antonelliana",
            Some("it"),
        );
        assert!(
            output.terms[0]
                .candidates
                .iter()
                .any(|c| c.resolver == "evri"),
            "evri fulltext candidate attached"
        );
    }

    #[test]
    fn broker_survives_resolver_outages() {
        let s = store();
        let broker = SemanticBroker::new(vec![
            Box::new(FlakyResolver::new(DbpediaResolver, 1)), // always fails
            Box::new(GeonamesResolver),
        ]);
        let output = broker.resolve(&s, &["Torino".into()], "", Some("it"));
        assert_eq!(output.failures.len(), 1);
        assert!(
            !output.terms[0].candidates.is_empty(),
            "geonames still answered"
        );
    }

    #[test]
    fn empty_terms_produce_empty_output() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(&s, &[], "", None);
        assert!(output.terms.is_empty());
        assert!(output.failures.is_empty());
        assert!(output.unavailable.is_empty());
        assert_eq!(output.fulltext_unattached, 0);
    }

    #[test]
    fn unattached_fulltext_candidates_are_counted() {
        let s = store();
        let broker = SemanticBroker::standard();
        // Title mentions the monument but the term list doesn't, so the
        // fulltext candidates have nowhere to attach.
        let output = broker.resolve(
            &s,
            &["tramonto".into()],
            "Tramonto alla Mole Antonelliana",
            Some("it"),
        );
        assert!(
            output.fulltext_unattached > 0,
            "dropped candidates surfaced"
        );
    }

    #[test]
    fn breaker_opens_and_stops_polling_a_dead_resolver() {
        let s = store();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("resolver:dbpedia", 0, u64::MAX)
            .build(clock.clone());
        let broker = SemanticBroker::new(vec![
            Box::new(FaultInjectedResolver::new(DbpediaResolver, plan)),
            Box::new(GeonamesResolver),
        ])
        .with_resilience(
            clock,
            BrokerResilienceConfig {
                retry: RetryPolicy {
                    jitter: 0.0,
                    ..RetryPolicy::default()
                },
                ..BrokerResilienceConfig::default()
            },
        );
        let terms: Vec<String> = (0..10).map(|i| format!("term{i}")).collect();
        let output = broker.resolve(&s, &terms, "", Some("it"));

        assert_eq!(broker.breaker_state("dbpedia"), Some(BreakerState::Open));
        assert!(output.unavailable.contains(&"dbpedia"));
        assert_eq!(broker.breaker_state("geonames"), Some(BreakerState::Closed));
        // Default policy: 3 attempts/call, breaker trips after 3
        // consecutive failures → exactly one retried call reaches the
        // dead resolver; the other 9 terms are skipped by the breaker.
        let telemetry = broker.telemetry().unwrap();
        assert_eq!(telemetry.counter("broker.calls.dbpedia"), 3);
        assert_eq!(telemetry.counter("broker.skipped.dbpedia"), 9);
        assert_eq!(telemetry.gauge("breaker.dbpedia.state"), Some(2));
        assert_eq!(telemetry.gauge("breaker.dbpedia.opened"), Some(1));
        // Dead resolver never starves the healthy one.
        assert!(output.terms.iter().all(|tc| tc.term.starts_with("term")));
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let s = store();
        let clock = VirtualClock::new();
        // Fails every 2nd call: each term's first attempt may fail but
        // a retry lands.
        let broker = SemanticBroker::new(vec![Box::new(FlakyResolver::new(GeonamesResolver, 2))])
            .with_resilience(clock, BrokerResilienceConfig::default());
        let output = broker.resolve(&s, &["Torino".into(), "Paris".into()], "", None);
        assert!(output.failures.is_empty(), "retries absorbed the flakiness");
        assert!(output.unavailable.is_empty());
        assert!(!output.terms[0].candidates.is_empty());
        assert!(
            broker
                .telemetry()
                .unwrap()
                .counter("broker.retries.geonames")
                >= 1
        );
    }

    #[test]
    fn cached_resolution_matches_cold_and_skips_resolver_calls() {
        let s = store();
        let cache = Arc::new(SemanticCache::new());
        let clock = VirtualClock::new();
        let broker =
            SemanticBroker::new(vec![Box::new(DbpediaResolver), Box::new(GeonamesResolver)])
                .with_resilience(clock, BrokerResilienceConfig::default())
                .with_cache(cache.clone());
        let terms: Vec<String> = vec!["Mole Antonelliana".into(), "torino".into()];
        let cold = broker.resolve(&s, &terms, "", Some("it"));
        let telemetry = broker.telemetry().unwrap();
        let calls_cold =
            telemetry.counter("broker.calls.dbpedia") + telemetry.counter("broker.calls.geonames");
        let warm = broker.resolve(&s, &terms, "", Some("it"));
        let calls_warm =
            telemetry.counter("broker.calls.dbpedia") + telemetry.counter("broker.calls.geonames");
        assert_eq!(
            calls_cold, calls_warm,
            "warm resolve made no resolver calls"
        );
        for (c, w) in cold.terms.iter().zip(&warm.terms) {
            assert_eq!(c.term, w.term);
            assert_eq!(c.candidates, w.candidates, "warm candidates equal cold");
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
    }

    #[test]
    fn store_mutation_invalidates_cached_resolutions() {
        use lodify_rdf::{ns, Term, Triple};
        let mut s = store();
        let cache = Arc::new(SemanticCache::new());
        let broker = SemanticBroker::standard().with_cache(cache.clone());
        broker.resolve(&s, &["torino".into()], "", Some("it"));
        assert_eq!(cache.stats().entries, 1);
        // Any store mutation bumps the epoch; the next resolve must
        // re-run the fan-out instead of serving the stale entry.
        s.insert_default(&Triple::spo(
            "http://t/new",
            ns::iri::rdf_type().as_str(),
            Term::Iri(ns::iri::microblog_post()),
        ));
        broker.resolve(&s, &["torino".into()], "", Some("it"));
        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "stale entry never served");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1, "re-admitted at the new epoch");
    }

    #[test]
    fn outage_resolutions_are_never_cached_and_recovery_warms() {
        let s = store();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("resolver:geonames", 0, 5_000)
            .build(clock.clone());
        let cache = Arc::new(SemanticCache::new());
        let broker = SemanticBroker::new(vec![Box::new(FaultInjectedResolver::new(
            GeonamesResolver,
            plan,
        ))])
        .with_resilience(clock.clone(), BrokerResilienceConfig::default())
        .with_cache(cache.clone());

        // Mid-outage: the fan-out fails, the breaker opens — nothing
        // may be admitted, or the degraded answer would outlive the
        // outage.
        broker.resolve(&s, &["Torino".into()], "", None);
        assert_eq!(broker.breaker_state("geonames"), Some(BreakerState::Open));
        assert_eq!(cache.stats().entries, 0, "failed fan-out not cached");
        // Breaker-skipped terms are equally uncacheable.
        broker.resolve(&s, &["Torino".into()], "", None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "skipped fan-out not cached");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);

        // Outage and cooldown pass: the probe succeeds, the complete
        // resolution is admitted, and repeats hit without new calls.
        clock.set(6_000);
        let recovered = broker.resolve(&s, &["Torino".into()], "", None);
        assert!(!recovered.terms[0].candidates.is_empty());
        assert_eq!(cache.stats().entries, 1);
        let telemetry = broker.telemetry().unwrap();
        let calls = telemetry.counter("broker.calls.geonames");
        let warm = broker.resolve(&s, &["Torino".into()], "", None);
        assert_eq!(telemetry.counter("broker.calls.geonames"), calls);
        assert_eq!(warm.terms[0].candidates, recovered.terms[0].candidates);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_success() {
        let s = store();
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder()
            .outage("resolver:geonames", 0, 5_000)
            .build(clock.clone());
        let broker = SemanticBroker::new(vec![Box::new(FaultInjectedResolver::new(
            GeonamesResolver,
            plan,
        ))])
        .with_resilience(clock.clone(), BrokerResilienceConfig::default());

        broker.resolve(&s, &["Torino".into()], "", None);
        assert_eq!(broker.breaker_state("geonames"), Some(BreakerState::Open));

        // Cooldown passes *and* the outage window ends → probe succeeds.
        clock.set(6_000);
        let output = broker.resolve(&s, &["Torino".into()], "", None);
        assert_eq!(broker.breaker_state("geonames"), Some(BreakerState::Closed));
        assert!(output.unavailable.is_empty());
        assert!(!output.terms[0].candidates.is_empty());
    }
}
