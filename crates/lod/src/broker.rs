//! The semantic brokering component.
//!
//! "The next step involves a semantic brokering component. This
//! component is assisted by a set of resolvers … For term-based
//! analysis, each word of the previously-computed list is individually
//! processed to identify a list of candidate LOD resources … we also
//! rely on full-text based resolvers such as Evri and Zemanta to
//! derive additional candidates." (§2.2.2)

use lodify_store::Store;

use crate::resolvers::{
    Candidate, DbpediaResolver, EvriResolver, GeonamesResolver, Resolver, ResolverError,
    SindiceResolver, ZemantaResolver,
};

/// Candidates gathered for one term.
#[derive(Debug, Clone)]
pub struct TermCandidates {
    /// The (multi)word as extracted by text analysis.
    pub term: String,
    /// All candidates from every resolver (deduplication happens in
    /// the semantic filter).
    pub candidates: Vec<Candidate>,
}

/// Broker output for one content item.
#[derive(Debug, Clone)]
pub struct BrokerOutput {
    /// Per-term candidate lists, in term order.
    pub terms: Vec<TermCandidates>,
    /// Resolver failures encountered (the broker never fails whole).
    pub failures: Vec<ResolverError>,
}

/// Fans terms out to a resolver set and collects candidates.
pub struct SemanticBroker {
    resolvers: Vec<Box<dyn Resolver>>,
}

impl SemanticBroker {
    /// The paper's resolver set: DBpedia, Geonames, Sindice (term),
    /// Evri, Zemanta (full-text).
    pub fn standard() -> SemanticBroker {
        SemanticBroker {
            resolvers: vec![
                Box::new(DbpediaResolver),
                Box::new(GeonamesResolver),
                Box::new(SindiceResolver),
                Box::new(EvriResolver),
                Box::new(ZemantaResolver),
            ],
        }
    }

    /// A broker over a custom resolver set (ablations, fault injection).
    pub fn new(resolvers: Vec<Box<dyn Resolver>>) -> SemanticBroker {
        SemanticBroker { resolvers }
    }

    /// Resolver names, in order.
    pub fn resolver_names(&self) -> Vec<&'static str> {
        self.resolvers.iter().map(|r| r.name()).collect()
    }

    /// Resolves each term individually, then runs full-text resolution
    /// over the whole title and attaches those extra candidates to the
    /// term whose text matches the candidate's label (context-assisted
    /// NER, §2.2.2).
    pub fn resolve(
        &self,
        store: &Store,
        terms: &[String],
        title: &str,
        lang: Option<&str>,
    ) -> BrokerOutput {
        let mut failures = Vec::new();
        let mut out: Vec<TermCandidates> = terms
            .iter()
            .map(|term| {
                let mut candidates = Vec::new();
                for resolver in &self.resolvers {
                    match resolver.resolve_term(store, term, lang) {
                        Ok(mut hits) => candidates.append(&mut hits),
                        Err(e) => failures.push(e),
                    }
                }
                TermCandidates {
                    term: term.clone(),
                    candidates,
                }
            })
            .collect();

        if !title.is_empty() {
            for resolver in &self.resolvers {
                match resolver.resolve_fulltext(store, title, lang) {
                    Ok(hits) => {
                        for candidate in hits {
                            if let Some(slot) = out.iter_mut().find(|tc| {
                                tc.term.to_lowercase() == candidate.label.to_lowercase()
                            }) {
                                if !slot.candidates.contains(&candidate) {
                                    slot.candidates.push(candidate);
                                }
                            }
                        }
                    }
                    Err(e) => failures.push(e),
                }
            }
        }
        BrokerOutput {
            terms: out,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_lod;
    use crate::resolvers::FlakyResolver;
    use lodify_context::gazetteer::Gazetteer;

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    #[test]
    fn standard_broker_gathers_candidates_per_term() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(
            &s,
            &["Mole Antonelliana".into(), "torino".into()],
            "Tramonto alla Mole Antonelliana",
            Some("it"),
        );
        assert!(output.failures.is_empty());
        assert_eq!(output.terms.len(), 2);
        assert!(!output.terms[0].candidates.is_empty(), "monument candidates");
        assert!(!output.terms[1].candidates.is_empty(), "city candidates");
        // City term collects both Geonames and DBpedia candidates.
        let graphs: std::collections::HashSet<_> = output.terms[1]
            .candidates
            .iter()
            .map(|c| c.graph)
            .collect();
        assert!(graphs.contains(&crate::resolvers::SourceGraph::Geonames));
        assert!(graphs.contains(&crate::resolvers::SourceGraph::DBpedia));
    }

    #[test]
    fn fulltext_candidates_attach_to_matching_terms() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(
            &s,
            &["Mole Antonelliana".into()],
            "Tramonto alla Mole Antonelliana",
            Some("it"),
        );
        assert!(
            output.terms[0]
                .candidates
                .iter()
                .any(|c| c.resolver == "evri"),
            "evri fulltext candidate attached"
        );
    }

    #[test]
    fn broker_survives_resolver_outages() {
        let s = store();
        let broker = SemanticBroker::new(vec![
            Box::new(FlakyResolver::new(DbpediaResolver, 1)), // always fails
            Box::new(GeonamesResolver),
        ]);
        let output = broker.resolve(&s, &["Torino".into()], "", Some("it"));
        assert_eq!(output.failures.len(), 1);
        assert!(!output.terms[0].candidates.is_empty(), "geonames still answered");
    }

    #[test]
    fn empty_terms_produce_empty_output() {
        let s = store();
        let broker = SemanticBroker::standard();
        let output = broker.resolve(&s, &[], "", None);
        assert!(output.terms.is_empty());
        assert!(output.failures.is_empty());
    }
}
