//! Synthetic LOD snapshots.
//!
//! Generated from the shared entity catalog so labels, coordinates and
//! identifiers line up with the UGC workload — the property the paper
//! gets for free from the real datasets. The graphs deliberately
//! include the *hard* structure the annotation pipeline must handle:
//!
//! * homonym resources (a `Mole` animal and a `Mole` unit next to the
//!   Mole Antonelliana; a `Colosseum` band next to the monument; a
//!   mythological `Paris` next to the city);
//! * redirect pages (`Coliseum` → `Colosseum`, `Torino` → `Turin`)
//!   that the DBpedia resolver must follow ("The query also follows
//!   resource redirections to avoid returning 'disambiguation' pages");
//! * disambiguation pages carrying `dbpo:wikiPageDisambiguates` that
//!   validation must discard.

use lodify_context::gazetteer::{Gazetteer, PoiCategory};
use lodify_rdf::{ns, Iri, Literal, Term, Triple};

/// Graph name for the DBpedia snapshot.
pub const GRAPH_DBPEDIA: &str = "urn:lodify:graph:dbpedia";
/// Graph name for the Geonames snapshot.
pub const GRAPH_GEONAMES: &str = "urn:lodify:graph:geonames";
/// Graph name for the LinkedGeoData snapshot.
pub const GRAPH_LGD: &str = "urn:lodify:graph:linkedgeodata";
/// Graph name for the platform's own UGC triples.
pub const GRAPH_UGC: &str = "urn:lodify:graph:ugc";

/// Pseudo-popularity predicate carrying the resolver's "native
/// scoring" signal (DBpedia lookup's refCount analog).
pub fn ref_count_pred() -> Iri {
    ns::DBPPROP.iri("refCount")
}

/// DBpedia resource IRI for a catalog key/slug.
pub fn dbp(key: &str) -> Iri {
    ns::DBP.iri(&key.replace(' ', "_"))
}

/// Geonames resource IRI for a numeric id.
pub fn gnr(id: u64) -> Iri {
    ns::GNR.iri(&format!("{id}/"))
}

/// LinkedGeoData node IRI for a catalog key.
pub fn lgd(key: &str) -> Iri {
    ns::LGD.iri(&format!(
        "node{}",
        lodify_context::gazetteer::stable_hash(key) % 100_000_000
    ))
}

fn label(iri: &Iri, text: &str, lang: &str) -> Triple {
    Triple::new_unchecked(
        Term::Iri(iri.clone()),
        ns::iri::rdfs_label(),
        Term::Literal(Literal::lang(text, lang).expect("catalog langs are valid")),
    )
}

fn typed(iri: &Iri, class: Iri) -> Triple {
    Triple::new_unchecked(
        Term::Iri(iri.clone()),
        ns::iri::rdf_type(),
        Term::Iri(class),
    )
}

fn geometry(iri: &Iri, point: lodify_rdf::Point) -> Triple {
    Triple::new_unchecked(
        Term::Iri(iri.clone()),
        ns::iri::geo_geometry(),
        Term::Literal(point.to_literal()),
    )
}

fn int_prop(iri: &Iri, pred: Iri, value: i64) -> Triple {
    Triple::new_unchecked(
        Term::Iri(iri.clone()),
        pred,
        Term::Literal(Literal::integer(value)),
    )
}

/// A synthetic homonym: a resource sharing a label with a catalog
/// entity but denoting something else entirely.
struct Homonym {
    key: &'static str,
    label: &'static str,
    class: &'static str,
    abstract_en: &'static str,
    /// refCount: homonyms are (mostly) less popular than the entity.
    ref_count: i64,
    /// Key of the catalog entity it collides with (for the
    /// disambiguation page).
    collides_with: &'static str,
}

const HOMONYMS: &[Homonym] = &[
    Homonym {
        key: "Mole_(animal)",
        label: "Mole",
        class: "Animal",
        abstract_en: "Moles are small burrowing mammals.",
        ref_count: 40,
        collides_with: "Mole_Antonelliana",
    },
    Homonym {
        key: "Mole_(unit)",
        label: "Mole",
        class: "Unit",
        abstract_en: "The mole is the SI unit of amount of substance.",
        ref_count: 35,
        collides_with: "Mole_Antonelliana",
    },
    Homonym {
        key: "Colosseum_(band)",
        label: "Colosseum",
        class: "Band",
        abstract_en: "Colosseum are an English progressive rock band.",
        ref_count: 25,
        collides_with: "Colosseum",
    },
    Homonym {
        key: "Paris_(mythology)",
        label: "Paris",
        class: "Person",
        abstract_en: "Paris is a figure of Greek mythology.",
        ref_count: 30,
        collides_with: "Paris",
    },
    Homonym {
        key: "Pantheon_(religion)",
        label: "Pantheon",
        class: "Concept",
        abstract_en: "A pantheon is the set of gods of a religion.",
        ref_count: 28,
        collides_with: "Pantheon_Rome",
    },
    Homonym {
        key: "Galleria_(film)",
        label: "Galleria",
        class: "Film",
        abstract_en: "Galleria is a short film.",
        ref_count: 10,
        collides_with: "Galleria_Vittorio_Emanuele_II",
    },
];

/// Builds the DBpedia snapshot.
pub fn dbpedia_graph(gaz: &Gazetteer) -> Vec<Triple> {
    let mut triples = Vec::new();
    let place = ns::DBPO.iri("Place");

    for city in gaz.cities() {
        let iri = dbp(city.key);
        triples.push(typed(&iri, place.clone()));
        triples.push(typed(&iri, ns::DBPO.iri("PopulatedPlace")));
        for (lang, text) in city.labels {
            triples.push(label(&iri, text, lang));
            triples.push(Triple::new_unchecked(
                Term::Iri(iri.clone()),
                ns::iri::dbpo_abstract(),
                Term::Literal(
                    Literal::lang(synthetic_abstract(text, city.country, lang), *lang)
                        .expect("valid lang"),
                ),
            ));
        }
        triples.push(geometry(&iri, city.point()));
        triples.push(int_prop(
            &iri,
            ref_count_pred(),
            (city.population / 10_000) as i64,
        ));
    }

    for poi in gaz.pois() {
        if poi.category.is_commercial() {
            continue; // commercial places live in LinkedGeoData only
        }
        let iri = dbp(poi.key);
        triples.push(typed(&iri, place.clone()));
        triples.push(typed(&iri, ns::DBPO.iri(dbpedia_class(poi.category))));
        triples.push(label(&iri, poi.name, "en"));
        triples.push(label(&iri, poi.name, "it"));
        let city = gaz.city(poi.city_key).expect("catalog consistent");
        for lang in ["en", "it"] {
            triples.push(Triple::new_unchecked(
                Term::Iri(iri.clone()),
                ns::iri::dbpo_abstract(),
                Term::Literal(
                    Literal::lang(synthetic_abstract(poi.name, city.label(lang), lang), lang)
                        .expect("valid lang"),
                ),
            ));
        }
        triples.push(geometry(&iri, poi.point(gaz)));
        triples.push(int_prop(&iri, ref_count_pred(), 60));

        // Alternate names become redirect resources.
        for alt in poi.alt_names {
            let alt_iri = dbp(&format!("{}_(redirect_{})", alt, poi.key));
            triples.push(label(&alt_iri, alt, "en"));
            triples.push(Triple::new_unchecked(
                Term::Iri(alt_iri),
                ns::iri::dbpo_redirects(),
                Term::Iri(iri.clone()),
            ));
        }
    }

    for person in gaz.people() {
        let iri = dbp(&person.name.replace(' ', "_"));
        triples.push(typed(&iri, ns::DBPO.iri("Person")));
        triples.push(label(&iri, person.name, "en"));
        triples.push(Triple::new_unchecked(
            Term::Iri(iri.clone()),
            ns::iri::dbpo_abstract(),
            Term::Literal(
                Literal::lang(
                    format!("{} was a famous {}.", person.name, person.field),
                    "en",
                )
                .expect("valid lang"),
            ),
        ));
        triples.push(int_prop(&iri, ref_count_pred(), 50));
    }

    // Homonyms + disambiguation pages.
    for h in HOMONYMS {
        let iri = dbp(h.key);
        triples.push(typed(&iri, ns::DBPO.iri(h.class)));
        triples.push(label(&iri, h.label, "en"));
        triples.push(Triple::new_unchecked(
            Term::Iri(iri.clone()),
            ns::iri::dbpo_abstract(),
            Term::Literal(Literal::lang(h.abstract_en, "en").expect("valid lang")),
        ));
        triples.push(int_prop(&iri, ref_count_pred(), h.ref_count));

        let disamb = dbp(&format!("{}_(disambiguation)", h.label));
        triples.push(label(&disamb, h.label, "en"));
        for target in [&iri, &dbp(h.collides_with)] {
            triples.push(Triple::new_unchecked(
                Term::Iri(disamb.clone()),
                ns::iri::dbpo_disambiguates(),
                Term::Iri(target.clone()),
            ));
        }
    }

    // City-name redirects ("Torino" → "Turin") for non-English labels
    // that differ from the key.
    for city in gaz.cities() {
        let iri = dbp(city.key);
        for (lang, text) in city.labels {
            if *lang != "en" && *text != city.label("en") {
                let alt_iri = dbp(&format!("{}_(redirect_{})", text, city.key));
                triples.push(label(&alt_iri, text, lang));
                triples.push(Triple::new_unchecked(
                    Term::Iri(alt_iri),
                    ns::iri::dbpo_redirects(),
                    Term::Iri(iri.clone()),
                ));
            }
        }
    }
    triples
}

fn dbpedia_class(category: PoiCategory) -> &'static str {
    match category {
        PoiCategory::Monument => "Monument",
        PoiCategory::Museum => "Museum",
        PoiCategory::Church => "Church",
        PoiCategory::Square => "Square",
        PoiCategory::Park => "Park",
        PoiCategory::Tourism => "TouristAttraction",
        PoiCategory::Restaurant | PoiCategory::Hotel | PoiCategory::Cafe => "Building",
    }
}

fn synthetic_abstract(name: &str, place: &str, lang: &str) -> String {
    match lang {
        "it" => format!("{name} è un luogo notevole situato in {place}."),
        "fr" => format!("{name} est un lieu remarquable situé en {place}."),
        "es" => format!("{name} es un lugar notable situado en {place}."),
        "de" => format!("{name} ist ein bemerkenswerter Ort in {place}."),
        _ => format!("{name} is a notable place located in {place}."),
    }
}

/// Builds the Geonames snapshot (cities only — Geonames is "very
/// exhaustive on locations … where very little overlap exists with
/// other types of resources", §2.2.2).
pub fn geonames_graph(gaz: &Gazetteer) -> Vec<Triple> {
    let mut triples = Vec::new();
    for city in gaz.cities() {
        let iri = gnr(city.geonames_id());
        triples.push(typed(&iri, ns::GN.iri("Feature")));
        triples.push(Triple::new_unchecked(
            Term::Iri(iri.clone()),
            ns::GN.iri("name"),
            Term::Literal(Literal::simple(city.label("en"))),
        ));
        for (lang, text) in city.labels {
            triples.push(Triple::new_unchecked(
                Term::Iri(iri.clone()),
                ns::GN.iri("alternateName"),
                Term::Literal(Literal::lang(*text, *lang).expect("valid lang")),
            ));
            // rdfs:label too, so generic SPARQL works across graphs.
            triples.push(label(&iri, text, lang));
        }
        triples.push(Triple::new_unchecked(
            Term::Iri(iri.clone()),
            ns::GN.iri("featureCode"),
            Term::Iri(ns::GN.iri("P.PPL")),
        ));
        triples.push(geometry(&iri, city.point()));
        triples.push(int_prop(
            &iri,
            ns::GN.iri("population"),
            city.population as i64,
        ));
    }
    triples
}

/// Builds the LinkedGeoData snapshot: every POI (commercial included),
/// plus city nodes typed `lgdo:City` — the classes the paper's mashup
/// query filters on (`lgdo:City`, `lgdo:Restaurant`, `lgdo:Tourism`).
pub fn linkedgeodata_graph(gaz: &Gazetteer) -> Vec<Triple> {
    let mut triples = Vec::new();
    for city in gaz.cities() {
        let iri = lgd(city.key);
        triples.push(typed(&iri, ns::LGDO.iri("City")));
        for (lang, text) in city.labels {
            triples.push(label(&iri, text, lang));
        }
        triples.push(geometry(&iri, city.point()));
    }
    for poi in gaz.pois() {
        let iri = lgd(poi.key);
        let class = match poi.category {
            PoiCategory::Restaurant => "Restaurant",
            PoiCategory::Hotel => "Hotel",
            PoiCategory::Cafe => "Cafe",
            _ => "Tourism",
        };
        triples.push(typed(&iri, ns::LGDO.iri(class)));
        triples.push(label(&iri, poi.name, "en"));
        triples.push(geometry(&iri, poi.point(gaz)));
        if matches!(poi.category, PoiCategory::Restaurant | PoiCategory::Hotel) {
            triples.push(Triple::new_unchecked(
                Term::Iri(iri.clone()),
                ns::LGDP.iri("website"),
                Term::Literal(Literal::simple(format!(
                    "http://{}.example.com",
                    poi.key.to_lowercase()
                ))),
            ));
        }
    }
    triples
}

/// Loads all three snapshots into a store under their named graphs;
/// returns `(dbpedia, geonames, lgd)` triple counts.
pub fn load_lod(store: &mut lodify_store::Store, gaz: &Gazetteer) -> (usize, usize, usize) {
    let g_dbp = store.graph(GRAPH_DBPEDIA);
    let g_gn = store.graph(GRAPH_GEONAMES);
    let g_lgd = store.graph(GRAPH_LGD);
    let d = store.insert_all(&dbpedia_graph(gaz), g_dbp);
    let g = store.insert_all(&geonames_graph(gaz), g_gn);
    let l = store.insert_all(&linkedgeodata_graph(gaz), g_lgd);
    (d, g, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodify_store::Store;

    fn loaded() -> Store {
        let mut store = Store::new();
        load_lod(&mut store, Gazetteer::global());
        store
    }

    #[test]
    fn graphs_load_and_are_nonempty() {
        let mut store = Store::new();
        let (d, g, l) = load_lod(&mut store, Gazetteer::global());
        assert!(d > 300, "dbpedia: {d}");
        assert!(g > 150, "geonames: {g}");
        assert!(l > 100, "lgd: {l}");
        assert_eq!(store.len(), d + g + l);
    }

    #[test]
    fn provenance_tracks_source_graphs() {
        let store = loaded();
        assert_eq!(
            store.graph_of_term(&Term::Iri(dbp("Turin"))),
            Some(GRAPH_DBPEDIA)
        );
        let turin_gn = Gazetteer::global().city("Turin").unwrap().geonames_id();
        assert_eq!(
            store.graph_of_term(&Term::Iri(gnr(turin_gn))),
            Some(GRAPH_GEONAMES)
        );
        assert_eq!(
            store.graph_of_term(&Term::Iri(lgd("Ristorante_Del_Cambio"))),
            Some(GRAPH_LGD)
        );
    }

    #[test]
    fn mole_antonelliana_query_from_paper_works() {
        let store = loaded();
        let results = lodify_sparql::execute(
            &store,
            r#"SELECT ?m WHERE { ?m rdfs:label "Mole Antonelliana"@it . }"#,
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results.column("m")[0].lexical(),
            "http://dbpedia.org/resource/Mole_Antonelliana"
        );
    }

    #[test]
    fn homonyms_share_labels() {
        let store = loaded();
        let results = lodify_sparql::execute(
            &store,
            r#"SELECT DISTINCT ?r WHERE { ?r rdfs:label "Mole"@en . }"#,
        )
        .unwrap();
        // Mole the animal + Mole the unit + the Mole_Antonelliana alt
        // redirect + the disambiguation page.
        assert!(results.len() >= 3, "{}", results.len());
    }

    #[test]
    fn redirects_point_to_canonical() {
        let store = loaded();
        let results = lodify_sparql::execute(
            &store,
            "SELECT ?from ?to WHERE { ?from dbpo:wikiPageRedirects ?to . }",
        )
        .unwrap();
        assert!(!results.is_empty());
        let tos: Vec<&str> = results.column("to").iter().map(|t| t.lexical()).collect();
        assert!(tos.contains(&"http://dbpedia.org/resource/Colosseum"));
        assert!(tos.contains(&"http://dbpedia.org/resource/Turin"));
    }

    #[test]
    fn disambiguation_pages_exist_and_point_both_ways() {
        let store = loaded();
        let results = lodify_sparql::execute(
            &store,
            r#"SELECT ?t WHERE { <http://dbpedia.org/resource/Mole_(disambiguation)> dbpo:wikiPageDisambiguates ?t . }"#,
        )
        .unwrap();
        // Both Mole homonyms plus the monument itself.
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn lgd_city_labels_join_with_dbpedia_labels() {
        // The mashup query's first arm joins lgd city labels with
        // DBpedia labels via a shared ?lbl.
        let store = loaded();
        let results = lodify_sparql::execute(
            &store,
            r#"SELECT DISTINCT ?desc WHERE {
                 ?city a lgdo:City .
                 ?city rdfs:label ?lbl .
                 ?others rdfs:label ?lbl .
                 ?others dbpo:abstract ?desc .
                 FILTER langMatches(lang(?desc), 'it') .
               } LIMIT 5"#,
        )
        .unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn commercial_pois_only_in_lgd() {
        let store = loaded();
        let in_dbp = lodify_sparql::execute(
            &store,
            r#"SELECT ?r WHERE { ?r rdfs:label "Del Cambio"@en . }"#,
        )
        .unwrap();
        for row in in_dbp.iter() {
            let iri = row.cells()[0].as_ref().unwrap().lexical();
            assert!(!iri.starts_with("http://dbpedia.org/"), "{iri}");
        }
        let restaurants = lodify_sparql::execute(
            &store,
            "SELECT ?r ?w WHERE { ?r a lgdo:Restaurant . OPTIONAL { ?r <http://linkedgeodata.org/property/website> ?w } }",
        )
        .unwrap();
        assert!(restaurants.len() >= 3);
        assert!(restaurants.iter().all(|row| row.get("w").is_some()));
    }
}
