//! Entity resolvers.
//!
//! §2.2.2: "This component is assisted by a set of resolvers that
//! perform full-text or term-based analysis … Resolvers may be domain-
//! or language-specific, or general purpose." The paper's set — DBpedia
//! (optimized to SPARQL, following redirects, skipping disambiguation
//! pages, with native scoring), Sindice, Evri and Zemanta — is
//! reproduced here over the synthetic LOD snapshots.

use std::sync::atomic::{AtomicUsize, Ordering};

use lodify_rdf::{ns, Iri, Term};
use lodify_store::{Store, TermId};

use crate::datasets::{GRAPH_DBPEDIA, GRAPH_GEONAMES};

/// Which LOD graph a candidate resource belongs to. The semantic
/// filter ranks by this (§2.2.2: "we associate priorities with graphs
/// and not with the resolvers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceGraph {
    /// Geonames — highest priority.
    Geonames,
    /// DBpedia — second.
    DBpedia,
    /// Evri entities — third.
    Evri,
    /// Anything else — discarded by the filter.
    Other,
}

impl SourceGraph {
    /// Classifies a store graph name.
    pub fn from_graph_name(name: &str) -> SourceGraph {
        match name {
            GRAPH_GEONAMES => SourceGraph::Geonames,
            GRAPH_DBPEDIA => SourceGraph::DBpedia,
            _ => SourceGraph::Other,
        }
    }
}

/// A candidate LOD resource for a term.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The resource IRI (redirects already followed).
    pub resource: Iri,
    /// The label that matched the term.
    pub label: String,
    /// Source graph.
    pub graph: SourceGraph,
    /// Resolver-native score, normalized to [0, 1]; 1.0 is the
    /// resolver's top-ranked candidate.
    pub score: f64,
    /// `rdf:type`s of the resource.
    pub types: Vec<Iri>,
    /// Which resolver produced it.
    pub resolver: &'static str,
}

/// Resolver failure (simulating a web service outage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverError {
    /// Resolver name.
    pub resolver: &'static str,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ResolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "resolver {} failed: {}", self.resolver, self.message)
    }
}

impl std::error::Error for ResolverError {}

/// A term/full-text entity resolver.
pub trait Resolver: Send + Sync {
    /// Resolver name (diagnostics and ablations).
    fn name(&self) -> &'static str;

    /// Term-based resolution: candidates for one (multi)word.
    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError>;

    /// Full-text resolution over the whole title ("in some cases Named
    /// Entity Recognition would benefit from the original context (the
    /// whole title)"). Default: nothing.
    fn resolve_fulltext(
        &self,
        _store: &Store,
        _text: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        Ok(Vec::new())
    }
}

// ---------------------------------------------------------------------
// shared lookup machinery
// ---------------------------------------------------------------------

/// How a term is matched against entity labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelMatch {
    /// Label equals the term, case-insensitively.
    Exact,
    /// Every token of the term occurs in the label — the fuzzy
    /// lookup-service behaviour the Jaro–Winkler rule exists to prune
    /// ("mole" also surfaces "Mole Antonelliana").
    Fuzzy,
}

/// The ids of the naming predicates (labels, not abstracts).
fn label_predicates(store: &Store) -> Vec<TermId> {
    [
        ns::iri::rdfs_label(),
        ns::GN.iri("name"),
        ns::GN.iri("alternateName"),
        ns::iri::foaf_name(),
    ]
    .into_iter()
    .filter_map(|iri| store.id_of(&Term::Iri(iri)))
    .collect()
}

/// Subjects (in `graph_filter`, if given) whose **label** matches
/// `term` under the given matching mode, via the full-text index.
fn subjects_with_label(
    store: &Store,
    term: &str,
    graph_filter: Option<&str>,
    mode: LabelMatch,
) -> Vec<(TermId, String)> {
    let term_tokens = lodify_store::fulltext::tokenize(term);
    let Some(first) = term_tokens.first() else {
        return Vec::new();
    };
    let label_preds = label_predicates(store);
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for posting in store.fulltext().search_word(first) {
        if !label_preds.contains(&posting.predicate) {
            continue;
        }
        if !seen.insert((posting.subject, posting.object)) {
            continue;
        }
        if let Some(graph) = graph_filter {
            let Some(g) = store.graph_of_subject(posting.subject) else {
                continue;
            };
            if store.graph_name(g) != Some(graph) {
                continue;
            }
        }
        let Some(Term::Literal(lit)) = store.term_of(posting.object) else {
            continue;
        };
        let matched = match mode {
            LabelMatch::Exact => lit.value().to_lowercase() == term.to_lowercase(),
            LabelMatch::Fuzzy => {
                let label_tokens = lodify_store::fulltext::tokenize(lit.value());
                term_tokens.iter().all(|t| label_tokens.contains(t))
            }
        };
        if matched {
            out.push((posting.subject, lit.value().to_string()));
        }
    }
    out
}

fn types_of(store: &Store, subject: TermId) -> Vec<Iri> {
    let Some(type_pred) = store.id_of(&Term::Iri(ns::iri::rdf_type())) else {
        return Vec::new();
    };
    store
        .match_ids(Some(subject), Some(type_pred), None)
        .filter_map(|(_, _, o)| store.term_of(o)?.as_iri().cloned())
        .collect()
}

fn subject_iri(store: &Store, subject: TermId) -> Option<Iri> {
    store.term_of(subject)?.as_iri().cloned()
}

fn int_object(store: &Store, subject: TermId, predicate: &Iri) -> Option<i64> {
    let pred = store.id_of(&Term::Iri(predicate.clone()))?;
    store
        .match_ids(Some(subject), Some(pred), None)
        .find_map(|(_, _, o)| store.term_of(o)?.as_literal()?.as_i64())
}

/// Follows `dbpo:wikiPageRedirects` (one hop; the snapshots have no
/// chains). Public: the semantic filter's validation step normalizes
/// redirect pages handed over by dumb resolvers (Sindice).
pub fn follow_redirect(store: &Store, subject: TermId) -> TermId {
    let Some(pred) = store.id_of(&Term::Iri(ns::iri::dbpo_redirects())) else {
        return subject;
    };
    store
        .match_ids(Some(subject), Some(pred), None)
        .map(|(_, _, o)| o)
        .next()
        .unwrap_or(subject)
}

/// Whether the subject is a disambiguation page.
pub fn is_disambiguation(store: &Store, subject: TermId) -> bool {
    let Some(pred) = store.id_of(&Term::Iri(ns::iri::dbpo_disambiguates())) else {
        return false;
    };
    store
        .match_ids(Some(subject), Some(pred), None)
        .next()
        .is_some()
}

// ---------------------------------------------------------------------
// DBpedia
// ---------------------------------------------------------------------

/// The DBpedia resolver: "DBpedia query has been optimized to rely on
/// SPARQL rather than its lookup service … full-text support, as well
/// as additional filters e.g. based on language, entity type & native
/// scoring. The query also follows resource redirections" (§2.2.2).
#[derive(Debug, Default)]
pub struct DbpediaResolver;

impl Resolver for DbpediaResolver {
    fn name(&self) -> &'static str {
        "dbpedia"
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        let term_tokens = lodify_store::fulltext::tokenize(term);
        let mut raw: Vec<(TermId, String)> = Vec::new();
        for (subject, label) in
            subjects_with_label(store, term, Some(GRAPH_DBPEDIA), LabelMatch::Fuzzy)
        {
            let canonical = follow_redirect(store, subject);
            if is_disambiguation(store, canonical) {
                continue; // the resolver's own disambiguation check
            }
            raw.push((canonical, label));
        }

        // Native scoring, lookup-service style: relevance (how much of
        // the matched label the term covers; exact match = 1) blended
        // with popularity (refCount). Only an exact-label match on the
        // most-referenced resource reaches the *maximum* score of 1.0 —
        // the case the filter's JW exemption refers to.
        let ref_pred = crate::datasets::ref_count_pred();
        let counts: Vec<i64> = raw
            .iter()
            .map(|(s, _)| int_object(store, *s, &ref_pred).unwrap_or(1))
            .collect();
        let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut scored: Vec<(TermId, String, f64)> = raw
            .into_iter()
            .zip(counts)
            .map(|((subject, label), count)| {
                let label_tokens = lodify_store::fulltext::tokenize(&label);
                let relevance = term_tokens.len() as f64 / label_tokens.len().max(1) as f64;
                let relevance = relevance.min(1.0);
                let popularity = count as f64 / max_count as f64;
                (subject, label, relevance * (0.5 + 0.5 * popularity))
            })
            .collect();
        // Dedup by resource, keeping the best-scored (subject, label).
        scored.sort_by(|a, b| a.0.cmp(&b.0).then(b.2.total_cmp(&a.2)));
        scored.dedup_by_key(|(s, _, _)| *s);

        Ok(scored
            .into_iter()
            .filter_map(|(subject, label, score)| {
                Some(Candidate {
                    resource: subject_iri(store, subject)?,
                    label,
                    graph: SourceGraph::DBpedia,
                    score,
                    types: types_of(store, subject),
                    resolver: "dbpedia",
                })
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Geonames
// ---------------------------------------------------------------------

/// The Geonames resolver: location names only, scored by population.
#[derive(Debug, Default)]
pub struct GeonamesResolver;

impl Resolver for GeonamesResolver {
    fn name(&self) -> &'static str {
        "geonames"
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        let mut raw = subjects_with_label(store, term, Some(GRAPH_GEONAMES), LabelMatch::Exact);
        raw.sort_by_key(|(s, _)| *s);
        raw.dedup_by(|a, b| a.0 == b.0);
        let pop_pred = ns::GN.iri("population");
        let pops: Vec<i64> = raw
            .iter()
            .map(|(s, _)| int_object(store, *s, &pop_pred).unwrap_or(1))
            .collect();
        let max = pops.iter().copied().max().unwrap_or(1).max(1);
        Ok(raw
            .into_iter()
            .zip(pops)
            .filter_map(|((subject, label), pop)| {
                Some(Candidate {
                    resource: subject_iri(store, subject)?,
                    label,
                    graph: SourceGraph::Geonames,
                    score: pop as f64 / max as f64,
                    types: types_of(store, subject),
                    resolver: "geonames",
                })
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Sindice
// ---------------------------------------------------------------------

/// The Sindice resolver: a dumb cross-graph index. "for some resolvers,
/// e.g. Sindice, candidate resources may refer to various ontologies"
/// (§2.2.2). It performs **no** redirect following or disambiguation
/// checking — downstream validation has to cope.
#[derive(Debug, Default)]
pub struct SindiceResolver;

impl Resolver for SindiceResolver {
    fn name(&self) -> &'static str {
        "sindice"
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        let mut raw = subjects_with_label(store, term, None, LabelMatch::Fuzzy);
        raw.sort_by_key(|(s, _)| *s);
        raw.dedup_by(|a, b| a.0 == b.0);
        Ok(raw
            .into_iter()
            .filter_map(|(subject, label)| {
                let graph = store
                    .graph_of_subject(subject)
                    .and_then(|g| store.graph_name(g))
                    .map(SourceGraph::from_graph_name)
                    .unwrap_or(SourceGraph::Other);
                Some(Candidate {
                    resource: subject_iri(store, subject)?,
                    label,
                    graph,
                    score: 0.5,
                    types: types_of(store, subject),
                    resolver: "sindice",
                })
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// full-text resolvers: Evri & Zemanta
// ---------------------------------------------------------------------

/// Label windows of 1–3 tokens inside `text` that exactly match an
/// entity label in `graph_filter`.
fn fulltext_matches(
    store: &Store,
    text: &str,
    graph_filter: Option<&str>,
) -> Vec<(TermId, String)> {
    let words: Vec<String> = lodify_store::fulltext::tokenize(text);
    let mut out: Vec<(TermId, String)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for window in 1..=3usize {
        for chunk in words.windows(window) {
            let phrase = chunk.join(" ");
            for (subject, label) in
                subjects_with_label(store, &phrase, graph_filter, LabelMatch::Exact)
            {
                if seen.insert(subject) {
                    out.push((subject, label));
                }
            }
        }
    }
    out
}

/// The Evri resolver: full-text entity extraction returning Evri's
/// *own* entity IRIs (graph [`SourceGraph::Evri`]).
#[derive(Debug, Default)]
pub struct EvriResolver;

impl Resolver for EvriResolver {
    fn name(&self) -> &'static str {
        "evri"
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        // Term queries match the whole term as an entity label; window
        // scanning is reserved for full-text over titles.
        Ok(
            subjects_with_label(store, term, Some(GRAPH_DBPEDIA), LabelMatch::Exact)
                .into_iter()
                .map(|(_, label)| evri_candidate(label))
                .collect(),
        )
    }

    fn resolve_fulltext(
        &self,
        store: &Store,
        text: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        Ok(fulltext_matches(store, text, Some(GRAPH_DBPEDIA))
            .into_iter()
            .map(|(_, label)| evri_candidate(label))
            .collect())
    }
}

fn evri_candidate(label: String) -> Candidate {
    let slug = label.to_lowercase().replace(' ', "-");
    Candidate {
        resource: ns::EVRI.iri(&slug),
        label,
        graph: SourceGraph::Evri,
        score: 0.6,
        types: Vec::new(),
        resolver: "evri",
    }
}

/// The Zemanta resolver: full-text suggestions pointing straight at
/// DBpedia resources.
#[derive(Debug, Default)]
pub struct ZemantaResolver;

impl Resolver for ZemantaResolver {
    fn name(&self) -> &'static str {
        "zemanta"
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        Ok(
            subjects_with_label(store, term, Some(GRAPH_DBPEDIA), LabelMatch::Exact)
                .into_iter()
                .filter_map(|(subject, label)| zemanta_candidate(store, subject, label))
                .collect(),
        )
    }

    fn resolve_fulltext(
        &self,
        store: &Store,
        text: &str,
        _lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        Ok(fulltext_matches(store, text, Some(GRAPH_DBPEDIA))
            .into_iter()
            .filter_map(|(subject, label)| zemanta_candidate(store, subject, label))
            .collect())
    }
}

fn zemanta_candidate(store: &Store, subject: TermId, label: String) -> Option<Candidate> {
    let canonical = follow_redirect(store, subject);
    if is_disambiguation(store, canonical) {
        return None;
    }
    Some(Candidate {
        resource: subject_iri(store, canonical)?,
        label,
        graph: SourceGraph::DBpedia,
        score: 0.4,
        types: types_of(store, canonical),
        resolver: "zemanta",
    })
}

// ---------------------------------------------------------------------
// fault injection
// ---------------------------------------------------------------------

/// Wraps a resolver and fails every `fail_every`-th call — the broker
/// must survive individual service outages.
pub struct FlakyResolver<R> {
    inner: R,
    fail_every: usize,
    calls: AtomicUsize,
}

impl<R: Resolver> FlakyResolver<R> {
    /// Fails calls number `fail_every`, `2·fail_every`, …
    pub fn new(inner: R, fail_every: usize) -> Self {
        assert!(fail_every > 0, "fail_every must be positive");
        FlakyResolver {
            inner,
            fail_every,
            calls: AtomicUsize::new(0),
        }
    }

    fn tick(&self) -> Result<(), ResolverError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n % self.fail_every == 0 {
            Err(ResolverError {
                resolver: self.inner.name(),
                message: format!("injected outage on call {n}"),
            })
        } else {
            Ok(())
        }
    }
}

impl<R: Resolver> Resolver for FlakyResolver<R> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        self.tick()?;
        self.inner.resolve_term(store, term, lang)
    }

    fn resolve_fulltext(
        &self,
        store: &Store,
        text: &str,
        lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        self.tick()?;
        self.inner.resolve_fulltext(store, text, lang)
    }
}

/// A resolver whose calls are judged by a scripted
/// [`FaultPlan`](lodify_resilience::FaultPlan) before the real resolver
/// runs: outage windows and seeded failure rates turn into
/// [`ResolverError`]s, and injected latency advances the plan's virtual
/// clock. The plan target is `resolver:<name>`.
pub struct FaultInjectedResolver<R> {
    inner: R,
    plan: lodify_resilience::FaultPlan,
    target: String,
}

impl<R: Resolver> FaultInjectedResolver<R> {
    /// Wraps `inner`, consulting `plan` under target `resolver:<name>`.
    pub fn new(inner: R, plan: lodify_resilience::FaultPlan) -> Self {
        let target = format!("resolver:{}", inner.name());
        FaultInjectedResolver {
            inner,
            plan,
            target,
        }
    }

    /// The fault-plan target this wrapper consults.
    pub fn target(&self) -> &str {
        &self.target
    }

    fn check(&self) -> Result<(), ResolverError> {
        self.plan.check(&self.target).map_err(|e| ResolverError {
            resolver: self.inner.name(),
            message: e.to_string(),
        })
    }
}

impl<R: Resolver> Resolver for FaultInjectedResolver<R> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn resolve_term(
        &self,
        store: &Store,
        term: &str,
        lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        self.check()?;
        self.inner.resolve_term(store, term, lang)
    }

    fn resolve_fulltext(
        &self,
        store: &Store,
        text: &str,
        lang: Option<&str>,
    ) -> Result<Vec<Candidate>, ResolverError> {
        self.check()?;
        self.inner.resolve_fulltext(store, text, lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dbp, load_lod};
    use lodify_context::gazetteer::Gazetteer;

    fn store() -> Store {
        let mut s = Store::new();
        load_lod(&mut s, Gazetteer::global());
        s
    }

    #[test]
    fn dbpedia_resolves_and_scores() {
        let s = store();
        let hits = DbpediaResolver
            .resolve_term(&s, "Turin", Some("en"))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].resource, dbp("Turin"));
        assert_eq!(hits[0].score, 1.0);
        assert!(hits[0].types.iter().any(|t| t.as_str().ends_with("Place")));
    }

    #[test]
    fn dbpedia_follows_redirects() {
        let s = store();
        // "Coliseum" only exists as a redirect page.
        let hits = DbpediaResolver.resolve_term(&s, "Coliseum", None).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].resource, dbp("Colosseum"));
        assert_eq!(hits[0].label, "Coliseum");
        // Torino → Turin, the paper's city-label case.
        let hits = DbpediaResolver.resolve_term(&s, "Torino", None).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].resource, dbp("Turin"));
    }

    #[test]
    fn dbpedia_skips_disambiguation_pages_and_ranks_homonyms() {
        let s = store();
        let hits = DbpediaResolver.resolve_term(&s, "Mole", None).unwrap();
        // Animal, unit, and the Mole→Mole_Antonelliana redirect — the
        // disambiguation page is gone.
        assert!(hits
            .iter()
            .all(|c| !c.resource.as_str().contains("disambiguation")));
        assert!(hits.len() >= 3);
        // The monument (refCount 60) outranks animal (40) and unit (35).
        let top = hits
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        assert_eq!(top.resource, dbp("Mole_Antonelliana"));
        assert_eq!(top.score, 1.0);
    }

    #[test]
    fn geonames_resolves_locations_only() {
        let s = store();
        let hits = GeonamesResolver.resolve_term(&s, "Torino", None).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].graph, SourceGraph::Geonames);
        // No Geonames answer for a monument.
        assert!(GeonamesResolver
            .resolve_term(&s, "Colosseum", None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sindice_returns_mixed_graphs_including_junk() {
        let s = store();
        let hits = SindiceResolver.resolve_term(&s, "Turin", None).unwrap();
        let graphs: std::collections::HashSet<SourceGraph> = hits.iter().map(|c| c.graph).collect();
        assert!(graphs.contains(&SourceGraph::DBpedia));
        assert!(graphs.contains(&SourceGraph::Geonames));
        // LGD candidates come back as Other (to be discarded downstream).
        assert!(graphs.contains(&SourceGraph::Other));
    }

    #[test]
    fn evri_extracts_entities_from_full_titles() {
        let s = store();
        let hits = EvriResolver
            .resolve_fulltext(&s, "Sunset at the Mole Antonelliana in Turin", None)
            .unwrap();
        let labels: Vec<&str> = hits.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"Mole Antonelliana"), "{labels:?}");
        assert!(labels.contains(&"Turin"));
        assert!(hits.iter().all(|c| c.graph == SourceGraph::Evri));
        assert!(hits
            .iter()
            .all(|c| c.resource.as_str().starts_with("http://www.evri.com/")));
    }

    #[test]
    fn zemanta_points_at_dbpedia_canonicals() {
        let s = store();
        let hits = ZemantaResolver
            .resolve_fulltext(&s, "Visiting the Coliseum by night", None)
            .unwrap();
        assert!(hits.iter().any(|c| c.resource == dbp("Colosseum")));
        assert!(hits.iter().all(|c| c.graph == SourceGraph::DBpedia));
    }

    #[test]
    fn flaky_resolver_fails_periodically() {
        let s = store();
        let flaky = FlakyResolver::new(DbpediaResolver, 3);
        let mut failures = 0;
        for _ in 0..9 {
            if flaky.resolve_term(&s, "Turin", None).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
    }

    #[test]
    fn unknown_term_resolves_to_nothing_everywhere() {
        let s = store();
        for resolver in [
            &DbpediaResolver as &dyn Resolver,
            &GeonamesResolver,
            &SindiceResolver,
        ] {
            assert!(
                resolver
                    .resolve_term(&s, "zzzunknownzzz", None)
                    .unwrap()
                    .is_empty(),
                "{}",
                resolver.name()
            );
        }
    }
}
