//! Linked Open Data substrate.
//!
//! The paper fuses the platform's RDF with "external data coming from
//! the principal data providers (DBpedia, Geonames and Linkedgeodata)"
//! (§2.1) and resolves terms to LOD resources through "a set of
//! predefined services, such as DBpedia and Sindice, further extended
//! to Evri … we also rely on full-text based resolvers such as Evri
//! and Zemanta" (§2.2.2). This crate rebuilds that stack, offline and
//! deterministic:
//!
//! * [`datasets`] — synthetic DBpedia / Geonames / LinkedGeoData
//!   snapshots generated from the shared entity catalog, including the
//!   ambiguity structure the filter has to survive: homonym resources
//!   ("Mole" the monument vs the animal vs the unit), redirect pages
//!   ("Coliseum" → "Colosseum") and disambiguation pages;
//! * [`resolvers`] — term and full-text resolvers with the same
//!   behavioural contract as the paper's services (DBpedia-over-SPARQL
//!   with redirect following and disambiguation checks, Geonames,
//!   Sindice across all graphs, Evri/Zemanta full-text), plus
//!   fault-injection wrappers;
//! * [`broker`] — the semantic brokering component that fans a term
//!   list out to every resolver and collects candidates, surviving
//!   individual resolver failures;
//! * [`cache`] — a sharded LRU memoizing per-term broker resolutions,
//!   invalidated by store-epoch mismatch, so the repeat-heavy upload
//!   workload (same cities, POIs, friends) skips resolver fan-out;
//! * [`filter`] — the semantic filtering/disambiguation step: graph
//!   priority (Geonames > DBpedia > Evri, everything else discarded),
//!   per-ontology validation, the Jaro–Winkler ≥ 0.8 rule, and the
//!   single-candidate auto-annotation rule;
//! * [`annotator`] — the full Figure-1 pipeline: location analysis,
//!   POI analysis (with the commercial-category exclusion), text
//!   analysis, brokering and filtering.

#![warn(missing_docs)]

pub mod annotator;
pub mod broker;
pub mod cache;
pub mod datasets;
pub mod filter;
pub mod reannotate;
pub mod resolvers;

pub use annotator::{AnnotationResult, Annotator, ContentInput, PoiRefInput, TermAnnotation};
pub use broker::{BrokerOutput, BrokerResilienceConfig, SemanticBroker};
pub use cache::{SemanticCache, SemanticCacheStats};
pub use filter::{FilterConfig, SemanticFilter};
pub use reannotate::{OwnedContent, ReAnnotator};
pub use resolvers::{Candidate, Resolver, ResolverError, SourceGraph};
