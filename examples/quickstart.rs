//! Quickstart: bootstrap the LODified platform, upload a picture the
//! way the paper's mobile client does, and retrieve it through a
//! semantic virtual album.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lodify::context::Gazetteer;
use lodify::core::albums::AlbumSpec;
use lodify::core::platform::{Platform, Upload};
use lodify::relational::WorkloadConfig;

fn main() {
    // 1. Bootstrap: generate a Coppermine-like UGC database, load the
    //    synthetic DBpedia/Geonames/LinkedGeoData snapshots, and run
    //    the D2R semanticization (§2.1).
    let mut platform = Platform::bootstrap(WorkloadConfig {
        seed: 42,
        users: 20,
        pictures: 200,
        ..WorkloadConfig::default()
    })
    .expect("bootstrap");
    println!(
        "platform up: {} pictures, {} triples in the store",
        platform.picture_ids().len(),
        platform.store().len()
    );

    // 2. Upload new content from "the mobile client" (§1.1): title,
    //    tags, timestamp, GPS at the Mole Antonelliana.
    let gaz = Gazetteer::global();
    let mole = gaz.poi("Mole_Antonelliana").expect("catalog POI");
    let receipt = platform
        .upload(Upload {
            user_id: 1,
            title: "Tramonto alla Mole Antonelliana".into(),
            tags: vec!["torino".into(), "tramonto".into()],
            ts: 1_320_500_000,
            gps: Some(mole.point(gaz)),
            poi: Some((
                "Mole Antonelliana".into(),
                "monument".into(),
                mole.point(gaz),
            )),
        })
        .expect("upload");
    println!(
        "uploaded picture {} → {} new triples, {} context tags, {} auto-annotations",
        receipt.pid, receipt.triples_added, receipt.context_tags, receipt.auto_annotations
    );

    // 3. The annotations the pipeline derived (§2.2).
    let annotation = &platform.annotations()[&receipt.pid];
    println!("detected language: {:?}", annotation.language);
    for term in &annotation.terms {
        println!(
            "  term {:?} → {}",
            term.term,
            term.resource
                .as_ref()
                .map(|r| r.as_str().to_string())
                .unwrap_or_else(|| format!("(no auto-annotation, {} survivors)", term.survivors))
        );
    }

    // 4. Retrieve through the paper's Q1 virtual album (§2.3).
    let album = AlbumSpec::near_monument("Mole Antonelliana", "it", 0.3);
    println!("\nvirtual album query:\n{}", album.to_sparql());
    let links = album.execute(platform.store()).expect("album query");
    println!("{} pictures near the Mole:", links.len());
    for link in links.iter().take(5) {
        println!("  {link}");
    }
}
