//! §2.1, "Semanticizing the relational": generate the Coppermine-like
//! database, print the D2R mapping file, run dump-rdf, and show the
//! resulting N-Triples being queried with SPARQL.
//!
//! ```sh
//! cargo run --example semanticize
//! ```

use lodify::d2r::defaults::coppermine_mapping;
use lodify::d2r::{dsl, dump_to_ntriples};
use lodify::relational::workload::{generate, WorkloadConfig};
use lodify::store::Store;

fn main() {
    // 1. The relational platform database.
    let workload = generate(WorkloadConfig {
        seed: 42,
        users: 10,
        pictures: 50,
        ..WorkloadConfig::default()
    });
    println!("relational database:");
    for table in workload.db.tables() {
        println!(
            "  {:24} {:>5} rows{}",
            table.schema().name,
            table.len(),
            if table.schema().service {
                "  (service table — not mapped)"
            } else {
                ""
            }
        );
    }

    // 2. The mapping file (the analog of the D2R mapping the authors
    //    wrote by hand).
    let mapping = coppermine_mapping();
    println!("\nmapping file:\n{}", dsl::serialize(&mapping));

    // 3. dump-rdf → N-Triples.
    let (ntriples, stats) = dump_to_ntriples(&workload.db, &mapping).expect("dump");
    println!("dump-rdf: {} rows → {} triples", stats.rows, stats.triples);
    for (table, rows, triples) in &stats.per_table {
        println!("  {table:24} {rows:>5} rows → {triples:>6} triples");
    }
    println!("\nfirst N-Triples lines:");
    for line in ntriples.lines().take(8) {
        println!("  {line}");
    }

    // 4. Load into the store and query.
    let mut store = Store::new();
    let graph = store.graph("urn:lodify:graph:ugc");
    let loaded = store.load_ntriples(&ntriples, graph).expect("load");
    println!("\nloaded {loaded} triples into the store");

    let results = lodify::sparql::execute(
        &store,
        "SELECT ?kw (COUNT(*) AS ?n) WHERE { ?pic tl:keyword ?kw . }
         GROUP BY ?kw ORDER BY DESC(?n) LIMIT 8",
    )
    .expect("query");
    println!("top keywords after the §2.1.1 keyword split:");
    for row in results.iter() {
        println!(
            "  {:16} {}",
            row.get("kw").map(|t| t.lexical()).unwrap_or("-"),
            row.get("n").map(|t| t.lexical()).unwrap_or("-")
        );
    }
}
