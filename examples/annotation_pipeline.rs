//! Figure 1, step by step: the semantic annotation process applied to
//! a handful of titles — language identification, morphological
//! analysis, NP-lemma extraction, semantic brokering and semantic
//! filtering with every discard reason shown.
//!
//! ```sh
//! cargo run --example annotation_pipeline
//! ```

use lodify::context::Gazetteer;
use lodify::lod::datasets::load_lod;
use lodify::lod::{SemanticBroker, SemanticFilter};
use lodify::store::Store;
use lodify::text::pipeline::extract_terms;

fn main() {
    let mut store = Store::new();
    let (d, g, l) = load_lod(&mut store, Gazetteer::global());
    println!("LOD snapshots loaded: DBpedia={d}, Geonames={g}, LinkedGeoData={l} triples\n");

    let broker = SemanticBroker::standard();
    let filter = SemanticFilter::standard();

    let cases: &[(&str, &[&str])] = &[
        ("Tramonto alla Mole Antonelliana", &["torino", "tramonto"]),
        ("Amazing view of the Coliseum", &["roma"]),
        ("Sunset over the hills", &["mole"]), // ambiguous tag!
        ("Une journée à Paris", &[]),
        ("Omaggio a Luciano Pavarotti", &["musica"]),
    ];

    for (title, tags) in cases {
        let tags: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
        println!("── title: {title:?}, tags: {tags:?}");

        // 1. text processing: language + morphology + NP extraction.
        let terms = extract_terms(title, &tags);
        println!(
            "   language: {:?} (confidence {:.2})",
            terms.language, terms.language_confidence
        );
        println!("   terms: {:?}", terms.texts());

        // 2. semantic brokering across the resolver set.
        let term_texts: Vec<String> = terms.terms.iter().map(|t| t.text.clone()).collect();
        let output = broker.resolve(&store, &term_texts, title, terms.language);

        // 3. semantic filtering per term.
        for tc in &output.terms {
            let outcome = filter.filter(&store, &tc.term, &tc.candidates);
            match &outcome.chosen {
                Some(c) => println!(
                    "   {:24} → {} [{:?}, score {:.2}]",
                    tc.term,
                    c.resource.as_str(),
                    c.graph,
                    c.score
                ),
                None if outcome.survivors.len() > 1 => println!(
                    "   {:24} → AMBIGUOUS ({} survivors — user-assisted UI would take over)",
                    tc.term,
                    outcome.survivors.len()
                ),
                None => println!(
                    "   {:24} → no annotation ({} candidates, all discarded)",
                    tc.term,
                    tc.candidates.len()
                ),
            }
            for (candidate, reason) in outcome.discarded.iter().take(3) {
                println!(
                    "        discarded {} — {:?}",
                    candidate.resource.local_name(),
                    reason
                );
            }
        }
        println!();
    }
}
