//! Serve the platform's web interface (§3–§4) on localhost and drive
//! it with a few requests, like a browser would.
//!
//! ```sh
//! cargo run --example serve            # serves on an ephemeral port
//! PORT=8080 cargo run --example serve  # fixed port; then open /
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use lodify::core::batch::BatchAnnotator;
use lodify::core::platform::Platform;
use lodify::core::web::WebServer;
use lodify::relational::WorkloadConfig;

fn get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nUser-Agent: example\r\n\r\n"
    )
    .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn main() {
    let mut platform = Platform::bootstrap(WorkloadConfig {
        seed: 5,
        users: 20,
        pictures: 300,
        ..WorkloadConfig::default()
    })
    .expect("bootstrap");
    BatchAnnotator::new()
        .run_all(&mut platform, 128)
        .expect("batch annotation");

    let port: u16 = std::env::var("PORT")
        .ok()
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);
    let server = WebServer::start(Arc::new(platform), port).expect("server start");
    let addr = server.addr();
    println!("serving the TeamLife interface on http://{addr}/");

    for target in [
        "/",
        "/search?q=Turi",
        "/album?monument=Mole+Antonelliana&lang=it&radius=0.3",
        "/picture/1",
        "/about/1",
    ] {
        let response = get(addr, target);
        let status = response.lines().next().unwrap_or("");
        let body_len = response.split("\r\n\r\n").nth(1).map(str::len).unwrap_or(0);
        println!("GET {target:55} → {status} ({body_len} bytes)");
    }

    if std::env::var("PORT").is_ok() {
        println!("\npress Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }
    server.stop();
    println!("done");
}
