//! The §4 tourist scenario, end to end: a mobile user in Torino types
//! into the search box (2-second AJAX debounce), picks the "Turin"
//! resource from the candidates (Fig. 3), sees the content associated
//! with it (Fig. 4), and opens the "About" mashup (§4.1): city
//! description from DBpedia, nearby restaurants with websites,
//! touristic attractions and other users' content.
//!
//! ```sh
//! cargo run --example tourist_torino
//! ```

use lodify::core::batch::BatchAnnotator;
use lodify::core::mashup::MashupService;
use lodify::core::platform::Platform;
use lodify::core::search::{Debouncer, SearchService};
use lodify::relational::WorkloadConfig;

fn main() {
    let mut platform = Platform::bootstrap(WorkloadConfig {
        seed: 7,
        users: 25,
        pictures: 400,
        ..WorkloadConfig::default()
    })
    .expect("bootstrap");

    // Legacy content must be batch-annotated before semantic search
    // shines (§6's batch processing mechanism).
    let report = BatchAnnotator::new()
        .run_all(&mut platform, 100)
        .expect("batch annotation");
    println!(
        "batch-annotated {} pictures ({} with at least one annotation)",
        report.processed, report.with_annotations
    );

    // --- the search box (Fig. 2/3) ---
    let mut debouncer = Debouncer::standard();
    debouncer.keystroke(0.0, "T");
    debouncer.keystroke(0.4, "Tu");
    debouncer.keystroke(0.9, "Tur");
    debouncer.keystroke(1.3, "Turi");
    // 2 seconds after the last keystroke the query fires.
    let query = debouncer.poll(3.3).expect("debounced query fires");
    println!("\nsearch fires for {query:?}");

    let suggestions = SearchService::suggest(platform.store(), &query, 8);
    println!("candidate resources:");
    for s in &suggestions {
        println!("  {:30}  {}", s.label, s.resource.as_str());
    }

    // --- the user clicks the Geonames/DBpedia Turin resource ---
    let turin = suggestions
        .iter()
        .find(|s| s.label == "Turin")
        .or_else(|| suggestions.first())
        .expect("at least one suggestion");
    println!("\nselected: {}", turin.resource.as_str());

    let hits = SearchService::content_for_resource(platform.store(), &turin.resource, 5.0)
        .expect("content");
    println!("{} content items associated with the resource:", hits.len());
    for hit in hits.iter().take(5) {
        println!(
            "  {}  {}",
            hit.title.as_deref().unwrap_or("(untitled)"),
            hit.link.as_deref().unwrap_or("-")
        );
    }

    // --- the "About" button (§4.1) ---
    let Some(first) = hits.first() else {
        println!("no content found — try a different seed");
        return;
    };
    let mashup = MashupService::standard()
        .about(platform.store(), &first.content)
        .expect("mashup");
    println!("\nAbout mashup for {}:", first.content.as_str());
    if let Some((city, abstract_)) = &mashup.city {
        println!("  city: {city} — {abstract_}");
    }
    println!("  restaurants nearby:");
    for r in &mashup.restaurants {
        println!(
            "    {} ({})",
            r.label,
            r.detail.as_deref().unwrap_or("no website")
        );
    }
    println!("  attractions nearby:");
    for a in &mashup.attractions {
        println!("    {}", a.label);
    }
    println!(
        "  other UGC at this spot: {} items",
        mashup.related_content.len()
    );
}
