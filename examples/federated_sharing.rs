//! The §6 future-work architecture, running: two home-network nodes,
//! WebFinger identities, FOAF profile exchange, PubSubHubbub
//! subscriptions, SparqlPuSH queries, ActivityStreams timelines and a
//! Salmon reply.
//!
//! ```sh
//! cargo run --example federated_sharing
//! ```

use lodify::core::federation::{Federation, Notification, PhotoFrame};

fn main() {
    let mut fed = Federation::new();
    let casa_oscar = fed.add_node("casa-oscar.example").expect("node");
    let casa_walter = fed.add_node("casa-walter.example").expect("node");

    let oscar = fed
        .register_user(casa_oscar, "oscar", "Oscar Rodriguez")
        .expect("user");
    let walter = fed
        .register_user(casa_walter, "walter", "Walter Goix")
        .expect("user");
    println!("accounts: {oscar} and {walter}");

    // WebFinger resolution across the federation.
    let (node, profile) = fed
        .webfinger("acct:walter@casa-walter.example")
        .expect("webfinger");
    println!(
        "webfinger: walter lives on node {node}, profile {}",
        profile.as_str()
    );

    // Oscar follows Walter: profile import + foaf:knows + hub topic.
    fed.subscribe(casa_oscar, &oscar, &walter)
        .expect("subscribe");
    println!("oscar now follows walter (FOAF profile imported)");

    // Oscar also registers a SparqlPuSH query on Walter's node.
    fed.sparql_subscribe(
        casa_oscar,
        casa_walter,
        "SELECT ?m ?t WHERE { ?m a sioct:MicroblogPost . ?m rdfs:label ?t . }",
    )
    .expect("sparql subscription");

    // Walter publishes from his holiday.
    let (media, notifications) = fed
        .publish(&walter, "Tramonto dalla terrazza", 1_320_800_000)
        .expect("publish");
    println!("\nwalter published {}", media.as_str());
    for n in &notifications {
        match n {
            Notification::Activity { to, activity } => {
                println!(
                    "  hub → node {to}: {:?} {:?}",
                    activity.verb, activity.summary
                )
            }
            Notification::SparqlRows { to, rows } => {
                println!("  sparqlPuSH → node {to}: {} new row(s)", rows.len());
                for row in rows {
                    println!("      {row}");
                }
            }
        }
    }

    // Oscar replies — the Salmon comment swims upstream to Walter's node.
    fed.reply(&oscar, &media, "che meraviglia!", 1_320_800_100)
        .expect("reply");

    println!("\ntimeline on walter's node:");
    for activity in fed.node(casa_walter).expect("node").timeline().entries() {
        println!(
            "  [{}] {} {:?}: {}",
            activity.ts, activity.actor, activity.verb, activity.summary
        );
    }
    println!("\ntimeline on oscar's node (via subscription):");
    for activity in fed.node(casa_oscar).expect("node").timeline().entries() {
        println!(
            "  [{}] {} {:?}: {}",
            activity.ts, activity.actor, activity.verb, activity.summary
        );
    }

    // §6.3: the UPnP photo frame in walter's living room shows the
    // holiday pictures as they arrive.
    let mut frame = PhotoFrame::new();
    let shown = frame
        .refresh(fed.node(casa_walter).expect("node"))
        .expect("frame refresh");
    println!("\nphoto frame now shows {} item(s):", shown.len());
    for entry in &shown {
        println!("  [{}] {}", entry.ts, entry.title);
    }

    // §6.2: embedding walter's media elsewhere via OEmbed.
    let embed = fed
        .node(casa_walter)
        .expect("node")
        .oembed(&media)
        .expect("oembed");
    println!(
        "\noembed: {} “{}” from {} by {}",
        embed.kind,
        embed.title,
        embed.provider,
        embed.author.as_deref().unwrap_or("?")
    );
}
